"""Crash-recovery smoke for ``repro serve`` — the CI incarnation.

The scenario the service exists to survive, end to end and out of
process:

1. compute the ground truth for a small sweep in-process (pure
   ``execute``, no service);
2. start ``repro serve`` as a subprocess, stream the sweep at it, and
   ``SIGKILL`` the server while completions are still landing in the
   journal — an unflushable, uncatchable crash;
3. restart the server on the **same** journal and cache directory:
   completed work must replay into the cache, interrupted work must
   re-execute at boot;
4. re-submit the sweep until the backlog drains, then assert that every
   outcome is byte-identical to the ground truth **and** that every
   repeat is a cache hit (``executed == 0`` in the stream's summary).

Exit status 0 means the property held; any assertion failure or timeout
is a non-zero exit for CI.  Run locally with::

    PYTHONPATH=src python scripts/serve_smoke.py
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import RunRequest, execute  # noqa: E402
from repro.serve import request_digest  # noqa: E402

SWEEP_SIZE = 24
READY_DEADLINE = 30.0
DRAIN_DEADLINE = 120.0


def sweep_requests() -> list:
    return [RunRequest(protocol="exponential", n=11, t=3, initial_value=1,
                       scenario="faulty-source-allies", battery="worst-case",
                       seed=seed)
            for seed in range(SWEEP_SIZE)]


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def start_server(port: int, workdir: Path) -> subprocess.Popen:
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port),
         "--workers", "1", "--cache-dir", str(workdir / "cache"),
         "--journal", str(workdir / "journal.jsonl")],
        env={**os.environ,
             "PYTHONPATH": str(Path(__file__).resolve().parent.parent / "src")})
    deadline = time.monotonic() + READY_DEADLINE
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise SystemExit(f"server exited early with {process.returncode}")
        try:
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=2)
            conn.request("GET", "/readyz")
            ready = conn.getresponse().status == 200
            conn.close()
            if ready:
                return process
        except OSError:
            pass
        time.sleep(0.1)
    process.kill()
    raise SystemExit("server never became ready")


def post_sweep(port: int, body: str, timeout: float = 300.0) -> list:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    conn.request("POST", "/sweep", body=body,
                 headers={"Content-Type": "application/json"})
    response = conn.getresponse()
    lines = [json.loads(line) for line in response.read().splitlines() if line]
    conn.close()
    return lines


def journal_completions(journal: Path) -> int:
    if not journal.exists():
        return 0
    count = 0
    for line in journal.read_text(encoding="utf-8").splitlines():
        if '"completed"' in line:
            count += 1
    return count


def main() -> None:
    requests = sweep_requests()
    body = json.dumps([request.to_dict() for request in requests])
    print(f"[smoke] ground truth: executing {len(requests)} requests "
          "in-process", flush=True)
    truth = {request_digest(request): execute(request).outcome_dict()
             for request in requests}

    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        journal = workdir / "journal.jsonl"
        port = free_port()

        # -- phase 1: stream the sweep, kill -9 mid-flight ------------------
        server = start_server(port, workdir)

        def stream_and_die() -> None:
            try:
                post_sweep(port, body)
            except (OSError, http.client.HTTPException):
                pass  # the kill severs this connection mid-stream, by design

        streamer = threading.Thread(target=stream_and_die, daemon=True)
        streamer.start()
        killed_after = None
        deadline = time.monotonic() + DRAIN_DEADLINE
        while time.monotonic() < deadline:
            done = journal_completions(journal)
            if 1 <= done < len(requests):
                killed_after = done
                break
            if done >= len(requests):
                break
            time.sleep(0.002)
        server.send_signal(signal.SIGKILL)
        server.wait(10)
        streamer.join(10)
        if killed_after is None:
            print("[smoke] warning: every request completed before the kill "
                  "landed; recovery still covers the full journal",
                  flush=True)
        else:
            print(f"[smoke] SIGKILL after {killed_after}/{len(requests)} "
                  "completions", flush=True)

        # -- phase 2: restart on the same journal + cache -------------------
        server = start_server(port, workdir)
        try:
            lines = []
            deadline = time.monotonic() + DRAIN_DEADLINE
            while time.monotonic() < deadline:
                lines = post_sweep(port, body)
                summary = lines[-1]
                if summary.get("event") == "done" and summary["executed"] == 0:
                    break
                time.sleep(1.0)
            else:
                raise SystemExit(
                    "pending backlog never drained to all-cache-hits")

            results = [line for line in lines if "index" in line]
            assert len(results) == len(requests), (
                f"expected {len(requests)} results, got {len(results)}")
            mismatches = []
            for line in results:
                assert line["cached"], f"request {line['index']} not cached"
                expected = truth[line["id"]]
                if json.dumps(line["outcome"], sort_keys=True) != \
                        json.dumps(expected, sort_keys=True):
                    mismatches.append(line["index"])
            assert not mismatches, (
                f"outcomes diverged from ground truth at {mismatches}")
            print(f"[smoke] all {len(results)} recovered outcomes are "
                  "byte-identical cache hits", flush=True)
        finally:
            server.send_signal(signal.SIGTERM)
            try:
                server.wait(30)
            except subprocess.TimeoutExpired:
                server.kill()
    print("[smoke] PASS", flush=True)


if __name__ == "__main__":
    main()
