"""Cross-protocol integration tests: every algorithm of the paper, run side by
side on identical scenarios, must reach the same (correct) outcome."""

import pytest

from repro.baselines import DolevStrongSpec, PeaseShostakLamportSpec, PhaseKingSpec
from repro.core.algorithm_a import AlgorithmASpec
from repro.core.algorithm_b import AlgorithmBSpec
from repro.core.algorithm_c import AlgorithmCSpec
from repro.core.exponential import ExponentialSpec
from repro.core.hybrid import HybridSpec
from repro.core.protocol import ProtocolConfig
from repro.experiments.workloads import standard_scenarios
from repro.runtime.simulation import run_agreement


def specs_for(n: int, t: int):
    """Every spec applicable at the given (n, t)."""
    from repro.core.algorithm_b import algorithm_b_resilience
    from repro.core.algorithm_c import algorithm_c_resilience
    from repro.baselines import phase_king_resilience
    specs = [("exponential", ExponentialSpec), ("psl", PeaseShostakLamportSpec),
             ("dolev-strong", DolevStrongSpec)]
    if t >= 3:
        specs.append(("algorithm-a", lambda: AlgorithmASpec(3)))
        specs.append(("hybrid", lambda: HybridSpec(3)))
    if t <= algorithm_b_resilience(n):
        specs.append(("algorithm-b", lambda: AlgorithmBSpec(2)))
    if t <= phase_king_resilience(n):
        specs.append(("phase-king", PhaseKingSpec))
    if t <= algorithm_c_resilience(n):
        specs.append(("algorithm-c", AlgorithmCSpec))
    return specs


class TestCrossProtocolConsistency:
    @pytest.mark.parametrize("n,t", [(13, 3)])
    def test_all_protocols_valid_when_source_correct(self, n, t):
        config = ProtocolConfig(n=n, t=t, initial_value=1)
        scenarios = [s for s in standard_scenarios(n, t) if 0 not in s.faulty]
        for name, factory in specs_for(n, t):
            for scenario in scenarios:
                result = run_agreement(factory(), config, scenario.faulty,
                                       scenario.adversary())
                assert result.agreement, (name, scenario.name)
                assert result.decision_value == 1, (name, scenario.name)

    @pytest.mark.parametrize("n,t", [(13, 3)])
    def test_all_protocols_agree_when_source_faulty(self, n, t):
        config = ProtocolConfig(n=n, t=t, initial_value=1)
        scenarios = [s for s in standard_scenarios(n, t) if 0 in s.faulty]
        assert scenarios
        for name, factory in specs_for(n, t):
            for scenario in scenarios:
                result = run_agreement(factory(), config, scenario.faulty,
                                       scenario.adversary())
                assert result.agreement, (name, scenario.name)

    def test_shifting_family_matches_exponential_decisions(self):
        """Algorithms A and B and the hybrid may take more rounds than the
        Exponential Algorithm, but with a correct source they must decide the
        same value on every scenario."""
        n, t = 13, 4
        config = ProtocolConfig(n=n, t=t, initial_value=1)
        scenarios = [s for s in standard_scenarios(n, t) if 0 not in s.faulty]
        for scenario in scenarios:
            reference = run_agreement(ExponentialSpec(), config, scenario.faulty,
                                      scenario.adversary())
            for factory in (lambda: AlgorithmASpec(3), lambda: AlgorithmASpec(4),
                            lambda: HybridSpec(3)):
                other = run_agreement(factory(), config, scenario.faulty,
                                      scenario.adversary())
                assert other.decision_value == reference.decision_value, scenario.name

    def test_costs_reflect_the_design_space(self):
        """One scenario, every algorithm: Algorithm C and phase king must use
        the smallest messages, the exponential algorithm the largest."""
        n, t = 13, 3
        config = ProtocolConfig(n=n, t=t, initial_value=1)
        scenario = [s for s in standard_scenarios(n, t)
                    if s.name == "faulty-source-allies"][0]
        entries = {}
        for name, factory in specs_for(n, t):
            result = run_agreement(factory(), config, scenario.faulty,
                                   scenario.adversary())
            entries[name] = result.metrics.max_message_entries()
        assert entries["phase-king"] <= entries["algorithm-b"]
        assert entries["algorithm-b"] <= entries["exponential"]
        if "algorithm-c" in entries:
            assert entries["algorithm-c"] <= entries["exponential"]
