"""Tests for the hybrid algorithm (Theorem 1): parameters, phases, agreement."""

import pytest

from tests.helpers import assert_battery_correct, run_battery

from repro.core.algorithm_a import algorithm_a_rounds
from repro.core.hybrid import (HybridProcessor, HybridSpec, hybrid_parameters,
                               hybrid_rounds, hybrid_rounds_asymptotic,
                               hybrid_rounds_closed_form, hybrid_schedule)
from repro.core.protocol import ProtocolConfig
from repro.runtime.errors import ConfigurationError


class TestParameters:
    def test_thresholds_satisfy_the_shift_conditions(self):
        for n, t in [(13, 4), (16, 5), (22, 7), (31, 10)]:
            for b in (3, 4):
                if b > t:
                    continue
                params = hybrid_parameters(n, t, b)
                # Shift into B: Corollary 1 must survive with t_AB detected faults.
                assert n - 2 * t + params.t_ab > (n - 1) // 2
                # Shift into C: Proposition 4's counting must survive.
                assert (t - params.t_ac) ** 2 < n / 2 - t
                assert (n - 2 * t + params.t_ac) * 2 > n
                assert params.t_ab <= params.t_ac <= t

    def test_round_identities(self):
        for n, t, b in [(13, 4, 3), (16, 5, 3), (31, 10, 4), (31, 10, 5)]:
            params = hybrid_parameters(n, t, b)
            x = (params.t_ab - 1) // (b - 2)
            assert params.k_ab == 2 + params.t_ab + 2 * x
            x_prime = params.t_bc // (b - 1)
            assert params.k_bc == 1 + params.t_bc + x_prime
            assert params.total_rounds == params.k_ab + params.k_bc + params.c_rounds
            assert params.c_rounds == t - params.t_ac + 1

    def test_phase_boundaries(self):
        params = hybrid_parameters(13, 4, 3)
        a_end, b_end, total = params.phase_boundaries
        assert a_end == params.k_ab
        assert b_end == params.k_ab + params.k_bc
        assert total == params.total_rounds

    def test_constructive_and_closed_form_round_counts_agree(self):
        for n, t in [(13, 4), (16, 5), (31, 10)]:
            for b in range(3, min(t, 6) + 1):
                assert hybrid_rounds(n, t, b) == hybrid_rounds_closed_form(n, t, b)

    def test_asymptotic_shape_upper_bounds_loosely(self):
        # The asymptotic t + t/(b−2) + 2(b−1) + √t should track the constructive
        # count within a small additive constant for moderate parameters.
        for n, t in [(31, 10), (61, 20)]:
            for b in (3, 4, 5):
                constructive = hybrid_rounds(n, t, b)
                asymptotic = hybrid_rounds_asymptotic(t, b)
                assert abs(constructive - asymptotic) <= 10

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            hybrid_parameters(9, 3, 3)     # n < 3t + 1
        with pytest.raises(ConfigurationError):
            hybrid_parameters(10, 2, 3)    # t < 3
        with pytest.raises(ConfigurationError):
            hybrid_parameters(13, 4, 2)    # b ≤ 2
        with pytest.raises(ConfigurationError):
            hybrid_parameters(13, 4, 5)    # b > t


class TestDominance:
    def test_hybrid_never_materially_slower_than_algorithm_a(self):
        # The dominance claim concerns the shifting family (b < t); at b = t
        # Algorithm A degenerates to the round-optimal Exponential Algorithm.
        # The constructive hybrid always pays for a final partial block in each
        # of its A and B phases, so for small t and divisor-friendly b it can
        # lose one round to standalone Algorithm A; it is never worse than that.
        for n, t in [(13, 4), (16, 5), (22, 7), (31, 10), (61, 20)]:
            for b in range(3, min(t - 1, 6) + 1):
                assert hybrid_rounds(n, t, b) <= algorithm_a_rounds(t, b) + 1

    def test_hybrid_dominates_at_smallest_block_parameter(self):
        for n, t in [(13, 4), (16, 5), (22, 7), (31, 10), (61, 20)]:
            assert hybrid_rounds(n, t, 3) <= algorithm_a_rounds(t, 3)

    def test_hybrid_strictly_faster_somewhere(self):
        savings = [algorithm_a_rounds(10, b) - hybrid_rounds(31, 10, b)
                   for b in (3, 4)]
        assert any(saving > 0 for saving in savings)


class TestSchedule:
    def test_schedule_switches_conversion_at_the_a_to_b_boundary(self):
        params = hybrid_parameters(13, 4, 3)
        schedule = hybrid_schedule(params)
        conversions = [segment.conversion for segment in schedule.segments]
        a_count = len(params.a_blocks)
        assert all(c == "resolve_prime" for c in conversions[:a_count])
        assert all(c == "resolve" for c in conversions[a_count:])
        assert schedule.total_rounds == params.k_ab + params.k_bc

    def test_phase_of_round(self):
        config = ProtocolConfig(n=13, t=4, initial_value=1)
        processor = HybridProcessor(1, config, b=3)
        params = processor.params
        assert processor.phase_of_round(1) == "A"
        assert processor.phase_of_round(params.k_ab) == "A"
        assert processor.phase_of_round(params.k_ab + 1) == "B"
        assert processor.phase_of_round(params.total_rounds) == "C"


class TestAgreement:
    def test_standard_battery_n13_t4_b3(self):
        assert_battery_correct(lambda: HybridSpec(3), n=13, t=4)

    def test_standard_battery_n13_t4_b4(self):
        assert_battery_correct(lambda: HybridSpec(4), n=13, t=4)

    def test_standard_battery_n10_t3(self):
        assert_battery_correct(lambda: HybridSpec(3), n=10, t=3)

    def test_standard_battery_n16_t5(self):
        assert_battery_correct(lambda: HybridSpec(3), n=16, t=5)

    def test_initial_value_zero(self):
        assert_battery_correct(lambda: HybridSpec(3), n=13, t=4, initial_value=0)

    def test_round_and_message_bounds_hold(self):
        from repro.core.algorithm_a import algorithm_a_max_message_entries
        for scenario, result in run_battery(lambda: HybridSpec(3), n=13, t=4):
            assert result.rounds == hybrid_rounds(13, 4, 3)
            assert (result.metrics.max_message_entries()
                    <= algorithm_a_max_message_entries(13, 3))

    def test_discovery_log_spans_phases(self):
        from repro.adversary import EquivocatingSourceWithAlliesAdversary
        from repro.runtime.simulation import choose_faulty, run_agreement
        config = ProtocolConfig(n=13, t=4, initial_value=1)
        result = run_agreement(HybridSpec(3), config,
                               choose_faulty(13, 4, source_faulty=True),
                               EquivocatingSourceWithAlliesAdversary())
        assert result.agreement
        assert any(result.discovery_logs.values())
