"""Tests for the execution driver and RunResult verdicts."""

import pytest

from repro.adversary import BenignAdversary, TwoFacedSourceAdversary
from repro.core.exponential import ExponentialSpec
from repro.core.protocol import ProtocolConfig
from repro.runtime.errors import ConfigurationError, SimulationError
from repro.runtime.simulation import (RunResult, choose_faulty, run_agreement,
                                      run_many)


class TestChooseFaulty:
    def test_size_and_source_inclusion(self):
        faulty = choose_faulty(7, 3, source_faulty=True)
        assert len(faulty) == 3 and 0 in faulty

    def test_source_excluded_by_default(self):
        faulty = choose_faulty(7, 3)
        assert 0 not in faulty

    def test_zero_faults(self):
        assert choose_faulty(7, 0) == frozenset()

    def test_too_many_faults_rejected(self):
        with pytest.raises(ConfigurationError):
            choose_faulty(4, 5)


class TestRunAgreement:
    def test_default_adversary_is_benign(self):
        config = ProtocolConfig(n=7, t=2, initial_value=1)
        result = run_agreement(ExponentialSpec(), config, faulty=choose_faulty(7, 2))
        assert result.succeeded
        assert result.decision_value == 1

    def test_unknown_faulty_processor_rejected(self):
        config = ProtocolConfig(n=7, t=2)
        with pytest.raises(ConfigurationError):
            run_agreement(ExponentialSpec(), config, faulty={99})

    def test_result_contains_metrics_and_discoveries(self):
        config = ProtocolConfig(n=7, t=2, initial_value=1)
        result = run_agreement(ExponentialSpec(), config,
                               choose_faulty(7, 2, source_faulty=True),
                               TwoFacedSourceAdversary())
        assert result.rounds == 3
        assert result.metrics.total_messages() > 0
        assert set(result.decisions) == set(result.correct)
        assert all(isinstance(v, tuple) for v in result.discovered.values())

    def test_summary_row(self):
        config = ProtocolConfig(n=7, t=2, initial_value=1)
        result = run_agreement(ExponentialSpec(), config)
        row = result.summary()
        assert row["protocol"] == "exponential"
        assert row["agreement"] is True

    def test_run_many(self):
        config = ProtocolConfig(n=7, t=2, initial_value=1)
        scenarios = [(choose_faulty(7, 2), BenignAdversary()),
                     (choose_faulty(7, 2, source_faulty=True),
                      TwoFacedSourceAdversary())]
        results = run_many(ExponentialSpec(), config, scenarios)
        assert len(results) == 2
        assert all(result.agreement for result in results)


class TestRunResultVerdicts:
    def make_result(self, decisions, faulty=frozenset()):
        config = ProtocolConfig(n=4, t=1, initial_value=1)
        from repro.runtime.metrics import RunMetrics
        return RunResult(protocol="x", adversary="y", config=config,
                         faulty=frozenset(faulty), decisions=decisions,
                         rounds=2, metrics=RunMetrics())

    def test_agreement_violation_detected(self):
        result = self.make_result({0: 1, 1: 1, 2: 0, 3: 1})
        assert not result.agreement
        with pytest.raises(SimulationError):
            _ = result.decision_value

    def test_validity_violation_detected(self):
        result = self.make_result({0: 1, 1: 0, 2: 0, 3: 0})
        assert result.validity is False

    def test_validity_vacuous_with_faulty_source(self):
        result = self.make_result({1: 0, 2: 0, 3: 0}, faulty={0})
        assert result.validity is None
        assert result.succeeded

    def test_soundness_of_discovery(self):
        result = self.make_result({1: 0, 2: 0, 3: 0}, faulty={0})
        result.discovered = {1: (0,), 2: (), 3: ()}
        assert result.soundness_of_discovery()
        result.discovered = {1: (2,)}
        assert not result.soundness_of_discovery()
