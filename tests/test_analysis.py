"""Tests for the analysis layer: bounds, Coan model, trade-off, checkers, reporting."""

import pytest

from repro.analysis import (check_agreement, check_message_bound, check_round_bound,
                            check_validity, coan_curve, coan_local_computation,
                            coan_rounds, comparison_rows, dominance_table,
                            exponential_bound, format_markdown_table, format_table,
                            main_theorem_round_formula, message_growth_curve,
                            resilience_table, theorem1_bound, theorem2_bound,
                            theorem3_bound, theorem4_bound, tradeoff_curve,
                            verify_run)
from repro.analysis.bounds import (algorithm_a_local_computation,
                                   algorithm_b_local_computation,
                                   exponential_local_computation)
from repro.core.algorithm_a import algorithm_a_resilience, algorithm_a_rounds
from repro.core.exponential import ExponentialSpec
from repro.core.hybrid import hybrid_rounds
from repro.core.protocol import ProtocolConfig
from repro.runtime.simulation import choose_faulty, run_agreement
from repro.adversary import TwoFacedSourceAdversary


class TestBounds:
    def test_exponential_bound_row(self):
        bound = exponential_bound(7, 2)
        row = bound.as_row()
        assert row["rounds_bound"] == 3
        assert row["max_message_entries_bound"] == 6

    def test_theorem_bounds_reference_their_algorithms(self):
        assert "algorithm-a" in theorem2_bound(10, 3, 3).algorithm
        assert "algorithm-b" in theorem3_bound(13, 3, 2).algorithm
        assert theorem4_bound(20, 3).algorithm == "algorithm-c"
        assert "hybrid" in theorem1_bound(13, 4, 3).algorithm

    def test_local_computation_shapes(self):
        # Algorithm A at equal b costs more than B (the (b−2) vs (b−1) divisor).
        assert (algorithm_a_local_computation(13, 4, 3)
                > algorithm_b_local_computation(13, 4, 3))
        # Exponential local computation explodes with t.
        assert (exponential_local_computation(10, 3)
                < exponential_local_computation(13, 4))

    def test_main_theorem_formula_matches_constructive_count(self):
        assert main_theorem_round_formula(31, 10, 4) == hybrid_rounds(31, 10, 4)

    def test_resilience_table_ordering(self):
        table = resilience_table(61)
        assert table["algorithm-a"] >= table["algorithm-b"] >= table["algorithm-c"]
        assert table["hybrid"] == table["algorithm-a"]


class TestCoanModel:
    def test_rounds_match_algorithm_a(self):
        assert coan_rounds(10, 4) == algorithm_a_rounds(10, 4)

    def test_local_computation_is_exponential_in_t(self):
        small = coan_local_computation(31, 5, 4)
        large = coan_local_computation(31, 10, 4)
        assert large / small > 2 ** 4

    def test_curve_rows(self):
        curve = coan_curve(31, 10, (3, 4, 5))
        assert [point.b for point in curve] == [3, 4, 5]
        assert all("rounds" in point.as_row() for point in curve)


class TestTradeoff:
    def test_curve_has_blank_cells_outside_validity(self):
        points = tradeoff_curve(31, 10, (2, 3, 4))
        by_b = {point.b: point for point in points}
        assert by_b[2].rounds_algorithm_a is None
        assert by_b[3].rounds_algorithm_a is not None

    def test_rounds_fall_as_b_grows(self):
        points = tradeoff_curve(31, 10, (3, 4, 5, 6))
        rounds = [point.rounds_algorithm_a for point in points]
        assert rounds == sorted(rounds, reverse=True)

    def test_coan_rounds_equal_ours_on_the_curve(self):
        for point in tradeoff_curve(31, 10, (3, 4, 5)):
            assert point.rounds_coan == point.rounds_algorithm_a

    def test_dominance_table_savings(self):
        rows = dominance_table(31, 10, (3, 4, 5))
        assert all(row["saving"] >= 0 for row in rows)
        assert any(row["saving"] > 0 for row in rows)

    def test_message_growth_curve(self):
        rows = message_growth_curve((10, 13, 16), algorithm_a_resilience, b=3)
        entries = [row["max_message_entries"] for row in rows]
        assert entries == sorted(entries)


class TestCheckers:
    def run_one(self):
        config = ProtocolConfig(n=7, t=2, initial_value=1)
        return run_agreement(ExponentialSpec(), config,
                             choose_faulty(7, 2, source_faulty=True),
                             TwoFacedSourceAdversary())

    def test_individual_checks(self):
        result = self.run_one()
        assert check_agreement(result)
        assert check_validity(result) is None
        assert check_round_bound(result, 3)
        assert not check_round_bound(result, 2)
        assert check_message_bound(result, 6)

    def test_verify_run_collects_problems(self):
        result = self.run_one()
        verdict = verify_run(result, round_bound=3, message_bound=6)
        assert verdict.ok
        bad = verify_run(result, round_bound=1, message_bound=1)
        assert not bad.ok
        assert len(bad.problems) == 2


class TestReporting:
    def test_format_table_alignment_and_title(self):
        rows = [{"a": 1, "b": True}, {"a": 22, "b": None}]
        text = format_table(rows, title="demo")
        assert text.startswith("demo")
        assert "yes" in text and "-" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_markdown_table(self):
        rows = [{"a": 1.5, "b": "x"}]
        text = format_markdown_table(rows)
        assert text.splitlines()[0] == "| a | b |"
        assert "| 1.50 | x |" in text

    def test_comparison_rows_ratio(self):
        rows = comparison_rows([("rounds", 10, 5)])
        assert rows[0]["measured/bound"] == 0.5
