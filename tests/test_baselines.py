"""Tests for the baseline protocols (PSL, Phase King, Dolev–Strong)."""

import pytest

from tests.helpers import assert_battery_correct, run_battery

from repro.baselines import (DolevStrongSpec, PeaseShostakLamportSpec, PhaseKingSpec,
                             SignatureLedger, phase_king_resilience, phase_king_rounds,
                             psl_max_message_entries, psl_resilience, psl_rounds)
from repro.core.exponential import ExponentialSpec
from repro.core.protocol import ProtocolConfig
from repro.experiments.workloads import standard_scenarios
from repro.runtime.errors import ConfigurationError
from repro.runtime.simulation import run_agreement


class TestPeaseShostakLamport:
    def test_bounds_match_exponential(self):
        assert psl_resilience(10) == 3
        assert psl_rounds(3) == 4
        assert psl_max_message_entries(7, 2) == 6

    def test_battery_n7_t2(self):
        assert_battery_correct(PeaseShostakLamportSpec, n=7, t=2)

    def test_never_discovers_faults(self):
        for scenario, result in run_battery(PeaseShostakLamportSpec, n=7, t=2):
            assert all(found == () for found in result.discovered.values())

    def test_decisions_match_modified_exponential(self):
        """The simplified Exponential Algorithm is behaviourally equivalent to
        PSL on the standard battery (same decisions, same costs)."""
        config = ProtocolConfig(n=7, t=2, initial_value=1)
        for scenario in standard_scenarios(7, 2):
            psl = run_agreement(PeaseShostakLamportSpec(), config, scenario.faulty,
                                scenario.adversary())
            exp = run_agreement(ExponentialSpec(), config, scenario.faulty,
                                scenario.adversary())
            assert psl.decision_value == exp.decision_value, scenario.name
            assert psl.rounds == exp.rounds
            assert (psl.metrics.max_message_entries()
                    == exp.metrics.max_message_entries())

    def test_resilience_enforced(self):
        with pytest.raises(ConfigurationError):
            PeaseShostakLamportSpec().validate(ProtocolConfig(n=6, t=2))


class TestPhaseKing:
    def test_bounds(self):
        assert phase_king_resilience(9) == 2
        assert phase_king_rounds(2) == 7

    def test_battery_n9_t2(self):
        assert_battery_correct(PhaseKingSpec, n=9, t=2)

    def test_battery_n13_t3(self):
        assert_battery_correct(PhaseKingSpec, n=13, t=3)

    def test_messages_are_constant_size(self):
        for scenario, result in run_battery(PhaseKingSpec, n=9, t=2):
            assert result.metrics.max_message_entries() == 1

    def test_resilience_enforced(self):
        with pytest.raises(ConfigurationError):
            PhaseKingSpec().validate(ProtocolConfig(n=8, t=2))

    def test_round_count_matches_formula(self):
        for scenario, result in run_battery(PhaseKingSpec, n=9, t=2):
            assert result.rounds == phase_king_rounds(2)


class TestDolevStrong:
    def test_battery_small(self):
        assert_battery_correct(DolevStrongSpec, n=6, t=2)

    def test_tolerates_half_the_processors_faulty(self):
        assert_battery_correct(DolevStrongSpec, n=6, t=3)

    def test_resilience_enforced(self):
        with pytest.raises(ConfigurationError):
            DolevStrongSpec().validate(ProtocolConfig(n=4, t=3))

    def test_rounds_are_t_plus_one(self):
        for scenario, result in run_battery(DolevStrongSpec, n=6, t=2):
            assert result.rounds == 3

    def test_ledger_rejects_forged_correct_signature(self):
        ledger = SignatureLedger()
        ledger.sign(1, (0, 1), 1)
        assert ledger.verify(1, (0, 1), 1, correct_hint=True)
        assert not ledger.verify(1, (0, 1), 0, correct_hint=True)
        # Faulty signers are never checked.
        assert ledger.verify(5, (0, 5), 0, correct_hint=False)
