"""Unit tests for ProtocolConfig, spec validation, and round bookkeeping."""

import pytest

from repro.core.algorithm_a import AlgorithmASpec
from repro.core.algorithm_b import AlgorithmBSpec
from repro.core.algorithm_c import AlgorithmCSpec
from repro.core.exponential import ExponentialSpec, exponential_schedule
from repro.core.hybrid import HybridSpec
from repro.core.protocol import ProtocolConfig
from repro.core.shifting import ShiftingEIGProcessor
from repro.runtime.errors import ConfigurationError, ProtocolViolationError


class TestProtocolConfig:
    def test_valid_config(self):
        config = ProtocolConfig(n=7, t=2, initial_value=1)
        assert config.processors == tuple(range(7))
        assert config.others(0) == tuple(range(1, 7))

    def test_too_few_processors_rejected(self):
        with pytest.raises(ConfigurationError):
            ProtocolConfig(n=3, t=1)

    def test_zero_resilience_rejected(self):
        with pytest.raises(ConfigurationError):
            ProtocolConfig(n=7, t=0)

    def test_source_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            ProtocolConfig(n=7, t=2, source=9)

    def test_domain_must_contain_default(self):
        with pytest.raises(ConfigurationError):
            ProtocolConfig(n=7, t=2, domain=(1, 2))

    def test_initial_value_must_be_in_domain(self):
        with pytest.raises(ConfigurationError):
            ProtocolConfig(n=7, t=2, initial_value=9)

    def test_singleton_domain_rejected(self):
        # Agreement over |V| = 1 is vacuous, and lying adversaries rely on
        # a second element existing (see adversary.liars.another_value).
        with pytest.raises(ConfigurationError):
            ProtocolConfig(n=7, t=2, initial_value=0, domain=(0,))
        with pytest.raises(ConfigurationError):
            ProtocolConfig(n=7, t=2, initial_value=0, domain=(0, 0))

    def test_non_default_source(self):
        config = ProtocolConfig(n=7, t=2, source=3)
        assert 3 in config.processors

    def test_larger_domain_accepted(self):
        config = ProtocolConfig(n=7, t=2, initial_value=3, domain=(0, 1, 2, 3))
        assert config.initial_value == 3


class TestSpecValidation:
    def test_exponential_resilience_enforced(self):
        with pytest.raises(ConfigurationError):
            ExponentialSpec().validate(ProtocolConfig(n=6, t=2))

    def test_algorithm_a_resilience_and_block_range(self):
        with pytest.raises(ConfigurationError):
            AlgorithmASpec(b=3).validate(ProtocolConfig(n=9, t=3))
        with pytest.raises(ConfigurationError):
            AlgorithmASpec(b=2).validate(ProtocolConfig(n=10, t=3))
        with pytest.raises(ConfigurationError):
            AlgorithmASpec(b=4).validate(ProtocolConfig(n=10, t=3))
        AlgorithmASpec(b=3).validate(ProtocolConfig(n=10, t=3))

    def test_algorithm_b_resilience_and_block_range(self):
        with pytest.raises(ConfigurationError):
            AlgorithmBSpec(b=2).validate(ProtocolConfig(n=12, t=3))
        with pytest.raises(ConfigurationError):
            AlgorithmBSpec(b=1).validate(ProtocolConfig(n=13, t=3))
        AlgorithmBSpec(b=2).validate(ProtocolConfig(n=13, t=3))

    def test_algorithm_c_resilience(self):
        with pytest.raises(ConfigurationError):
            AlgorithmCSpec().validate(ProtocolConfig(n=14, t=3))
        AlgorithmCSpec().validate(ProtocolConfig(n=20, t=3))

    def test_hybrid_requirements(self):
        with pytest.raises(ConfigurationError):
            HybridSpec(b=3).validate(ProtocolConfig(n=9, t=3))
        with pytest.raises(ConfigurationError):
            HybridSpec(b=3).validate(ProtocolConfig(n=10, t=2))
        HybridSpec(b=3).validate(ProtocolConfig(n=10, t=3))

    def test_total_rounds_reported_by_spec(self):
        config = ProtocolConfig(n=10, t=3)
        assert ExponentialSpec().total_rounds(config) == 4
        assert AlgorithmASpec(b=3).total_rounds(config) == 4

    def test_describe_strings(self):
        assert "rounds" in ExponentialSpec().describe()
        assert "b=3" in AlgorithmASpec(b=3).name
        assert repr(HybridSpec(b=3)).startswith("<ProtocolSpec")


class TestRoundBookkeeping:
    def make_processor(self):
        config = ProtocolConfig(n=7, t=2, initial_value=1)
        return ShiftingEIGProcessor(1, config, exponential_schedule(2))

    def test_rounds_must_be_in_range(self):
        processor = self.make_processor()
        with pytest.raises(ProtocolViolationError):
            processor.outgoing(0)
        with pytest.raises(ProtocolViolationError):
            processor.outgoing(99)

    def test_rounds_cannot_go_backwards(self):
        processor = self.make_processor()
        processor.outgoing(2)
        with pytest.raises(ProtocolViolationError):
            processor.outgoing(1)

    def test_decision_before_deciding_raises(self):
        processor = self.make_processor()
        with pytest.raises(ProtocolViolationError):
            processor.decision()

    def test_decision_cannot_change(self):
        processor = self.make_processor()
        processor._decide(1)
        with pytest.raises(ProtocolViolationError):
            processor._decide(0)
        processor._decide(1)  # re-deciding the same value is fine
        assert processor.decision() == 1
