"""Tests for Algorithm A (Theorem 2): schedules, bounds, and agreement."""

import pytest

from tests.helpers import assert_battery_correct, run_battery

from repro.core.algorithm_a import (AlgorithmASpec, algorithm_a_blocks,
                                    algorithm_a_max_message_entries,
                                    algorithm_a_resilience, algorithm_a_rounds,
                                    algorithm_a_schedule)
from repro.runtime.errors import ConfigurationError


class TestBlocks:
    def test_b_equals_t_is_exponential(self):
        assert algorithm_a_blocks(4, 4) == [4]

    def test_full_and_partial_blocks(self):
        # t = 4, b = 3: (t−1)/(b−2) = 3 full blocks, remainder 0.
        assert algorithm_a_blocks(4, 3) == [3, 3, 3]
        # t = 5, b = 3: x = 4 full blocks, remainder 0.
        assert algorithm_a_blocks(5, 3) == [3, 3, 3, 3]
        # t = 5, b = 4: x = 2 blocks of 4, remainder 0.
        assert algorithm_a_blocks(5, 4) == [4, 4]
        # t = 6, b = 4: x = 2, remainder 1 → final block of 3 rounds.
        assert algorithm_a_blocks(6, 4) == [4, 4, 3]

    def test_invalid_b_rejected(self):
        with pytest.raises(ConfigurationError):
            algorithm_a_blocks(4, 2)
        with pytest.raises(ConfigurationError):
            algorithm_a_blocks(4, 5)

    def test_blocks_cover_exactly_the_information_gathering_rounds(self):
        for t in range(3, 9):
            for b in range(3, t + 1):
                blocks = algorithm_a_blocks(t, b)
                assert 1 + sum(blocks) == algorithm_a_rounds(t, b)


class TestRoundFormula:
    def test_theorem2_round_count(self):
        # t + 2 + 2⌊(t−1)/(b−2)⌋ when (b−2) does not divide (t−1).
        assert algorithm_a_rounds(6, 4) == 6 + 2 + 2 * 2
        # When (b−2) | (t−1) the count is 1 + b·x.
        assert algorithm_a_rounds(5, 4) == 1 + 4 * 2

    def test_b_equals_t_matches_exponential(self):
        assert algorithm_a_rounds(4, 4) == 5

    def test_rounds_decrease_with_larger_blocks(self):
        t = 7
        rounds = [algorithm_a_rounds(t, b) for b in range(3, t + 1)]
        assert rounds == sorted(rounds, reverse=True)

    def test_algorithm_a_never_faster_than_algorithm_b(self):
        # The price of resilience: at equal b, A uses at least as many rounds as B.
        from repro.core.algorithm_b import algorithm_b_rounds
        for t in range(3, 9):
            for b in range(3, t + 1):
                assert algorithm_a_rounds(t, b) >= algorithm_b_rounds(t, b)

    def test_resilience(self):
        assert algorithm_a_resilience(10) == 3
        assert algorithm_a_resilience(13) == 4

    def test_message_bound(self):
        assert algorithm_a_max_message_entries(10, 3) == 9 * 8

    def test_schedule_uses_resolve_prime_with_conversion_discovery(self):
        schedule = algorithm_a_schedule(5, 3)
        assert all(segment.conversion == "resolve_prime"
                   for segment in schedule.segments)
        assert all(segment.conversion_discovery for segment in schedule.segments)


class TestAgreement:
    def test_standard_battery_n10_t3(self):
        assert_battery_correct(lambda: AlgorithmASpec(3), n=10, t=3)

    def test_standard_battery_n13_t4_b3(self):
        assert_battery_correct(lambda: AlgorithmASpec(3), n=13, t=4)

    def test_standard_battery_n13_t4_b4(self):
        assert_battery_correct(lambda: AlgorithmASpec(4), n=13, t=4)

    def test_initial_value_zero(self):
        assert_battery_correct(lambda: AlgorithmASpec(3), n=10, t=3,
                               initial_value=0)

    def test_round_and_message_bounds_hold(self):
        for scenario, result in run_battery(lambda: AlgorithmASpec(3), n=13, t=4):
            assert result.rounds == algorithm_a_rounds(4, 3)
            assert (result.metrics.max_message_entries()
                    <= algorithm_a_max_message_entries(13, 3))

    def test_fewer_actual_faults_than_t(self):
        from repro.adversary import EquivocatingSourceWithAlliesAdversary
        from repro.experiments.workloads import Scenario
        scenarios = [Scenario("two-faults", frozenset({0, 9}),
                              EquivocatingSourceWithAlliesAdversary)]
        assert_battery_correct(lambda: AlgorithmASpec(3), n=10, t=3,
                               scenarios=scenarios)
