"""Unit tests for cost accounting (repro.runtime.metrics)."""

import pytest

from repro.runtime.metrics import (ComputationMeter, CostModelPoint, RunMetrics,
                                   entry_bits, geometric_mean)


class TestComputationMeter:
    def test_charge_accumulates(self):
        meter = ComputationMeter()
        meter.charge()
        meter.charge(5)
        assert meter.units == 6

    def test_zero_charge_is_noop(self):
        meter = ComputationMeter()
        meter.charge(0)
        assert meter.units == 0


class TestEntryBits:
    def test_longer_paths_cost_more(self):
        assert entry_bits(3, 2, 8) > entry_bits(1, 2, 8)

    def test_larger_networks_cost_more(self):
        assert entry_bits(2, 2, 64) > entry_bits(2, 2, 4)

    def test_minimum_one_bit_for_value(self):
        assert entry_bits(0, 2, 2) >= 1


class TestRunMetrics:
    def make_metrics(self):
        metrics = RunMetrics()
        metrics.record_round(1)
        metrics.record_round(2)
        metrics.record_message(1, sender=0, entries=1, bits=4)
        metrics.record_message(2, sender=1, entries=6, bits=30)
        metrics.record_message(2, sender=2, entries=6, bits=30)
        metrics.record_computation(1, 100)
        metrics.record_computation(2, 250)
        metrics.record_discoveries(1, 2)
        return metrics

    def test_rounds_executed_is_max(self):
        metrics = self.make_metrics()
        assert metrics.rounds_executed == 2

    def test_totals(self):
        metrics = self.make_metrics()
        assert metrics.total_messages() == 3
        assert metrics.total_value_entries() == 13
        assert metrics.total_bits() == 64

    def test_max_message_entries(self):
        metrics = self.make_metrics()
        assert metrics.max_message_entries() == 6

    def test_max_message_bits(self):
        metrics = self.make_metrics()
        assert metrics.max_message_bits() == 30

    def test_per_round_entries(self):
        metrics = self.make_metrics()
        assert metrics.per_round_entries() == [1, 12]

    def test_per_round_entries_empty(self):
        assert RunMetrics().per_round_entries() == []

    def test_computation_aggregates(self):
        metrics = self.make_metrics()
        assert metrics.max_computation_units() == 250
        assert metrics.total_computation_units() == 350

    def test_summary_keys(self):
        summary = self.make_metrics().summary()
        for key in ("rounds", "total_messages", "max_message_entries",
                    "max_computation_units"):
            assert key in summary


class TestSmallHelpers:
    def test_cost_model_point_as_row(self):
        point = CostModelPoint(parameter=3, rounds=10, message_bits=100,
                               computation=1000, extra={"saving": 2})
        row = point.as_row()
        assert row["parameter"] == 3
        assert row["saving"] == 2

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)
        assert geometric_mean([]) is None
        assert geometric_mean([0.0]) is None
