"""Property-based, end-to-end tests: agreement must hold for randomly chosen
faulty sets, adversary strategies, and source values."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adversary import adversary_registry
from repro.core.algorithm_b import AlgorithmBSpec
from repro.core.algorithm_c import AlgorithmCSpec
from repro.core.exponential import ExponentialSpec
from repro.core.hybrid import HybridSpec
from repro.core.protocol import ProtocolConfig
from repro.runtime.simulation import run_agreement

ADVERSARY_NAMES = sorted(adversary_registry())

_settings = settings(max_examples=20, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


def random_faulty(draw, n, t, source=0):
    count = draw(st.integers(min_value=0, max_value=t))
    faulty = draw(st.sets(st.integers(min_value=0, max_value=n - 1),
                          min_size=count, max_size=count))
    return frozenset(faulty)


def check_run(spec, n, t, faulty, adversary_name, value, seed):
    adversary = adversary_registry()[adversary_name]()
    config = ProtocolConfig(n=n, t=t, initial_value=value)
    result = run_agreement(spec, config, faulty, adversary, seed=seed)
    assert result.agreement, (adversary_name, sorted(faulty), result.decisions)
    if result.validity is not None:
        assert result.validity, (adversary_name, sorted(faulty), result.decisions)
    assert result.soundness_of_discovery()


class TestExponentialProperties:
    @_settings
    @given(data=st.data())
    def test_agreement_for_random_faulty_sets_and_adversaries(self, data):
        faulty = random_faulty(data.draw, n=7, t=2)
        adversary_name = data.draw(st.sampled_from(ADVERSARY_NAMES))
        value = data.draw(st.integers(min_value=0, max_value=1))
        seed = data.draw(st.integers(min_value=0, max_value=10))
        check_run(ExponentialSpec(), 7, 2, faulty, adversary_name, value, seed)


class TestAlgorithmBProperties:
    @_settings
    @given(data=st.data())
    def test_agreement_for_random_faulty_sets_and_adversaries(self, data):
        faulty = random_faulty(data.draw, n=9, t=2)
        adversary_name = data.draw(st.sampled_from(ADVERSARY_NAMES))
        value = data.draw(st.integers(min_value=0, max_value=1))
        seed = data.draw(st.integers(min_value=0, max_value=10))
        check_run(AlgorithmBSpec(2), 9, 2, faulty, adversary_name, value, seed)


class TestAlgorithmCProperties:
    @_settings
    @given(data=st.data())
    def test_agreement_for_random_faulty_sets_and_adversaries(self, data):
        faulty = random_faulty(data.draw, n=14, t=2)
        adversary_name = data.draw(st.sampled_from(ADVERSARY_NAMES))
        value = data.draw(st.integers(min_value=0, max_value=1))
        seed = data.draw(st.integers(min_value=0, max_value=10))
        check_run(AlgorithmCSpec(), 14, 2, faulty, adversary_name, value, seed)


class TestHybridProperties:
    @_settings
    @given(data=st.data())
    def test_agreement_for_random_faulty_sets_and_adversaries(self, data):
        faulty = random_faulty(data.draw, n=10, t=3)
        adversary_name = data.draw(st.sampled_from(ADVERSARY_NAMES))
        value = data.draw(st.integers(min_value=0, max_value=1))
        seed = data.draw(st.integers(min_value=0, max_value=10))
        check_run(HybridSpec(3), 10, 3, faulty, adversary_name, value, seed)
