"""Tests for the streaming Monte-Carlo campaign driver and its CLI verb.

The acceptance property of the subsystem, pinned here end to end: a
campaign killed mid-flight — deterministically via ``max_chunks``, and for
real via ``SIGKILL`` on a ``repro mc`` subprocess — and resumed from its
checkpoint finishes with state **bit-identical** (``to_dict()`` equality,
floats included) to an uninterrupted run.  Around it, the checkpoint
discipline shared with sweeps: atomic header creation, digest pinning
(resuming an edited campaign is refused), torn-tail tolerance, and loud
refusal of corruption.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import main
from repro.runtime.errors import ConfigurationError
from repro.stats import (McCell, McSpec, McState, bound_rows, cell_rows,
                         mc_digest, read_mc_checkpoint, render_markdown,
                         render_text, run_mc, to_json, verdict)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def small_spec(**overrides):
    fields = dict(
        cells=(McCell(protocol="exponential", n=7, t=2),
               McCell(protocol="algorithm-a", n=13, t=3,
                      protocol_params={"b": 3})),
        trials=12, sweep_seed=9, chunk_size=5)
    fields.update(overrides)
    return McSpec(**fields)


class TestRunMc:
    def test_complete_campaign_counts_and_verdict(self):
        result = run_mc(small_spec())
        assert result.complete and result.ok
        assert result.executed == 24
        assert result.state.trials_done == 24
        assert [a.trials for a in result.state.aggregates] == [12, 12]
        assert result.problems == ()
        ok, problems = verdict(result)
        assert ok and problems == ()

    def test_streaming_state_is_chunk_order_independent_of_executor(self):
        # The same spec through serial and pool backends must aggregate to
        # identical state: folding is sorted by global index per chunk.
        serial = run_mc(small_spec(executor="serial"))
        pooled = run_mc(small_spec(executor="pool",
                                   executor_params={"max_workers": 2}))
        assert serial.state == pooled.state

    def test_max_chunks_bounds_the_invocation(self, tmp_path):
        ck = str(tmp_path / "mc.jsonl")
        partial = run_mc(small_spec(), checkpoint=ck, max_chunks=2)
        assert not partial.complete and not partial.ok
        assert partial.state.trials_done == 10
        ok, problems = verdict(partial)
        assert not ok and "incomplete" in problems[0]

    def test_interrupt_and_resume_is_bit_identical(self, tmp_path):
        spec = small_spec()
        uninterrupted = run_mc(spec)
        ck = str(tmp_path / "mc.jsonl")
        run_mc(spec, checkpoint=ck, max_chunks=2)
        resumed = run_mc(spec, checkpoint=ck, resume=True)
        assert resumed.complete
        assert resumed.resumed_trials == 10
        assert resumed.executed == spec.total_trials - 10
        assert resumed.state == uninterrupted.state
        assert resumed.state.to_dict() == uninterrupted.state.to_dict()

    def test_resume_of_a_complete_checkpoint_is_a_no_op(self, tmp_path):
        spec = small_spec()
        ck = str(tmp_path / "mc.jsonl")
        first = run_mc(spec, checkpoint=ck)
        again = run_mc(spec, checkpoint=ck, resume=True)
        assert again.complete and again.executed == 0
        assert again.state == first.state

    def test_existing_checkpoint_without_resume_is_refused(self, tmp_path):
        ck = str(tmp_path / "mc.jsonl")
        run_mc(small_spec(), checkpoint=ck, max_chunks=1)
        with pytest.raises(ConfigurationError, match="already exists"):
            run_mc(small_spec(), checkpoint=ck)

    def test_resume_without_checkpoint_is_refused(self):
        with pytest.raises(ConfigurationError, match="checkpoint"):
            run_mc(small_spec(), resume=True)

    def test_edited_campaign_digest_mismatch_is_refused(self, tmp_path):
        ck = str(tmp_path / "mc.jsonl")
        run_mc(small_spec(), checkpoint=ck, max_chunks=1)
        edited = small_spec(trials=13)
        assert mc_digest(edited) != mc_digest(small_spec())
        with pytest.raises(ConfigurationError, match="different campaign"):
            run_mc(edited, checkpoint=ck, resume=True)

    def test_torn_tail_is_tolerated_on_resume(self, tmp_path):
        spec = small_spec()
        ck = str(tmp_path / "mc.jsonl")
        run_mc(spec, checkpoint=ck, max_chunks=2)
        with open(ck, "a", encoding="utf-8") as handle:
            handle.write('{"chunk": 2, "trials_done": 15, "sta')
        state, next_chunk = read_mc_checkpoint(ck, spec)
        assert next_chunk == 2 and state.trials_done == 10
        resumed = run_mc(spec, checkpoint=ck, resume=True)
        assert resumed.state == run_mc(spec).state

    def test_foreign_and_corrupt_checkpoints_are_refused(self, tmp_path):
        spec = small_spec()
        foreign = tmp_path / "foreign.jsonl"
        foreign.write_text('{"kind": "something-else"}\n')
        with pytest.raises(ConfigurationError, match="not an MC"):
            read_mc_checkpoint(str(foreign), spec)
        garbled = tmp_path / "garbled.jsonl"
        garbled.write_text("not json at all\n")
        with pytest.raises(ConfigurationError, match="unreadable header"):
            read_mc_checkpoint(str(garbled), spec)
        ck = str(tmp_path / "mc.jsonl")
        run_mc(spec, checkpoint=ck, max_chunks=1)
        with open(ck, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(
                {"chunk": 1, "trials_done": 7,
                 "state": McState.fresh(spec).to_dict()}) + "\n")
        with pytest.raises(ConfigurationError, match="corrupt"):
            read_mc_checkpoint(ck, spec)

    def test_missing_checkpoint_with_resume_starts_fresh(self, tmp_path):
        ck = str(tmp_path / "mc.jsonl")
        result = run_mc(small_spec(), checkpoint=ck, resume=True)
        assert result.complete and result.resumed_trials == 0

    def test_progress_hook_sees_every_chunk(self):
        seen = []
        spec = small_spec()
        run_mc(spec, progress=lambda c, done, total: seen.append(
            (c, done, total)))
        assert len(seen) == spec.total_chunks
        assert seen[-1] == (spec.total_chunks - 1, 24, 24)


class TestKillSurvival:
    def test_sigkill_mid_campaign_then_resume_matches_uninterrupted(
            self, tmp_path):
        # The acceptance scenario, with a real kill -9: a repro mc
        # subprocess is killed mid-campaign, then the same checkpoint is
        # resumed and must finish bit-identical to an uninterrupted run.
        spec = McSpec(cells=(McCell(protocol="exponential", n=7, t=2),),
                      trials=600, sweep_seed=3, chunk_size=20)
        ck = str(tmp_path / "mc.jsonl")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "mc",
             "--protocol", "exponential", "--cell", "7,2",
             "--trials", "600", "--sweep-seed", "3", "--chunk-size", "20",
             "--checkpoint", ck],
            cwd=REPO_ROOT, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if process.poll() is not None:
                    break
                try:
                    with open(ck, "r", encoding="utf-8") as handle:
                        if sum(1 for _ in handle) >= 3:  # header + 2 chunks
                            break
                except FileNotFoundError:
                    pass
                time.sleep(0.01)
            else:  # pragma: no cover - diagnostics on a wedged subprocess
                pytest.fail("subprocess made no checkpoint progress in 60s")
            if process.poll() is None:
                process.send_signal(signal.SIGKILL)
            process.wait(timeout=30)
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup
                process.kill()
                process.wait()
        state, next_chunk = read_mc_checkpoint(ck, spec)
        resumed = run_mc(spec, checkpoint=ck, resume=True)
        assert resumed.complete
        uninterrupted = run_mc(spec)
        assert resumed.state.to_dict() == uninterrupted.state.to_dict()
        # The resumed invocation really continued, it did not start over
        # (unless the subprocess happened to finish before the kill).
        if next_chunk < spec.total_chunks:
            assert resumed.executed == spec.total_trials - (state.trials_done
                                                            if state else 0)


class TestReporting:
    def test_text_and_markdown_render(self):
        result = run_mc(small_spec())
        text = render_text(result)
        assert "VERDICT: ok" in text and "Wilson" in text
        markdown = render_markdown(result)
        assert markdown.startswith("# Monte-Carlo verification report")
        assert "| cell |" in markdown

    def test_rows_cover_cells_and_bounded_quantities(self):
        result = run_mc(small_spec())
        cells = cell_rows(result)
        assert [row["cell"] for row in cells] == [
            "exponential/two-faced n=7 t=2",
            "algorithm-a/two-faced n=13 t=3"]
        assert all(row["guarantees"] for row in cells)
        bounds = bound_rows(result)
        assert len(bounds) == 6  # 2 cells x 3 bounded quantities
        assert all(row["within"] for row in bounds)

    def test_json_report_round_trips_and_carries_verdict(self):
        result = run_mc(small_spec())
        payload = json.loads(json.dumps(to_json(result)))
        assert payload["ok"] is True
        assert payload["complete"] is True
        assert payload["trials_done"] == 24
        assert len(payload["cells"]) == 2
        assert McSpec.from_dict(payload["spec"]) == small_spec()

    def test_incomplete_campaign_reports_fail(self, tmp_path):
        partial = run_mc(small_spec(),
                         checkpoint=str(tmp_path / "mc.jsonl"),
                         max_chunks=1)
        assert "VERDICT: FAIL" in render_text(partial)
        assert to_json(partial)["ok"] is False


class TestMcCli:
    def test_basic_campaign_exits_zero(self, capsys):
        code = main(["mc", "--protocol", "exponential", "--cell", "7,2",
                     "--trials", "20", "--chunk-size", "10"])
        assert code == 0
        out = capsys.readouterr().out
        assert "VERDICT: ok" in out

    def test_json_output(self, capsys):
        code = main(["mc", "--protocol", "exponential", "algorithm-a",
                     "--cell", "13,3", "--adversary", "two-faced",
                     "--trials", "5", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert len(payload["cells"]) == 2

    def test_max_chunks_slice_exits_two(self, tmp_path, capsys):
        ck = str(tmp_path / "mc.jsonl")
        code = main(["mc", "--protocol", "exponential", "--cell", "7,2",
                     "--trials", "20", "--chunk-size", "5",
                     "--checkpoint", ck, "--max-chunks", "1"])
        assert code == 2
        assert "incomplete" in capsys.readouterr().out

    def test_checkpoint_resume_completes(self, tmp_path, capsys):
        ck = str(tmp_path / "mc.jsonl")
        main(["mc", "--protocol", "exponential", "--cell", "7,2",
              "--trials", "20", "--chunk-size", "5",
              "--checkpoint", ck, "--max-chunks", "2"])
        code = main(["mc", "--protocol", "exponential", "--cell", "7,2",
                     "--trials", "20", "--chunk-size", "5",
                     "--checkpoint", ck, "--resume"])
        assert code == 0
        assert "resumed past 10" in capsys.readouterr().out

    def test_spec_file_round_trip(self, tmp_path, capsys):
        spec = McSpec(cells=(McCell(protocol="exponential", n=7, t=2),),
                      trials=8, sweep_seed=2, chunk_size=4)
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(spec.to_dict()))
        code = main(["mc", "--spec", str(path), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert McSpec.from_dict(payload["spec"]) == spec

    def test_unknown_protocol_and_adversary_are_refused(self):
        with pytest.raises(SystemExit, match="unknown protocol"):
            main(["mc", "--protocol", "nonesuch", "--trials", "1"])
        with pytest.raises(SystemExit, match="unknown adversary"):
            main(["mc", "--adversary", "nonesuch", "--trials", "1"])

    def test_mismatched_executor_params_are_refused(self):
        with pytest.raises(SystemExit, match="--max-workers"):
            main(["mc", "--trials", "1", "--max-workers", "2"])

    def test_verdict_failure_exits_one(self, monkeypatch, capsys):
        # A genuine theorem contradiction should not exist; fabricate one
        # at the aggregate level to pin the exit-code mapping.
        import repro.stats as stats

        real_run_mc = stats.run_mc

        def sabotaged(spec, **kwargs):
            result = real_run_mc(spec, **kwargs)
            result.state.aggregates[0].agreement_failures = 1
            return result

        monkeypatch.setattr(stats, "run_mc", sabotaged)
        code = main(["mc", "--protocol", "exponential", "--cell", "7,2",
                     "--trials", "4", "--chunk-size", "4"])
        assert code == 1
        assert "VERDICT: FAIL" in capsys.readouterr().out
