"""Shared fixtures for the test suite (helpers live in tests/helpers.py)."""

from __future__ import annotations

import pytest

from repro.core.protocol import ProtocolConfig


@pytest.fixture
def small_config() -> ProtocolConfig:
    """The smallest interesting Exponential-Algorithm configuration."""
    return ProtocolConfig(n=7, t=2, initial_value=1)


@pytest.fixture
def algorithm_b_config() -> ProtocolConfig:
    """n ≥ 4t + 1 so Algorithm B applies."""
    return ProtocolConfig(n=13, t=3, initial_value=1)


@pytest.fixture
def algorithm_c_config() -> ProtocolConfig:
    """n large enough that Algorithm C tolerates 3 faults."""
    return ProtocolConfig(n=20, t=3, initial_value=1)


@pytest.fixture
def hybrid_config() -> ProtocolConfig:
    """n ≥ 3t + 1 with t ≥ 3 so the hybrid applies."""
    return ProtocolConfig(n=13, t=4, initial_value=1)
