"""Unit and property tests for the conversion functions resolve and resolve'."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.resolve import (converted_root, majority_value, make_resolve_prime,
                                resolve, resolve_all, resolve_prime)
from repro.core.tree import InfoGatheringTree
from repro.core.values import BOTTOM, DEFAULT_VALUE, is_bottom
from collections import Counter


def tree_with_level2(values, n=None):
    """A two-level tree whose level-2 values are given in child-label order."""
    n = n if n is not None else len(values) + 1
    tree = InfoGatheringTree(source=0, processors=range(n))
    tree.set_root(DEFAULT_VALUE)
    iterator = iter(values)
    tree.grow_level(2, lambda parent, child: next(iterator))
    return tree


class TestMajorityHelper:
    def test_strict_majority_found(self):
        assert majority_value(Counter({1: 3, 0: 2}), 5) == 1

    def test_tie_is_no_majority(self):
        assert majority_value(Counter({1: 2, 0: 2}), 4) is None

    def test_half_is_not_majority(self):
        assert majority_value(Counter({1: 2, 0: 1}), 4) is None

    def test_empty_counter(self):
        assert majority_value(Counter(), 0) is None


class TestResolve:
    def test_leaf_resolves_to_stored_value(self):
        tree = InfoGatheringTree(source=0, processors=range(4))
        tree.set_root(1)
        assert resolve(tree, (0,)) == 1

    def test_majority_of_children(self):
        tree = tree_with_level2([1, 1, 1, 0, 0])
        assert resolve(tree, (0,)) == 1

    def test_no_majority_gives_default(self):
        tree = tree_with_level2([1, 1, 0, 0])
        assert resolve(tree, (0,)) == DEFAULT_VALUE

    def test_three_level_recursion(self):
        tree = InfoGatheringTree(source=0, processors=range(5))
        tree.set_root(0)
        tree.grow_level(2, lambda parent, child: 0)
        # Leaves all say 1, so every level-2 node resolves to 1 and the root does too.
        tree.grow_level(3, lambda parent, child: 1)
        assert resolve(tree, (0,)) == 1

    def test_cache_is_shared_across_nodes(self):
        tree = tree_with_level2([1, 1, 1, 0])
        cache = {}
        resolve(tree, (0,), cache)
        assert (0,) in cache
        assert all(len(seq) <= 2 for seq in cache)

    def test_resolve_all_covers_every_node(self):
        tree = InfoGatheringTree(source=0, processors=range(5))
        tree.set_root(0)
        tree.grow_level(2, lambda parent, child: child % 2)
        tree.grow_level(3, lambda parent, child: child % 2)
        converted = resolve_all(tree, "resolve", t=1)
        assert set(converted) == set(tree.sequences())

    def test_resolve_all_rejects_unknown_conversion(self):
        tree = tree_with_level2([1, 1, 0])
        with pytest.raises(ValueError):
            resolve_all(tree, "not-a-conversion", t=1)


class TestResolvePrime:
    def test_unique_threshold_value_wins(self):
        # t = 1: a value needs at least 2 occurrences and must be the only one.
        tree = tree_with_level2([1, 1, 0, 2], n=5)
        assert resolve_prime(tree, (0,), t=1) == 1

    def test_two_values_above_threshold_give_bottom(self):
        tree = tree_with_level2([1, 1, 0, 0], n=5)
        assert is_bottom(resolve_prime(tree, (0,), t=1))

    def test_no_value_above_threshold_gives_bottom(self):
        tree = tree_with_level2([1, 0, 2, 3], n=5)
        assert is_bottom(resolve_prime(tree, (0,), t=1))

    def test_bottom_children_do_not_count_toward_threshold(self):
        # Build three levels so some level-2 nodes resolve to ⊥ first.
        tree = InfoGatheringTree(source=0, processors=range(7))
        tree.set_root(0)
        tree.grow_level(2, lambda parent, child: 0)
        # Children of each level-2 node: half say 0, half say 1 → ⊥ at t=2
        # except we arrange one node's children to be unanimous.
        def leaf_value(parent, child):
            if parent[-1] == 1:
                return 1
            return child % 2
        tree.grow_level(3, leaf_value)
        converted = resolve_all(tree, "resolve_prime", t=2)
        assert converted[(0, 1)] == 1

    def test_factory_and_wrapper_agree(self):
        tree = tree_with_level2([1, 1, 1, 0], n=5)
        assert make_resolve_prime(1)(tree, (0,)) == resolve_prime(tree, (0,), t=1)

    def test_leaf_resolves_to_stored_value(self):
        tree = InfoGatheringTree(source=0, processors=range(4))
        tree.set_root(1)
        assert resolve_prime(tree, (0,), t=1) == 1


class TestConvertedRoot:
    def test_resolve_root(self):
        tree = tree_with_level2([1, 1, 1, 0])
        assert converted_root(tree, "resolve", t=1) == 1

    def test_resolve_prime_bottom_maps_to_default(self):
        tree = tree_with_level2([1, 1, 0, 0], n=5)
        assert converted_root(tree, "resolve_prime", t=1) == DEFAULT_VALUE

    def test_unknown_conversion_rejected(self):
        tree = tree_with_level2([1, 1, 0])
        with pytest.raises(ValueError):
            converted_root(tree, "majority3000", t=1)


class TestResolveProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=3, max_size=9))
    def test_resolve_matches_explicit_majority_on_two_level_trees(self, values):
        tree = tree_with_level2(values)
        counts = Counter(values)
        expected = DEFAULT_VALUE
        top, top_count = counts.most_common(1)[0]
        if top_count * 2 > len(values):
            expected = top
        assert resolve(tree, (0,)) == expected

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=2), min_size=3, max_size=9),
           st.integers(min_value=1, max_value=3))
    def test_resolve_prime_threshold_semantics(self, values, t):
        tree = tree_with_level2(values, n=len(values) + 1)
        counts = Counter(values)
        winners = [v for v, c in counts.items() if c >= t + 1]
        result = resolve_prime(tree, (0,), t=t)
        if len(winners) == 1:
            assert result == winners[0]
        else:
            assert is_bottom(result)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=3, max_size=8))
    def test_resolve_never_returns_bottom(self, values):
        tree = tree_with_level2(values)
        assert not is_bottom(resolve(tree, (0,)))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=4, max_value=6), st.integers(min_value=0, max_value=1))
    def test_unanimous_tree_resolves_to_the_unanimous_value(self, n, value):
        tree = InfoGatheringTree(source=0, processors=range(n))
        tree.set_root(value)
        tree.grow_level(2, lambda parent, child: value)
        tree.grow_level(3, lambda parent, child: value)
        assert resolve(tree, (0,)) == value
        assert resolve_prime(tree, (0,), t=(n - 1) // 3) == value
