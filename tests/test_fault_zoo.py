"""Tests for the expanded fault-model zoo and the corruption machinery.

Covers the new adversary families (transient corruption, send/receive
omission, crash-recovery, moving target): unit behaviour, registry schemas,
the ``reseed`` hook, seed determinism (including independence from the
global ``random`` module), the state-corruption views shared by the
per-processor and batched drivers, batched/sharded eligibility gating, and
end-to-end safety at resilient parameters.  Cross-engine observational
identity is exercised exhaustively by ``test_flat_engine.py``, which draws
adversaries from the registry; the parity checks here are targeted spot
checks of the corruption hook specifically.
"""

import random

import pytest

from repro.adversary import (AdversaryContext, CrashRecoveryAdversary,
                             MovingTargetAdversary, RandomLiarAdversary,
                             ReceiveOmissionAdversary, SendOmissionAdversary,
                             TransientCorruptionAdversary, adversary_registry)
from repro.api import RunRequest, execute
from repro.api.registries import adversary_registry as api_adversary_registry
from repro.api.registries import build_adversary
from repro.core import engine as engine_module
from repro.core.exponential import ExponentialSpec
from repro.core.protocol import ProtocolConfig
from repro.runtime.corruption import corruption_enabled, tree_state_views
from repro.runtime.errors import SimulationError
from repro.runtime.simulation import run_agreement

ZOO = ("transient-corruption", "send-omission", "receive-omission",
       "crash-recovery", "moving-target")


def bind(adversary, n=7, t=2, faulty=(5, 6), seed=0):
    config = ProtocolConfig(n=n, t=t, initial_value=1)
    context = AdversaryContext(config=config, spec=ExponentialSpec(),
                               faulty=frozenset(faulty), seed=seed)
    adversary.bind(context)
    return adversary, config


class TestRegistry:
    def test_zoo_families_registered_in_both_registries(self):
        for name in ZOO:
            assert name in adversary_registry()
            assert name in api_adversary_registry()

    def test_api_registry_builds_with_schema_params(self):
        built = build_adversary("transient-corruption",
                                {"corrupt_rounds": 2, "victims": 2,
                                 "flips": 3})
        assert (built.corrupt_rounds, built.victims, built.flips) == (2, 2, 3)
        assert build_adversary("send-omission",
                               {"rate_percent": 75}).rate_percent == 75
        built = build_adversary("crash-recovery",
                                {"crash_round": 3, "silent_rounds": 4})
        assert (built.crash_round, built.silent_rounds) == (3, 4)
        built = build_adversary("moving-target",
                                {"active": 2, "rotate_every": 2})
        assert (built.active, built.rotate_every) == (2, 2)


class TestSendOmission:
    def test_drop_decisions_are_deterministic_and_order_independent(self):
        first, _ = bind(SendOmissionAdversary(rate_percent=50))
        second, _ = bind(SendOmissionAdversary(rate_percent=50))
        edges = [(r, s, d) for r in (1, 2, 3) for s in (5, 6)
                 for d in (0, 1, 2)]
        forward = [first.suppress(*edge) for edge in edges]
        backward = [second.suppress(*edge) for edge in reversed(edges)]
        assert forward == list(reversed(backward))
        assert any(forward) and not all(forward)  # a 50% rate drops *some*

    def test_rate_extremes(self):
        never, _ = bind(SendOmissionAdversary(rate_percent=0))
        always, _ = bind(SendOmissionAdversary(rate_percent=100))
        assert not never.suppress(1, 5, 0)
        assert always.suppress(1, 5, 0)

    def test_drops_depend_on_the_seed(self):
        a, _ = bind(SendOmissionAdversary(rate_percent=50), seed=0)
        b, _ = bind(SendOmissionAdversary(rate_percent=50), seed=99)
        edges = [(r, 5, d) for r in (1, 2, 3) for d in range(5)]
        assert [a.suppress(*e) for e in edges] != \
            [b.suppress(*e) for e in edges]


class TestCrashRecovery:
    def test_outage_window(self):
        adversary, _ = bind(CrashRecoveryAdversary(crash_round=2,
                                                   silent_rounds=2))
        assert not adversary.suppress(1, 5, 0)
        assert adversary.suppress(2, 5, 0)
        assert adversary.suppress(3, 5, 0)
        assert not adversary.suppress(4, 5, 0)  # rejoined, stale state

    def test_crash_round_clamped_to_two(self):
        # A processor that crashes before storing its root has no state to
        # rejoin with — that is SilentAdversary, not recovery.
        assert CrashRecoveryAdversary(crash_round=0).crash_round == 2
        assert CrashRecoveryAdversary(crash_round=1).crash_round == 2

    def test_declares_batched_fallback(self):
        assert CrashRecoveryAdversary.batched_fallback_reason is not None
        assert ReceiveOmissionAdversary.batched_fallback_reason is not None
        assert SendOmissionAdversary.batched_fallback_reason is None
        assert MovingTargetAdversary.batched_fallback_reason is None
        assert TransientCorruptionAdversary.batched_fallback_reason is None


class TestMovingTarget:
    def test_rotation_cycles_through_the_budget(self):
        adversary, _ = bind(MovingTargetAdversary(active=1, rotate_every=1),
                            faulty=(4, 5, 6), t=3, n=10)
        sets = [adversary.active_set(r) for r in (1, 2, 3, 4)]
        assert sets == [(4,), (5,), (6,), (4,)]

    def test_cumulative_set_stays_within_the_bound_faulty_set(self):
        adversary, _ = bind(MovingTargetAdversary(active=2, rotate_every=2),
                            faulty=(4, 5, 6), t=3, n=10)
        seen = set()
        for round_number in range(1, 9):
            active = adversary.active_set(round_number)
            assert len(active) == 2
            seen.update(active)
        assert seen <= {4, 5, 6}

    def test_active_width_capped_by_membership(self):
        adversary, _ = bind(MovingTargetAdversary(active=5), faulty=(5, 6))
        assert len(adversary.active_set(1)) == 2


class TestTransientCorruption:
    def _views(self, config, spec, rounds=1):
        """Real post-round-1 tree views from a tiny driven execution."""
        from repro.runtime.messages import Message
        processors = {pid: spec.build(pid, config)
                      for pid in config.processors[:5]}
        for pid, proc in processors.items():
            proc.outgoing(1)
        source_value = config.initial_value
        for pid, proc in processors.items():
            if pid != config.source:
                proc.incoming(1, {config.source:
                                  Message({(config.source,): source_value},
                                          config.source, 1)})
        return processors

    def test_flips_only_inside_the_window(self):
        adversary, config = bind(TransientCorruptionAdversary(
            corrupt_rounds=1, victims=2, flips=1), faulty=(5, 6))
        spec = ExponentialSpec()
        processors = self._views(config, spec)
        views = tree_state_views(processors, config)
        assert sorted(views) == [1, 2, 3, 4]  # correct non-source EIG procs
        before = {pid: view.values() for pid, view in views.items()}
        adversary.corrupt_state(1, views)
        after = {pid: view.values() for pid, view in views.items()}
        changed = [pid for pid in views if before[pid] != after[pid]]
        assert changed == [1, 2]  # the two lowest-numbered victims
        assert all(value in config.domain
                   for pid in views for value in after[pid])
        # Past the window the hook is a no-op.
        adversary.corrupt_state(2, views)
        assert {pid: view.values() for pid, view in views.items()} == after

    def test_corruption_enabled_only_for_overriders(self):
        assert corruption_enabled(TransientCorruptionAdversary())
        assert not corruption_enabled(SendOmissionAdversary())
        assert not corruption_enabled(MovingTargetAdversary())


class TestReseed:
    def test_reseed_before_bind_changes_the_stream(self):
        plain = RandomLiarAdversary()
        reseeded = RandomLiarAdversary()
        reseeded.reseed(1234)
        bind(plain, faulty=(0, 6), seed=0)
        bind(reseeded, faulty=(0, 6), seed=0)
        a = plain.round_messages(1, {})
        b = reseeded.round_messages(1, {})
        values_a = [a[0][d].value_for((0,)) for d in sorted(a[0])]
        values_b = [b[0][d].value_for((0,)) for d in sorted(b[0])]
        # Same context seed, different override: different noise.  (Equal
        # streams have probability 2^-6 per value; this pair differs.)
        assert values_a != values_b

    def test_reseed_after_bind_raises(self):
        adversary, _ = bind(RandomLiarAdversary())
        with pytest.raises(SimulationError, match="reseed"):
            adversary.reseed(7)

    def test_reseed_uniform_across_the_registry(self):
        for name, factory in adversary_registry().items():
            adversary = factory()
            adversary.reseed(42)  # every strategy accepts the hook pre-bind


class TestDeterminism:
    """Satellite: no adversary reads the global random module."""

    @pytest.mark.parametrize("adversary_name",
                             ["random-liar", "send-omission",
                              "transient-corruption", "staggered-crash"])
    def test_runs_are_seed_deterministic_and_global_rng_independent(
            self, adversary_name):
        request = RunRequest(protocol="exponential", n=7, t=2, faulty=(5, 6),
                             adversary=adversary_name, initial_value=1,
                             seed=3)
        random.seed(111)
        first = execute(request)
        random.seed(999)  # a different global stream must change nothing
        second = execute(request)
        assert first == second


class TestEndToEnd:
    @pytest.mark.parametrize("adversary_name", ZOO)
    def test_zoo_preserves_safety_at_resilient_parameters(self,
                                                          adversary_name):
        """Default-strength zoo faults stay absorbed when n >= 3t + 1."""
        for seed in (0, 1):
            report = execute(RunRequest(
                protocol="exponential", n=7, t=2, faulty=(5, 6),
                adversary=adversary_name, initial_value=1, seed=seed))
            assert report.agreement, (adversary_name, seed)
            assert report.validity, (adversary_name, seed)

    @pytest.mark.parametrize("scenario", ZOO)
    def test_fault_zoo_battery_is_addressable_by_name(self, scenario):
        report = execute(RunRequest(protocol="exponential", n=7, t=2,
                                    initial_value=1, scenario=scenario,
                                    battery="fault-zoo"))
        assert report.agreement

    def test_transient_corruption_beyond_the_model_can_break_agreement(self):
        """State flips on correct processors sit outside the Byzantine
        model: enough victims break agreement even at n >= 3t + 1.  This is
        the zoo's raison d'être, so the behaviour is pinned, not hidden."""
        report = execute(RunRequest(
            protocol="exponential", n=7, t=2, faulty=(2,),
            adversary="transient-corruption",
            adversary_params={"corrupt_rounds": 1, "victims": 3, "flips": 1},
            initial_value=1, seed=364022971))
        assert not report.agreement


@pytest.mark.skipif(not engine_module.batched_available(),
                    reason="numpy not installed")
class TestCorruptionParity:
    """Spot checks that the corrupt_state hook fires identically everywhere
    (the exhaustive four-way sweep lives in test_flat_engine.py)."""

    def test_batched_matches_reference_for_corruption(self):
        spec = ExponentialSpec()
        config = ProtocolConfig(n=7, t=2, initial_value=1)
        faulty = frozenset({5, 6})

        def run(batched):
            from repro.core.engine import use_engine
            engine = "numpy" if batched else "reference"
            with use_engine(engine):
                return run_agreement(
                    spec, config, faulty,
                    TransientCorruptionAdversary(corrupt_rounds=2, victims=2,
                                                 flips=2),
                    seed=5, batched=batched)

        reference, batched = run(False), run(True)
        assert batched.decisions == reference.decisions
        assert batched.discovered == reference.discovered
        assert batched.metrics.summary() == reference.metrics.summary()

    def test_sharded_gating(self):
        from repro.runtime.sharding import run_sharded_if_supported
        spec = ExponentialSpec()
        config = ProtocolConfig(n=9, t=2, initial_value=1)
        faulty = frozenset({7, 8})
        # Corruption-hook adversaries stay shardable (single-process batched
        # under the hood) and match the per-processor reference exactly.
        sharded = run_sharded_if_supported(
            spec, config, faulty,
            TransientCorruptionAdversary(corrupt_rounds=2, victims=2,
                                         flips=2),
            5, shards=2)
        assert sharded is not None
        from repro.core.engine import use_engine
        with use_engine("reference"):
            reference = run_agreement(
                spec, config, faulty,
                TransientCorruptionAdversary(corrupt_rounds=2, victims=2,
                                             flips=2),
                seed=5)
        assert sharded.decisions == reference.decisions
        assert sharded.metrics.summary() == reference.metrics.summary()
        # Fallback-reason adversaries decline the sharded path entirely.
        assert run_sharded_if_supported(
            spec, config, faulty, CrashRecoveryAdversary(), 5,
            shards=2) is None
