"""Tests for the command-line interface."""

import pytest

from repro.cli import build_spec, main


class TestBuildSpec:
    def test_known_protocols(self):
        assert build_spec("exponential", 3).name == "exponential"
        assert build_spec("hybrid", 3).name == "hybrid(b=3)"
        assert build_spec("algorithm-b", 2).name == "algorithm-b(b=2)"

    def test_unknown_protocol_exits(self):
        with pytest.raises(SystemExit):
            build_spec("raft", 3)


class TestRunCommand:
    def test_successful_run_returns_zero(self, capsys):
        code = main(["run", "--protocol", "exponential", "--n", "7", "--t", "2",
                     "--adversary", "two-faced-source", "--source-faulty"])
        out = capsys.readouterr().out
        assert code == 0
        assert "exponential" in out
        assert "decisions" in out

    def test_hybrid_run(self, capsys):
        code = main(["run", "--protocol", "hybrid", "--n", "10", "--t", "3",
                     "--b", "3", "--adversary", "stealth-path"])
        assert code == 0
        assert "hybrid(b=3)" in capsys.readouterr().out

    def test_faults_flag_limits_fault_count(self, capsys):
        code = main(["run", "--protocol", "exponential", "--n", "7", "--t", "2",
                     "--faults", "1", "--adversary", "silent"])
        assert code == 0


class TestExperimentsCommand:
    def test_only_filter_limits_output(self, capsys):
        code = main(["experiments", "--scale", "small", "--only", "E8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "E8-dominance" in out
        assert "E1-theorem1-hybrid" not in out
