"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import build_spec, main
from repro.core import engine as engine_module


class TestBuildSpec:
    def test_known_protocols(self):
        assert build_spec("exponential", 3).name == "exponential"
        assert build_spec("hybrid", 3).name == "hybrid(b=3)"
        assert build_spec("algorithm-b", 2).name == "algorithm-b(b=2)"

    def test_unknown_protocol_exits(self):
        with pytest.raises(SystemExit):
            build_spec("raft", 3)


class TestRunCommand:
    def test_successful_run_returns_zero(self, capsys):
        code = main(["run", "--protocol", "exponential", "--n", "7", "--t", "2",
                     "--adversary", "two-faced-source", "--source-faulty"])
        out = capsys.readouterr().out
        assert code == 0
        assert "exponential" in out
        assert "decisions" in out

    def test_hybrid_run(self, capsys):
        code = main(["run", "--protocol", "hybrid", "--n", "10", "--t", "3",
                     "--b", "3", "--adversary", "stealth-path"])
        assert code == 0
        assert "hybrid(b=3)" in capsys.readouterr().out

    def test_faults_flag_limits_fault_count(self, capsys):
        code = main(["run", "--protocol", "exponential", "--n", "7", "--t", "2",
                     "--faults", "1", "--adversary", "silent"])
        assert code == 0


class TestEngineFlag:
    @pytest.fixture(autouse=True)
    def _restore_engine(self):
        previous = engine_module.get_default_engine()
        previous_env = os.environ.get("REPRO_EIG_ENGINE")
        yield
        engine_module.set_default_engine(previous)
        if previous_env is None:
            os.environ.pop("REPRO_EIG_ENGINE", None)
        else:
            os.environ["REPRO_EIG_ENGINE"] = previous_env

    def test_run_accepts_every_available_engine(self, capsys):
        for name in engine_module.available_engines():
            code = main(["run", "--protocol", "exponential", "--n", "7",
                         "--t", "2", "--adversary", "two-faced-source",
                         "--source-faulty", "--engine", name])
            assert code == 0, name
            # The choice is exported for parallel workers.
            assert os.environ["REPRO_EIG_ENGINE"] == name
            capsys.readouterr()

    @pytest.mark.skipif(not engine_module.batched_available(),
                        reason="numpy not installed")
    def test_run_batched_flag(self, capsys):
        code = main(["run", "--protocol", "exponential", "--n", "7",
                     "--t", "2", "--adversary", "two-faced-source",
                     "--source-faulty", "--batched"])
        assert code == 0
        assert "exponential" in capsys.readouterr().out

    @pytest.mark.skipif(not engine_module.batched_available(),
                        reason="numpy not installed")
    def test_run_batched_falls_back_for_unsupported_spec(self, capsys):
        code = main(["run", "--protocol", "hybrid", "--n", "10", "--t", "3",
                     "--b", "3", "--adversary", "stealth-path", "--batched"])
        assert code == 0
        assert "hybrid(b=3)" in capsys.readouterr().out

    def test_run_rejects_unregistered_numpy_engine(self, monkeypatch, capsys):
        monkeypatch.setattr(engine_module, "numpy_available", lambda: False)
        with pytest.raises(SystemExit, match="requires numpy"):
            main(["run", "--protocol", "exponential", "--n", "7", "--t", "2",
                  "--engine", "numpy"])

    def test_experiments_accept_engine(self, capsys):
        code = main(["experiments", "--scale", "small", "--only", "E8",
                     "--engine", "fast"])
        assert code == 0
        assert "E8-dominance" in capsys.readouterr().out


class TestExperimentsCommand:
    def test_only_filter_limits_output(self, capsys):
        code = main(["experiments", "--scale", "small", "--only", "E8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "E8-dominance" in out
        assert "E1-theorem1-hybrid" not in out
