"""Tests for the command-line interface (run / sweep / experiments)."""

import json
import os

import pytest

from repro.api import RunReport
from repro.cli import build_request, main
from repro.core import engine as engine_module


class TestBuildRequest:
    def test_known_protocols(self):
        assert build_request("exponential", 7, 2).protocol == "exponential"
        request = build_request("hybrid", 16, 5, b=3)
        assert request.protocol == "hybrid"
        assert request.protocol_params == {"b": 3}
        # parameter-less protocols do not receive the block parameter
        assert build_request("algorithm-c", 14, 2, b=3).protocol_params == {}

    def test_unknown_protocol_exits(self):
        with pytest.raises(SystemExit):
            build_request("raft", 7, 2)

    def test_faulty_set_from_flags(self):
        request = build_request("exponential", 7, 2, faults=2,
                                source_faulty=True)
        assert request.faulty == (0, 6)


class TestRunCommand:
    def test_successful_run_returns_zero(self, capsys):
        code = main(["run", "--protocol", "exponential", "--n", "7", "--t", "2",
                     "--adversary", "two-faced-source", "--source-faulty"])
        out = capsys.readouterr().out
        assert code == 0
        assert "exponential" in out
        assert "decisions" in out

    def test_hybrid_run(self, capsys):
        code = main(["run", "--protocol", "hybrid", "--n", "10", "--t", "3",
                     "--b", "3", "--adversary", "stealth-path"])
        assert code == 0
        assert "hybrid(b=3)" in capsys.readouterr().out

    def test_faults_flag_limits_fault_count(self, capsys):
        code = main(["run", "--protocol", "exponential", "--n", "7", "--t", "2",
                     "--faults", "1", "--adversary", "silent"])
        assert code == 0

    def test_agreement_failure_sets_exit_code(self, capsys):
        # 3 > t faults with an equivocating source: agreement breaks.
        code = main(["run", "--protocol", "exponential", "--n", "7", "--t", "2",
                     "--faults", "3", "--source-faulty",
                     "--adversary", "equivocating-source-allies"])
        assert code == 1

    def test_json_output_round_trips(self, capsys):
        code = main(["run", "--protocol", "exponential", "--n", "7", "--t", "2",
                     "--adversary", "two-faced-source", "--source-faulty",
                     "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        report = RunReport.from_dict(payload)
        assert report.protocol == "exponential"
        assert report.agreement
        assert report.engine == "auto"
        assert report.to_dict() == payload

    def test_json_reports_engine_metadata(self, capsys):
        code = main(["run", "--protocol", "exponential", "--n", "7", "--t", "2",
                     "--adversary", "silent", "--engine", "fast", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"] == "fast"
        assert payload["engine_resolved"] == "fast"


class TestEngineFlag:
    @pytest.fixture(autouse=True)
    def _restore_engine(self):
        previous = engine_module.get_default_engine()
        previous_env = os.environ.get("REPRO_EIG_ENGINE")
        yield
        engine_module.set_default_engine(previous)
        if previous_env is None:
            os.environ.pop("REPRO_EIG_ENGINE", None)
        else:
            os.environ["REPRO_EIG_ENGINE"] = previous_env

    def test_run_accepts_every_available_engine(self, capsys):
        for name in engine_module.available_engines():
            code = main(["run", "--protocol", "exponential", "--n", "7",
                         "--t", "2", "--adversary", "two-faced-source",
                         "--source-faulty", "--engine", name])
            assert code == 0, name
            capsys.readouterr()

    def test_run_engine_auto_reports_resolution(self, capsys):
        code = main(["run", "--protocol", "exponential", "--n", "7", "--t", "2",
                     "--adversary", "silent", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        expected = ("batched" if engine_module.batched_available()
                    else "fast")
        assert payload["engine_resolved"] == expected

    @pytest.mark.skipif(not engine_module.batched_available(),
                        reason="numpy not installed")
    def test_run_batched_flag(self, capsys):
        code = main(["run", "--protocol", "exponential", "--n", "7",
                     "--t", "2", "--adversary", "two-faced-source",
                     "--source-faulty", "--batched", "--json"])
        assert code == 0
        assert json.loads(capsys.readouterr().out)["engine_resolved"] == "batched"

    @pytest.mark.skipif(not engine_module.batched_available(),
                        reason="numpy not installed")
    def test_batched_flag_composes_with_numpy_engine(self, capsys):
        # --batched runs on the numpy layer, so --engine numpy must not
        # degrade it to the per-processor path.
        code = main(["run", "--protocol", "exponential", "--n", "7",
                     "--t", "2", "--adversary", "silent",
                     "--batched", "--engine", "numpy", "--json"])
        assert code == 0
        assert json.loads(capsys.readouterr().out)["engine_resolved"] == "batched"

    @pytest.mark.skipif(not engine_module.batched_available(),
                        reason="numpy not installed")
    def test_run_batched_falls_back_for_unsupported_spec(self, capsys):
        with pytest.warns(RuntimeWarning, match="not supported"):
            code = main(["run", "--protocol", "hybrid", "--n", "10", "--t", "3",
                         "--b", "3", "--adversary", "stealth-path",
                         "--engine", "batched"])
        assert code == 0
        assert "hybrid(b=3)" in capsys.readouterr().out

    def test_run_rejects_unregistered_numpy_engine(self, monkeypatch, capsys):
        monkeypatch.setattr(engine_module, "numpy_available", lambda: False)
        with pytest.raises(SystemExit, match="requires numpy"):
            main(["run", "--protocol", "exponential", "--n", "7", "--t", "2",
                  "--engine", "numpy"])

    def test_explicit_engine_overrides_environment_with_warning(
            self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_EIG_ENGINE", "reference")
        with pytest.warns(RuntimeWarning, match="overrides the ambient"):
            code = main(["run", "--protocol", "exponential", "--n", "7",
                         "--t", "2", "--adversary", "silent",
                         "--engine", "fast", "--json"])
        assert code == 0
        assert json.loads(capsys.readouterr().out)["engine_resolved"] == "fast"

    def test_experiments_accept_engine(self, capsys):
        code = main(["experiments", "--scale", "small", "--only", "E8",
                     "--engine", "fast"])
        assert code == 0
        assert "E8-dominance" in capsys.readouterr().out
        # The ambient choice is exported for parallel workers.
        assert os.environ["REPRO_EIG_ENGINE"] == "fast"


class TestSweepCommand:
    @pytest.fixture()
    def request_file(self, tmp_path):
        payload = {"requests": [
            {"protocol": "exponential", "n": 7, "t": 2, "initial_value": 1,
             "scenario": "faulty-source-allies", "battery": "worst-case"},
            {"protocol": "algorithm-c", "n": 14, "t": 2, "initial_value": 1,
             "faulty": [12, 13], "adversary": "stealth-path",
             "engine": "fast"},
        ]}
        path = tmp_path / "requests.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def test_sweep_prints_summary_table(self, request_file, capsys):
        code = main(["sweep", request_file, "--serial"])
        out = capsys.readouterr().out
        assert code == 0
        assert "sweep of 2 requests" in out
        assert "exponential" in out and "algorithm-c" in out

    def test_sweep_json_reports_round_trip(self, request_file, capsys):
        code = main(["sweep", request_file, "--serial", "--json"])
        assert code == 0
        reports = [RunReport.from_dict(item)
                   for item in json.loads(capsys.readouterr().out)]
        assert [r.protocol for r in reports] == ["exponential", "algorithm-c"]
        assert all(r.succeeded for r in reports)

    def test_sweep_parallel_matches_serial(self, request_file, capsys):
        code = main(["sweep", request_file, "--max-workers", "2", "--json"])
        assert code == 0
        parallel = capsys.readouterr().out
        code = main(["sweep", request_file, "--serial", "--json"])
        assert code == 0
        assert json.loads(parallel) == json.loads(capsys.readouterr().out)

    def test_sweep_rejects_malformed_file(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([{"protocol": "exponential", "n": 7,
                                     "t": 2, "bogus_field": 1}]))
        with pytest.raises(SystemExit, match="bogus_field"):
            main(["sweep", str(path)])

    def test_sweep_rejects_non_integer_faulty(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([{"protocol": "exponential", "n": 7,
                                     "t": 2, "faulty": ["x"]}]))
        with pytest.raises(SystemExit, match="invalid request"):
            main(["sweep", str(path)])

    def test_sweep_missing_file_exits(self):
        with pytest.raises(SystemExit, match="cannot read"):
            main(["sweep", "/nonexistent/requests.json"])


class TestSweepExecutors:
    @pytest.fixture()
    def request_file(self, tmp_path):
        payload = {"requests": [
            {"protocol": "exponential", "n": 7, "t": 2, "initial_value": 1,
             "scenario": "faulty-source-allies", "battery": "worst-case"},
            {"protocol": "algorithm-a", "n": 10, "t": 3,
             "protocol_params": {"b": 3}, "initial_value": 1,
             "scenario": "silent", "battery": "standard"},
        ]}
        path = tmp_path / "requests.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def test_sweep_reads_stdin(self, request_file, capsys, monkeypatch):
        import io
        monkeypatch.setattr("sys.stdin",
                            io.StringIO(open(request_file).read()))
        code = main(["sweep", "-", "--serial"])
        assert code == 0
        assert "sweep of 2 requests" in capsys.readouterr().out

    def test_sweep_executor_flag_matches_serial(self, request_file, capsys):
        code = main(["sweep", request_file, "--executor", "serial", "--json"])
        assert code == 0
        serial = capsys.readouterr().out
        code = main(["sweep", request_file, "--serial", "--json"])
        assert code == 0
        assert json.loads(serial) == json.loads(capsys.readouterr().out)

    @pytest.mark.skipif(not engine_module.batched_available(),
                        reason="numpy not installed")
    def test_sweep_sharded_executor(self, request_file, capsys):
        code = main(["sweep", request_file, "--executor", "sharded",
                     "--shards", "2", "--json"])
        assert code == 0
        reports = [RunReport.from_dict(item)
                   for item in json.loads(capsys.readouterr().out)]
        assert all(r.succeeded for r in reports)
        assert {r.engine_resolved for r in reports} == {"sharded"}

    def test_sweep_file_may_carry_a_sweep_spec(self, tmp_path, capsys):
        payload = {
            "requests": [
                {"protocol": "exponential", "n": 7, "t": 2,
                 "initial_value": 1, "scenario": "faulty-source-allies",
                 "battery": "worst-case"}],
            "executor": "serial",
            "seed_policy": "derive",
            "sweep_seed": 21,
        }
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(payload))
        code = main(["sweep", str(path), "--json"])
        assert code == 0
        from repro.api import derive_seed
        (report,) = [RunReport.from_dict(item)
                     for item in json.loads(capsys.readouterr().out)]
        assert report.seed == derive_seed(21, 0)

    def test_sweep_checkpoint_and_resume(self, request_file, tmp_path,
                                         capsys):
        checkpoint = str(tmp_path / "sweep.jsonl")
        code = main(["sweep", request_file, "--serial",
                     "--checkpoint", checkpoint, "--json"])
        assert code == 0
        first = json.loads(capsys.readouterr().out)
        lines = open(checkpoint).read().splitlines()
        assert len(lines) == 3  # header + 2 completions
        code = main(["sweep", request_file, "--serial",
                     "--checkpoint", checkpoint, "--resume", "--json"])
        assert code == 0
        assert json.loads(capsys.readouterr().out) == first
        # The resumed run appended nothing: everything was already logged.
        assert open(checkpoint).read().splitlines() == lines

    def test_resume_without_checkpoint_exits(self, request_file):
        with pytest.raises(SystemExit, match="--checkpoint"):
            main(["sweep", request_file, "--resume"])

    def test_existing_checkpoint_without_resume_exits(self, request_file,
                                                      tmp_path, capsys):
        checkpoint = str(tmp_path / "sweep.jsonl")
        assert main(["sweep", request_file, "--serial",
                     "--checkpoint", checkpoint]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="already exists"):
            main(["sweep", request_file, "--serial",
                  "--checkpoint", checkpoint])

    def test_bare_shards_flag_implies_sharded_executor(self, request_file,
                                                       capsys):
        code = main(["sweep", request_file, "--shards", "2", "--json"])
        assert code == 0
        reports = [RunReport.from_dict(item)
                   for item in json.loads(capsys.readouterr().out)]
        expected = ("sharded" if engine_module.batched_available()
                    else "fast")
        assert reports[0].engine_resolved == expected

    def test_mismatched_executor_parameter_flags_exit(self, request_file):
        with pytest.raises(SystemExit, match="--shards applies"):
            main(["sweep", request_file, "--serial", "--shards", "2"])
        with pytest.raises(SystemExit, match="--max-workers applies"):
            main(["sweep", request_file, "--executor", "sharded",
                  "--max-workers", "4"])
        with pytest.raises(SystemExit, match="--max-workers applies"):
            main(["sweep", request_file, "--shards", "2",
                  "--max-workers", "4"])

    def test_compact_without_checkpoint_exits(self, request_file):
        with pytest.raises(SystemExit, match="--checkpoint"):
            main(["sweep", request_file, "--compact"])

    def test_compact_rewrites_duplicates_and_torn_tail(self, request_file,
                                                       tmp_path, capsys):
        checkpoint = str(tmp_path / "sweep.jsonl")
        assert main(["sweep", request_file, "--serial",
                     "--checkpoint", checkpoint]) == 0
        capsys.readouterr()
        lines = open(checkpoint).read().splitlines()
        with open(checkpoint, "a") as handle:
            handle.write(lines[1] + "\n")           # a duplicate completion
            handle.write(lines[2][:len(lines[2]) // 2])  # a crash tail
        code = main(["sweep", request_file, "--checkpoint", checkpoint,
                     "--compact"])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 duplicate(s) dropped" in out
        assert "torn tail repaired" in out
        # Compaction is idempotent and leaves a clean, resumable log.
        code = main(["sweep", request_file, "--checkpoint", checkpoint,
                     "--compact", "--json"])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary == {"completed": 2, "duplicates_dropped": 0,
                           "torn_tail_repaired": False}
        assert main(["sweep", request_file, "--serial",
                     "--checkpoint", checkpoint, "--resume"]) == 0

    def test_compact_executes_nothing(self, request_file, tmp_path, capsys):
        checkpoint = str(tmp_path / "sweep.jsonl")
        assert main(["sweep", request_file, "--serial",
                     "--checkpoint", checkpoint]) == 0
        capsys.readouterr()
        before = open(checkpoint).read()
        assert main(["sweep", request_file, "--checkpoint", checkpoint,
                     "--compact"]) == 0
        out = capsys.readouterr().out
        assert "sweep of" not in out  # no run happened, only the rewrite
        assert open(checkpoint).read() == before


class TestServeCommand:
    def test_serve_rejects_a_queue_without_slots(self):
        with pytest.raises(SystemExit, match="at least one slot"):
            main(["serve", "--max-queue", "0"])

    def test_serve_rejects_a_workerless_pool(self):
        with pytest.raises(SystemExit, match="at least one worker"):
            main(["serve", "--workers", "0"])

    def test_serve_rejects_a_missing_chaos_policy(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read chaos policy"):
            main(["serve", "--chaos", str(tmp_path / "absent.json")])


class TestValidateCommand:
    def test_validate_reports_resolution_without_executing(self, tmp_path,
                                                           capsys):
        payload = [
            {"protocol": "exponential", "n": 7, "t": 2, "initial_value": 1,
             "scenario": "faulty-source-allies", "battery": "worst-case"},
            {"protocol": "algorithm-c", "n": 14, "t": 2, "initial_value": 1,
             "faulty": [12, 13], "adversary": "stealth-path",
             "engine": "fast"},
        ]
        path = tmp_path / "requests.json"
        path.write_text(json.dumps(payload))
        code = main(["validate", str(path), "--json"])
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        assert [row["status"] for row in rows] == ["ok", "ok"]
        expected = ("batched" if engine_module.batched_available()
                    else "fast")
        assert rows[0]["resolved"] == expected
        assert rows[1]["resolved"] == "fast"
        assert rows[1]["shardable"] is False

    def test_validate_flags_invalid_requests(self, tmp_path, capsys):
        payload = [
            {"protocol": "exponential", "n": 7, "t": 2},
            {"protocol": "raft", "n": 7, "t": 2},
            {"protocol": "hybrid", "n": 10, "t": 3,
             "protocol_params": {"b": "three"}},
        ]
        path = tmp_path / "requests.json"
        path.write_text(json.dumps(payload))
        code = main(["validate", str(path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "2 invalid" in out
        assert "unknown protocol 'raft'" in out
        assert "must be an integer" in out

    def test_validate_reads_stdin(self, capsys, monkeypatch):
        import io
        monkeypatch.setattr("sys.stdin", io.StringIO(json.dumps(
            [{"protocol": "exponential", "n": 7, "t": 2}])))
        assert main(["validate", "-"]) == 0
        assert "0 invalid" in capsys.readouterr().out

    def test_validate_empty_file_exits(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("[]")
        with pytest.raises(SystemExit, match="contains no requests"):
            main(["validate", str(path)])


class TestExperimentsCommand:
    def test_only_filter_limits_output(self, capsys):
        code = main(["experiments", "--scale", "small", "--only", "E8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "E8-dominance" in out
        assert "E1-theorem1-hybrid" not in out
