"""Tests for the pluggable execution layer and durable sweeps.

Covers the executor registry (names, parameter schemas), the
submit/iter_reports/close protocol of every backend, streaming via
``iter_execute``, ``SweepSpec`` serialization and the deterministic
``seed_policy="derive"`` derivation, and the JSONL checkpoint/resume cycle
— including a sweep killed mid-flight by a failing executor whose resumed
report set must equal an uninterrupted run's.
"""

import json
import os

import pytest

from repro.api import (DEFAULT_EXECUTOR, Executor, PoolExecutor, RunReport,
                       RunRequest, SerialExecutor, ShardedRunExecutor,
                       SweepSpec, RegistryError, build_executor,
                       compact_checkpoint, derive_seed, execute,
                       executor_names, executor_registry, iter_execute,
                       iter_sweep, read_checkpoint, resolve_executor,
                       run_sweep, scan_checkpoint, sweep_digest)
from repro.core import engine as engine_module
from repro.runtime.errors import ConfigurationError


def small_requests(count=3, protocol="exponential", **overrides):
    fields = dict(protocol=protocol, n=7, t=2, initial_value=1,
                  scenario="faulty-source-allies", battery="worst-case")
    fields.update(overrides)
    return [RunRequest(**dict(fields, seed=index)) for index in range(count)]


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert set(executor_names()) == {"serial", "pool", "sharded",
                                         "supervised"}
        assert DEFAULT_EXECUTOR in executor_names()

    def test_build_by_name(self):
        assert isinstance(build_executor("serial"), SerialExecutor)
        pool = build_executor("pool", {"max_workers": 2})
        assert isinstance(pool, PoolExecutor) and pool.max_workers == 2
        sharded = build_executor("sharded", {"shards": 3})
        assert isinstance(sharded, ShardedRunExecutor) and sharded.shards == 3

    def test_unknown_name(self):
        with pytest.raises(RegistryError, match="unknown executor"):
            build_executor("gpu")

    def test_unknown_parameter(self):
        with pytest.raises(RegistryError, match="unknown parameter"):
            build_executor("serial", {"max_workers": 2})

    def test_schemas_are_introspectable(self):
        assert "max_workers" in executor_registry()["pool"].schema
        assert "shards" in executor_registry()["sharded"].schema

    def test_resolve_executor(self):
        instance = SerialExecutor()
        assert resolve_executor(instance) == (instance, False)
        built, owned = resolve_executor("serial")
        assert isinstance(built, SerialExecutor) and owned
        default, owned = resolve_executor(None)
        assert isinstance(default, PoolExecutor) and owned
        with pytest.raises(ConfigurationError, match="already-built"):
            resolve_executor(instance, {"max_workers": 2})


class TestExecutorProtocol:
    def test_submit_assigns_sequential_indexes(self):
        executor = SerialExecutor()
        requests = small_requests(3)
        assert [executor.submit(r) for r in requests] == [0, 1, 2]
        reports = dict(executor.iter_reports())
        assert sorted(reports) == [0, 1, 2]
        assert all(isinstance(r, RunReport) for r in reports.values())

    def test_serial_streams_in_submission_order(self):
        executor = SerialExecutor()
        for request in small_requests(3):
            executor.submit(request)
        assert [index for index, _ in executor.iter_reports()] == [0, 1, 2]

    def test_closed_executor_rejects_submissions(self):
        executor = SerialExecutor()
        executor.close()
        with pytest.raises(ConfigurationError, match="closed"):
            executor.submit(small_requests(1)[0])

    def test_context_manager_closes(self):
        with SerialExecutor() as executor:
            pass
        with pytest.raises(ConfigurationError, match="closed"):
            executor.submit(small_requests(1)[0])

    def test_iter_reports_drains_pending_once(self):
        executor = SerialExecutor()
        executor.submit(small_requests(1)[0])
        assert len(list(executor.iter_reports())) == 1
        assert list(executor.iter_reports()) == []

    def test_every_backend_matches_execute(self):
        requests = small_requests(3)
        expected = [execute(r) for r in requests]
        for backend in (SerialExecutor(), PoolExecutor(max_workers=2),
                        ShardedRunExecutor(shards=2)):
            with backend:
                for request in requests:
                    backend.submit(request)
                reports = dict(backend.iter_reports())
            for index, report in enumerate(expected):
                got = reports[index]
                assert got.decisions == report.decisions, backend.name
                assert got.metrics == report.metrics, backend.name
                assert got.discovered == report.discovered, backend.name

    def test_pool_completes_every_request(self):
        requests = small_requests(4)
        with PoolExecutor(max_workers=2) as pool:
            for request in requests:
                pool.submit(request)
            reports = dict(pool.iter_reports())
        assert sorted(reports) == [0, 1, 2, 3]


class TestShardedExecutor:
    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ConfigurationError, match="at least one shard"):
            ShardedRunExecutor(shards=0)

    @pytest.mark.skipif(not engine_module.batched_available(),
                        reason="numpy not installed")
    def test_reports_sharded_engine_resolution(self):
        request = small_requests(1)[0]
        with ShardedRunExecutor(shards=2) as executor:
            executor.submit(request)
            ((_, report),) = list(executor.iter_reports())
        assert report.engine_resolved == "sharded"
        assert report.engine == "auto"
        assert report.agreement

    def test_ineligible_request_falls_back_to_planner_path(self):
        request = RunRequest(protocol="hybrid", protocol_params={"b": 3},
                             n=10, t=3, initial_value=1,
                             scenario="faulty-source-allies",
                             battery="worst-case")
        with ShardedRunExecutor(shards=2) as executor:
            executor.submit(request)
            ((_, report),) = list(executor.iter_reports())
        assert report.engine_resolved != "sharded"
        assert report == execute(request)

    @pytest.mark.skipif(not engine_module.batched_available(),
                        reason="numpy not installed")
    def test_observationally_identical_to_plain_execute(self):
        for request in small_requests(2, protocol="algorithm-a",
                                      protocol_params={"b": 3}, n=10, t=3):
            plain = execute(request)
            with ShardedRunExecutor(shards=2) as executor:
                executor.submit(request)
                ((_, sharded),) = list(executor.iter_reports())
            assert sharded.decisions == plain.decisions
            assert sharded.discovered == plain.discovered
            assert sharded.discovery_logs == plain.discovery_logs
            assert sharded.metrics == plain.metrics


class TestIterExecute:
    def test_yields_every_index(self):
        requests = small_requests(3)
        pairs = dict(iter_execute(requests, executor="serial"))
        assert sorted(pairs) == [0, 1, 2]

    def test_streaming_is_lazy_for_serial(self):
        requests = small_requests(3)
        iterator = iter_execute(requests, executor="serial")
        index, report = next(iterator)
        assert index == 0 and report.agreement
        iterator.close()

    def test_accepts_instance_without_closing_it(self):
        executor = SerialExecutor()
        list(iter_execute(small_requests(1), executor=executor))
        executor.submit(small_requests(1)[0])  # still open


class TestSeedDerivation:
    def test_deterministic_and_position_dependent(self):
        assert derive_seed(42, 0) == derive_seed(42, 0)
        assert derive_seed(42, 0) != derive_seed(42, 1)
        assert derive_seed(42, 0) != derive_seed(43, 0)
        assert all(0 <= derive_seed(s, i) < 2 ** 63
                   for s in (0, 1, 2 ** 40) for i in range(4))

    def test_derived_seeds_pairwise_distinct_in_campaign_window(self):
        # The Monte-Carlo acceptance window: 10^5 consecutive indices.  At
        # the old 31-bit truncation the birthday bound expected ~2.3
        # collisions here; at 63 bits the expectation is ~5e-10, so any
        # collision is a real derivation bug.
        window = 10 ** 5
        seeds = {derive_seed(0, index) for index in range(window)}
        assert len(seeds) == window

    def test_derivation_contract_pinned(self):
        # The exact positional contract (documented in API.md): SHA-256 of
        # "repro-sweep:{sweep_seed}:{index}", first 8 bytes big-endian,
        # masked to 63 bits.  Checkpoint resume depends on this never
        # changing, so pin a literal value.
        import hashlib
        digest = hashlib.sha256(b"repro-sweep:42:7").digest()
        expected = int.from_bytes(digest[:8], "big") & (2 ** 63 - 1)
        assert derive_seed(42, 7) == expected

    def test_derive_policy_rewrites_request_seeds(self):
        spec = SweepSpec(requests=small_requests(3), seed_policy="derive",
                         sweep_seed=42)
        resolved = spec.resolved_requests()
        assert [r.seed for r in resolved] == [derive_seed(42, i)
                                              for i in range(3)]

    def test_fixed_policy_keeps_request_seeds(self):
        requests = small_requests(3)
        spec = SweepSpec(requests=requests)
        assert spec.resolved_requests() == tuple(requests)

    def test_derived_sweeps_reproduce_exactly(self):
        spec = SweepSpec(requests=small_requests(3), executor="serial",
                         seed_policy="derive", sweep_seed=11)
        assert run_sweep(spec) == run_sweep(spec)


class TestSweepSpec:
    def test_round_trips_through_json(self):
        spec = SweepSpec(requests=small_requests(2), executor="sharded",
                         executor_params={"shards": 2},
                         seed_policy="derive", sweep_seed=5)
        wire = json.dumps(spec.to_dict(), sort_keys=True)
        assert SweepSpec.from_dict(json.loads(wire)) == spec

    def test_rejects_unknown_seed_policy(self):
        with pytest.raises(ConfigurationError, match="seed policy"):
            SweepSpec(requests=small_requests(1), seed_policy="random")

    def test_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError, match="unknown SweepSpec"):
            SweepSpec.from_dict({"requests": [], "retries": 3})

    def test_rejects_non_request_payloads(self):
        with pytest.raises(ConfigurationError, match="RunRequest"):
            SweepSpec(requests=[object()])

    def test_digest_tracks_content(self):
        spec = SweepSpec(requests=small_requests(2))
        assert sweep_digest(spec) == sweep_digest(
            SweepSpec(requests=small_requests(2)))
        assert sweep_digest(spec) != sweep_digest(
            SweepSpec(requests=small_requests(2), sweep_seed=1))


#: Seed value marking the request whose worker should die (see below).
_CRASH_SEED = 2


def _dying_worker(request):
    """A pool worker that hard-exits on the marked request.

    ``os._exit`` bypasses every handler, exactly like an OOM kill or a
    segfault in an extension module — the crash mode that poisons a
    :class:`ProcessPoolExecutor` with ``BrokenProcessPool``.
    """
    if request.seed == _CRASH_SEED:
        os._exit(1)
    from repro.api.facade import execute
    return execute(request)


class DyingPool(PoolExecutor):
    _worker = staticmethod(_dying_worker)


class TestPoolBrokenWorker:
    def test_broken_pool_retries_undelivered_requests_serially(self):
        requests = small_requests(4)
        with DyingPool(max_workers=2) as pool:
            for request in requests:
                pool.submit(request)
            reports = dict(pool.iter_reports())
        # Every request still gets a report...
        assert sorted(reports) == [0, 1, 2, 3]
        expected = [execute(r) for r in requests]
        for index in range(4):
            assert reports[index].decisions == expected[index].decisions
            assert reports[index].metrics == expected[index].metrics
        # ...and at least the crashed one carries a structured recovery
        # record.  (Which *other* requests were still in flight when the
        # pool broke is timing-dependent, so only the crashed index is
        # asserted.)
        record = reports[_CRASH_SEED].metadata["resilience"][0]
        assert record["event"] == "retry"
        assert record["stage"] == "pool"
        assert record["attempt"] == 2
        assert record["error"] == "BrokenProcessPool"
        assert record["fallback"] == "serial"

    def test_resilience_metadata_round_trips(self):
        report = execute(small_requests(1)[0])
        assert report.metadata == {}
        assert "metadata" not in report.to_dict()  # old fixtures stay valid
        record = {"event": "retry", "stage": "pool", "attempt": 2,
                  "error": "BrokenProcessPool", "detail": "",
                  "fallback": "serial"}
        report.metadata["resilience"] = [record]
        wire = report.to_dict()
        assert wire["metadata"] == {"resilience": [record]}
        assert RunReport.from_dict(wire) == report


class FailingExecutor(SerialExecutor):
    """Executes *fail_after* requests, then dies — a simulated crash."""

    def __init__(self, fail_after: int) -> None:
        super().__init__()
        self.fail_after = fail_after

    def iter_reports(self):
        for finished, pair in enumerate(super().iter_reports()):
            if finished >= self.fail_after:
                raise RuntimeError("simulated mid-sweep crash")
            yield pair


class TestCheckpointResume:
    @pytest.fixture()
    def spec(self):
        return SweepSpec(requests=small_requests(4), executor="serial",
                         seed_policy="derive", sweep_seed=13)

    def test_checkpoint_records_completions_as_they_finish(self, spec,
                                                           tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        reports = run_sweep(spec, checkpoint=path)
        lines = [json.loads(line)
                 for line in open(path, encoding="utf-8").read().splitlines()]
        assert lines[0]["kind"] == "repro-sweep-checkpoint"
        assert lines[0]["total"] == 4
        assert lines[0]["sweep_sha256"] == sweep_digest(spec)
        assert sorted(entry["index"] for entry in lines[1:]) == [0, 1, 2, 3]
        revived = {entry["index"]: RunReport.from_dict(entry["report"])
                   for entry in lines[1:]}
        assert [revived[i] for i in range(4)] == reports

    def test_crash_resume_skips_completed_and_merges_exactly(self, spec,
                                                             tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        with pytest.raises(RuntimeError, match="simulated mid-sweep crash"):
            run_sweep(spec, checkpoint=path, executor=FailingExecutor(2))
        completed = read_checkpoint(path, spec)
        assert sorted(completed) == [0, 1]

        executed_on_resume = []

        class Recording(SerialExecutor):
            def submit(recording_self, request):
                executed_on_resume.append(request)
                return super().submit(request)

        merged = run_sweep(spec, checkpoint=path, resume=True,
                           executor=Recording())
        # Only the two unfinished requests were re-executed...
        assert len(executed_on_resume) == 2
        assert [r.seed for r in executed_on_resume] == [derive_seed(13, 2),
                                                        derive_seed(13, 3)]
        # ...and the merged report set equals an uninterrupted run's.
        assert merged == run_sweep(spec)
        # The log now covers the full sweep for any further resume.
        assert sorted(read_checkpoint(path, spec)) == [0, 1, 2, 3]

    def test_fully_checkpointed_resume_executes_nothing(self, spec,
                                                        tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        reports = run_sweep(spec, checkpoint=path)

        class Exploding(SerialExecutor):
            def iter_reports(self):
                raise AssertionError("nothing should execute")
                yield  # pragma: no cover

        assert run_sweep(spec, checkpoint=path, resume=True,
                         executor=Exploding()) == reports

    def test_resume_refuses_a_different_sweep(self, spec, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        run_sweep(spec, checkpoint=path)
        other = SweepSpec(requests=small_requests(4), executor="serial",
                          seed_policy="derive", sweep_seed=14)
        with pytest.raises(ConfigurationError, match="different sweep"):
            run_sweep(other, checkpoint=path, resume=True)

    def test_truncated_final_line_is_tolerated(self, spec, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        with pytest.raises(RuntimeError):
            run_sweep(spec, checkpoint=path, executor=FailingExecutor(2))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"index": 2, "report": {"proto')  # crash mid-write
        assert sorted(read_checkpoint(path, spec)) == [0, 1]
        assert run_sweep(spec, checkpoint=path, resume=True) == run_sweep(spec)

    def test_existing_checkpoint_is_never_clobbered(self, spec, tmp_path):
        """Forgetting --resume must not erase a crash log."""
        path = str(tmp_path / "sweep.jsonl")
        with pytest.raises(RuntimeError):
            run_sweep(spec, checkpoint=path, executor=FailingExecutor(2))
        before = open(path, encoding="utf-8").read()
        with pytest.raises(ConfigurationError, match="already exists"):
            run_sweep(spec, checkpoint=path)
        assert open(path, encoding="utf-8").read() == before
        # resume continues it, as the error message instructs.
        assert run_sweep(spec, checkpoint=path, resume=True) == run_sweep(spec)

    def test_malformed_completion_line_is_rejected_loudly(self, spec,
                                                          tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        with pytest.raises(RuntimeError):
            run_sweep(spec, checkpoint=path, executor=FailingExecutor(2))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('42\n')  # valid JSON, not a completion entry
        with pytest.raises(ConfigurationError, match="malformed completion"):
            read_checkpoint(path, spec)
        path2 = str(tmp_path / "sweep2.jsonl")
        with pytest.raises(RuntimeError):
            run_sweep(spec, checkpoint=path2, executor=FailingExecutor(1))
        with open(path2, "a", encoding="utf-8") as handle:
            handle.write('{"index": 2}\n')  # report missing
        with pytest.raises(ConfigurationError, match="malformed completion"):
            read_checkpoint(path2, spec)

    def test_corrupted_header_hash_is_rejected(self, spec, tmp_path):
        """A flipped digest byte must read as "different sweep", not merge."""
        path = str(tmp_path / "sweep.jsonl")
        run_sweep(spec, checkpoint=path)
        lines = open(path, encoding="utf-8").read().splitlines()
        header = json.loads(lines[0])
        digest = header["sweep_sha256"]
        header["sweep_sha256"] = ("0" if digest[0] != "0" else "1") + digest[1:]
        lines[0] = json.dumps(header, sort_keys=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(ConfigurationError, match="different sweep"):
            read_checkpoint(path, spec)

    def test_interleaved_garbage_line_is_rejected(self, spec, tmp_path):
        """Unparseable bytes *before* the end are corruption, not a crash tail."""
        path = str(tmp_path / "sweep.jsonl")
        run_sweep(spec, checkpoint=path)
        lines = open(path, encoding="utf-8").read().splitlines()
        lines.insert(2, "\x00\x00 not json at all {{{")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(ConfigurationError, match="corrupt"):
            read_checkpoint(path, spec)

    def test_duplicate_index_resolves_last_write_wins(self, spec, tmp_path):
        """A re-checkpointed request (e.g. a retried cell) keeps its latest report."""
        path = str(tmp_path / "sweep.jsonl")
        reports = run_sweep(spec, checkpoint=path)
        doctored = RunReport.from_dict(reports[0].to_dict())
        doctored.metadata["retried"] = True
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"index": 0,
                                     "report": doctored.to_dict()},
                                    sort_keys=True) + "\n")
        completed = read_checkpoint(path, spec)
        assert sorted(completed) == [0, 1, 2, 3]
        assert completed[0].metadata == {"retried": True}
        assert completed[1] == reports[1]

    def test_duplicate_index_logs_a_structured_warning(self, spec, tmp_path,
                                                       caplog):
        """Last-write-wins must be loud: a warning plus a duplicates count."""
        path = str(tmp_path / "sweep.jsonl")
        reports = run_sweep(spec, checkpoint=path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"index": 0,
                                     "report": reports[0].to_dict()},
                                    sort_keys=True) + "\n")
        with caplog.at_level("WARNING", logger="repro.sweep"):
            scan = scan_checkpoint(path, spec)
        assert scan.duplicates == 1
        assert [e for e in scan.events
                if e["event"] == "duplicate-completion"] == [
            {"event": "duplicate-completion", "index": 0, "line": 6,
             "path": path}]
        assert any("more than once" in record.message
                   for record in caplog.records)
        assert not scan.torn_tail
        # read_checkpoint is the same scan, reduced to the completions.
        assert read_checkpoint(path, spec) == scan.completed

    def test_compact_drops_duplicates_and_repairs_torn_tail(self, spec,
                                                            tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        reports = run_sweep(spec, checkpoint=path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"index": 1,
                                     "report": reports[1].to_dict()},
                                    sort_keys=True) + "\n")
            handle.write('{"index": 2, "report": {"torn')  # crash mid-write
        summary = compact_checkpoint(path, spec)
        assert summary == {"completed": 4, "duplicates_dropped": 1,
                           "torn_tail_repaired": True}
        # The rewritten log is byte-identical in meaning to the clean one:
        # same header, one line per index, resumable.
        lines = open(path, encoding="utf-8").read().splitlines()
        assert json.loads(lines[0])["sweep_sha256"] == sweep_digest(spec)
        assert [json.loads(line)["index"] for line in lines[1:]] == [0, 1,
                                                                    2, 3]
        assert read_checkpoint(path, spec) == {
            index: reports[index] for index in range(4)}
        assert run_sweep(spec, checkpoint=path, resume=True) == reports

    def test_compact_is_a_no_op_on_a_clean_log(self, spec, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        run_sweep(spec, checkpoint=path)
        before = open(path, encoding="utf-8").read()
        stat_before = os.stat(path).st_mtime_ns
        summary = compact_checkpoint(path, spec)
        assert summary == {"completed": 4, "duplicates_dropped": 0,
                           "torn_tail_repaired": False}
        assert open(path, encoding="utf-8").read() == before
        assert os.stat(path).st_mtime_ns == stat_before  # not rewritten

    def test_compact_missing_file_reports_empty(self, spec, tmp_path):
        summary = compact_checkpoint(str(tmp_path / "absent.jsonl"), spec)
        assert summary == {"completed": 0, "duplicates_dropped": 0,
                           "torn_tail_repaired": False}

    def test_non_checkpoint_file_is_rejected(self, spec, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text('{"kind": "something-else"}\n')
        with pytest.raises(ConfigurationError, match="not a sweep checkpoint"):
            read_checkpoint(str(path), spec)

    def test_missing_checkpoint_reads_empty(self, spec, tmp_path):
        assert read_checkpoint(str(tmp_path / "absent.jsonl"), spec) == {}

    def test_iter_sweep_yields_completed_first_then_streams(self, spec,
                                                            tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        with pytest.raises(RuntimeError):
            run_sweep(spec, checkpoint=path, executor=FailingExecutor(2))
        order = [index for index, _ in
                 iter_sweep(spec, checkpoint=path, resume=True)]
        assert order[:2] == [0, 1]
        assert sorted(order) == [0, 1, 2, 3]


class TestFacadePinning:
    """execute/execute_many/execute_grouped keep their exact behaviour."""

    def test_execute_many_signature_and_order(self):
        from repro.api import execute_grouped, execute_many
        requests = small_requests(3)
        serial = execute_many(requests, parallel=False)
        pooled = execute_many(requests, parallel=True, max_workers=2)
        assert pooled == serial == [execute(r) for r in requests]
        grouped = execute_grouped([requests[:2], requests[2:]],
                                  max_workers=2)
        assert grouped == [serial[:2], serial[2:]]

    def test_run_cells_accepts_an_executor(self):
        from repro.experiments import grid_cells, run_cells
        from repro.core.exponential import ExponentialSpec
        cells = grid_cells([ExponentialSpec()], [(7, 2)],
                           battery="worst-case",
                           scenario_names=["faulty-source-allies"])
        default = run_cells(cells, parallel=False)
        via_serial = run_cells(cells, executor="serial")
        assert [row["decisions"] if "decisions" in row else row["succeeded"]
                for row in via_serial] == \
               [row["decisions"] if "decisions" in row else row["succeeded"]
                for row in default]
