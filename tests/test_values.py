"""Unit tests for the value domain (repro.core.values)."""

import pickle

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.values import (BOTTOM, DEFAULT_VALUE, coerce_value, default_domain,
                               is_bottom)


class TestBottom:
    def test_bottom_is_singleton(self):
        assert BOTTOM is type(BOTTOM)()

    def test_bottom_is_not_default(self):
        assert BOTTOM != DEFAULT_VALUE
        assert not is_bottom(DEFAULT_VALUE)

    def test_is_bottom_recognises_sentinel(self):
        assert is_bottom(BOTTOM)

    def test_bottom_is_falsy(self):
        assert not BOTTOM

    def test_bottom_repr(self):
        assert repr(BOTTOM) == "BOTTOM"

    def test_bottom_survives_pickling_as_singleton(self):
        assert pickle.loads(pickle.dumps(BOTTOM)) is BOTTOM

    def test_bottom_not_in_default_domain(self):
        assert BOTTOM not in default_domain()


class TestDefaultDomain:
    def test_binary_domain(self):
        assert default_domain() == (0, 1)

    def test_larger_domain(self):
        assert default_domain(5) == (0, 1, 2, 3, 4)

    def test_domain_contains_default_value(self):
        assert DEFAULT_VALUE in default_domain(3)

    def test_domain_too_small_rejected(self):
        with pytest.raises(ValueError):
            default_domain(1)


class TestCoerceValue:
    def test_valid_value_passes_through(self):
        assert coerce_value(1, (0, 1)) == 1

    def test_missing_value_becomes_default(self):
        assert coerce_value(None, (0, 1)) == DEFAULT_VALUE

    def test_out_of_domain_value_becomes_default(self):
        assert coerce_value(7, (0, 1)) == DEFAULT_VALUE

    def test_bottom_becomes_default(self):
        assert coerce_value(BOTTOM, (0, 1)) == DEFAULT_VALUE

    def test_garbage_type_becomes_default(self):
        assert coerce_value("junk", (0, 1)) == DEFAULT_VALUE

    @given(st.integers(min_value=2, max_value=12), st.integers())
    def test_coercion_always_lands_in_domain(self, size, value):
        domain = default_domain(size)
        assert coerce_value(value, domain) in domain

    @given(st.integers(min_value=2, max_value=12))
    def test_coercion_is_identity_on_domain(self, size):
        domain = default_domain(size)
        for value in domain:
            assert coerce_value(value, domain) == value
