"""Replay every pinned counterexample in ``tests/pinned_scenarios/``.

Each fixture was produced by ``repro search --pin`` (minimized first) and
freezes a request together with the outcome it must keep reproducing.  A
change that silently *repairs* a pinned violation fails here just as loudly
as one that alters its decisions or round count: either way the behaviour
moved and the fixture must be re-pinned deliberately.
"""

import os

import pytest

from repro.search import load_pinned, pinned_paths, replay_pinned

PINNED_DIR = os.path.join(os.path.dirname(__file__), "pinned_scenarios")
PATHS = pinned_paths(PINNED_DIR)


def test_the_suite_ships_at_least_one_pinned_scenario():
    # The n=3, t=1 lower-bound counterexample is committed with the harness;
    # an empty directory would silently skip the whole parametrized replay.
    assert PATHS, f"no pinned scenarios under {PINNED_DIR}"


@pytest.mark.parametrize("path", PATHS,
                         ids=[os.path.basename(p) for p in PATHS])
def test_pinned_scenario_replays_exactly(path):
    request, expect = load_pinned(path)
    report, _, mismatches = replay_pinned(path)
    assert mismatches == [], (
        f"{os.path.basename(path)} no longer reproduces its pinned outcome: "
        + "; ".join(mismatches))
    # Violation fixtures must still violate — a pin that expects agreement
    # everywhere is not a counterexample and was probably pinned by mistake.
    assert expect["agreement"] == report.agreement
    assert report.rounds == expect["rounds"]


def test_committed_fixture_is_the_known_lower_bound_witness():
    """The shipped fixture is the n = 3, t = 1 impossibility witness."""
    witness = [p for p in PATHS if "n3t1" in os.path.basename(p)]
    assert witness, "the n=3,t=1 witness fixture is missing"
    request, expect = load_pinned(witness[0])
    assert (request.n, request.t) == (3, 1)
    assert request.allow_unsafe  # under-resilient cells must opt in
    assert expect["agreement"] is False
