"""Unit and property tests for label sequences (repro.core.sequences)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.sequences import (all_faulty, child_labels, corresponding_processor,
                                  count_sequences_of_length, is_prefix,
                                  sequences_of_length, strict_prefixes,
                                  validate_sequence)


class TestValidateSequence:
    def test_valid_sequence(self):
        assert validate_sequence((0, 2, 3), source=0, n=5) == (0, 2, 3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            validate_sequence((), source=0, n=4)

    def test_wrong_source_rejected(self):
        with pytest.raises(ValueError):
            validate_sequence((1, 2), source=0, n=4)

    def test_unknown_processor_rejected(self):
        with pytest.raises(ValueError):
            validate_sequence((0, 9), source=0, n=4)

    def test_repetition_rejected_without_flag(self):
        with pytest.raises(ValueError):
            validate_sequence((0, 2, 2), source=0, n=4)

    def test_repetition_allowed_with_flag(self):
        assert validate_sequence((0, 2, 2), source=0, n=4,
                                 allow_repetitions=True) == (0, 2, 2)


class TestChildLabels:
    def test_children_exclude_path(self):
        assert child_labels((0, 2), range(5)) == [1, 3, 4]

    def test_root_children_exclude_source(self):
        assert child_labels((0,), range(4)) == [1, 2, 3]

    def test_repetition_children_are_all_processors(self):
        assert child_labels((0, 2), range(4), allow_repetitions=True) == [0, 1, 2, 3]

    def test_child_count_matches_paper(self):
        # A node α has n − |α| children in the tree without repetitions.
        n = 9
        for length in range(1, 5):
            seq = tuple(range(length))
            assert len(child_labels(seq, range(n))) == n - length


class TestEnumeration:
    def test_length_one_is_root_only(self):
        assert list(sequences_of_length(1, 0, range(5))) == [(0,)]

    def test_length_two_count(self):
        seqs = list(sequences_of_length(2, 0, range(5)))
        assert len(seqs) == 4
        assert all(seq[0] == 0 for seq in seqs)

    def test_count_formula_matches_enumeration(self):
        n = 6
        for length in range(1, 5):
            enumerated = len(list(sequences_of_length(length, 0, range(n))))
            assert enumerated == count_sequences_of_length(length, n)

    def test_count_with_repetitions(self):
        assert count_sequences_of_length(3, 5, allow_repetitions=True) == 25
        enumerated = len(list(sequences_of_length(3, 0, range(5),
                                                  allow_repetitions=True)))
        assert enumerated == 25

    def test_count_zero_when_no_processors_left(self):
        assert count_sequences_of_length(6, 4) == 0

    def test_enumeration_has_no_duplicates(self):
        seqs = list(sequences_of_length(3, 0, range(6)))
        assert len(seqs) == len(set(seqs))

    @given(st.integers(min_value=4, max_value=8), st.integers(min_value=1, max_value=4))
    def test_count_is_falling_factorial(self, n, length):
        expected = 1
        for i in range(1, length):
            expected *= n - i
        assert count_sequences_of_length(length, n) == max(0, expected)


class TestHelpers:
    def test_corresponding_processor_is_last_label(self):
        assert corresponding_processor((0, 3, 2)) == 2

    def test_corresponding_processor_of_empty_rejected(self):
        with pytest.raises(ValueError):
            corresponding_processor(())

    def test_strict_prefixes(self):
        assert list(strict_prefixes((0, 1, 2))) == [(0,), (0, 1)]

    def test_is_prefix(self):
        assert is_prefix((0, 1), (0, 1, 2))
        assert is_prefix((0, 1), (0, 1))
        assert not is_prefix((0, 2), (0, 1, 2))

    def test_all_faulty(self):
        assert all_faulty((0, 3), {0, 3, 5})
        assert not all_faulty((0, 3), {3, 5})

    @given(st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=6))
    def test_every_strict_prefix_is_a_prefix(self, seq):
        seq = tuple(seq)
        for prefix in strict_prefixes(seq):
            assert is_prefix(prefix, seq)
            assert len(prefix) < len(seq)
