"""Property tests for the sharded run executor (repro.runtime.sharding).

The sharded backend must be **observationally identical** to the
single-process batched engine: decisions, discovered faults, discovery
logs, per-round message stats, computation units, and seeded-liar
reproducibility all match, for every eligible protocol × adversary pairing
at small ``n``, across shard counts and faulty-source configurations.
"""

import pytest

from repro.api import build_adversary
from repro.core.algorithm_a import AlgorithmASpec
from repro.core.algorithm_b import AlgorithmBSpec
from repro.core.engine import numpy_available
from repro.core.exponential import ExponentialSpec
from repro.core.hybrid import HybridSpec
from repro.core.npsupport import shard_bounds
from repro.core.protocol import ProtocolConfig
from repro.runtime.simulation import choose_faulty, run_agreement

pytestmark = pytest.mark.skipif(not numpy_available(),
                                reason="numpy not installed")

#: The batched-eligible specs, one small instance each.
SHARDED_CASES = [
    ("exponential", lambda: ExponentialSpec(), 7, 2),
    ("algorithm-a", lambda: AlgorithmASpec(3), 10, 3),
    ("algorithm-b", lambda: AlgorithmBSpec(2), 9, 2),
]

#: Adversaries covering crash, equivocation, stealth, and seeded randomness.
ADVERSARIES = ["benign", "silent", "crash", "two-faced-source",
               "equivocating-source-allies", "random-liar", "stealth-path",
               "minimal-exposure"]


def _run_sharded(spec, config, faulty, adversary_name, seed, shards):
    from repro.runtime.sharding import run_sharded_if_supported
    return run_sharded_if_supported(spec, config, faulty,
                                    build_adversary(adversary_name), seed,
                                    shards=shards)


def _run_batched(spec, config, faulty, adversary_name, seed):
    return run_agreement(spec, config, faulty,
                         build_adversary(adversary_name), seed=seed,
                         batched=True)


def _assert_identical(sharded, batched, context):
    assert sharded is not None, context
    assert sharded.decisions == batched.decisions, context
    assert sharded.discovered == batched.discovered, context
    assert sharded.discovery_logs == batched.discovery_logs, context
    assert sharded.metrics.summary() == batched.metrics.summary(), context
    assert sharded.rounds == batched.rounds, context


@pytest.mark.parametrize("label, spec_fn, n, t", SHARDED_CASES)
@pytest.mark.parametrize("source_faulty", [False, True])
def test_sharded_matches_batched_for_every_adversary(label, spec_fn, n, t,
                                                     source_faulty):
    config = ProtocolConfig(n=n, t=t, initial_value=1)
    faulty = choose_faulty(n, t, source_faulty=source_faulty)
    for adversary in ADVERSARIES:
        batched = _run_batched(spec_fn(), config, faulty, adversary, seed=7)
        sharded = _run_sharded(spec_fn(), config, faulty, adversary, 7,
                               shards=2)
        _assert_identical(sharded, batched,
                          (label, adversary, source_faulty))


@pytest.mark.parametrize("shards", [1, 2, 3, 64])
def test_shard_count_never_changes_observations(shards):
    """Any split — including degenerate and over-subscribed — is identical."""
    spec = ExponentialSpec()
    config = ProtocolConfig(n=7, t=2, initial_value=1)
    faulty = choose_faulty(7, 2, source_faulty=True)
    batched = _run_batched(spec, config, faulty,
                           "equivocating-source-allies", seed=3)
    sharded = _run_sharded(spec, config, faulty,
                           "equivocating-source-allies", 3, shards=shards)
    _assert_identical(sharded, batched, shards)


def test_seeded_random_liar_reproducible_across_shard_counts():
    """The rng lives in the coordinator, so seeds reproduce byte-identically."""
    spec = ExponentialSpec()
    config = ProtocolConfig(n=7, t=2, initial_value=1)
    faulty = choose_faulty(7, 2, source_faulty=True)
    for seed in (0, 1, 99):
        baseline = _run_batched(spec, config, faulty, "random-liar", seed)
        for shards in (1, 2, 3):
            sharded = _run_sharded(spec, config, faulty, "random-liar",
                                   seed, shards=shards)
            _assert_identical(sharded, baseline, (seed, shards))


def test_ineligible_spec_returns_none():
    """Non-EIG specs answer None so callers fall back, adversary unbound."""
    from repro.runtime.sharding import run_sharded_if_supported
    config = ProtocolConfig(n=10, t=3, initial_value=1)
    adversary = build_adversary("silent")
    assert run_sharded_if_supported(HybridSpec(3), config,
                                    choose_faulty(10, 3), adversary,
                                    0, shards=2) is None
    # The adversary was not bound: it can still be used by the fallback.
    result = run_agreement(HybridSpec(3), config, choose_faulty(10, 3),
                           adversary)
    assert result.agreement


def test_no_correct_participant_returns_none():
    from repro.runtime.sharding import run_sharded_if_supported
    config = ProtocolConfig(n=4, t=1, initial_value=1)
    # Everyone but the source is faulty: no participant rows exist.
    assert run_sharded_if_supported(
        ExponentialSpec(), config, frozenset({1, 2, 3}),
        build_adversary("silent"), 0, shards=2) is None


def test_shard_supported_mirrors_batched_support():
    from repro.runtime.batched import batched_supported
    from repro.runtime.sharding import shard_supported
    for spec, n, t in [(ExponentialSpec(), 7, 2), (HybridSpec(3), 10, 3),
                       (AlgorithmBSpec(2), 9, 2)]:
        config = ProtocolConfig(n=n, t=t, initial_value=1)
        assert shard_supported(spec, config) == batched_supported(spec,
                                                                  config)


class TestShardBounds:
    def test_balanced_contiguous_cover(self):
        for count in range(1, 20):
            for shards in range(1, 8):
                bounds = shard_bounds(count, shards)
                assert bounds[0][0] == 0 and bounds[-1][1] == count
                sizes = [stop - start for start, stop in bounds]
                assert all(size >= 1 for size in sizes)
                assert max(sizes) - min(sizes) <= 1
                for (_, stop), (start, _) in zip(bounds, bounds[1:]):
                    assert stop == start

    def test_clamps_to_row_count(self):
        assert len(shard_bounds(3, 64)) == 3

    def test_degenerate(self):
        assert shard_bounds(0, 4) == []
        assert shard_bounds(4, 0) == []
