"""Unit tests for the synchronous network (repro.runtime.network)."""

import pytest

from repro.runtime.errors import SimulationError
from repro.runtime.messages import Message
from repro.runtime.metrics import RunMetrics
from repro.runtime.network import SynchronousNetwork


def make_network(n=4):
    metrics = RunMetrics()
    return SynchronousNetwork(range(n), metrics), metrics


class TestDelivery:
    def test_messages_reach_their_destinations(self):
        network, _ = make_network()
        outboxes = {0: {1: Message({(0,): 1}, 0, 1), 2: Message({(0,): 1}, 0, 1)}}
        inboxes = network.deliver(1, outboxes, count_senders=[0])
        assert inboxes[1][0].value_for((0,)) == 1
        assert inboxes[2][0].value_for((0,)) == 1
        # Inboxes exist only for actual recipients.
        assert inboxes.get(3, {}) == {}

    def test_self_addressed_messages_are_dropped(self):
        network, _ = make_network()
        outboxes = {0: {0: Message({(0,): 1}, 0, 1)}}
        inboxes = network.deliver(1, outboxes, count_senders=[0])
        assert inboxes.get(0, {}) == {}

    def test_sender_identity_is_stamped(self):
        network, _ = make_network()
        forged = Message({(0,): 1}, sender=3, round_number=1)
        inboxes = network.deliver(1, {2: {1: forged}}, count_senders=[])
        assert inboxes[1][2].sender == 2

    def test_unknown_sender_rejected(self):
        network, _ = make_network()
        with pytest.raises(SimulationError):
            network.deliver(1, {9: {1: Message({(0,): 1}, 9, 1)}}, count_senders=[])

    def test_unknown_destination_rejected(self):
        network, _ = make_network()
        with pytest.raises(SimulationError):
            network.deliver(1, {0: {9: Message({(0,): 1}, 0, 1)}}, count_senders=[])

    def test_non_message_payload_rejected(self):
        network, _ = make_network()
        with pytest.raises(SimulationError):
            network.deliver(1, {0: {1: "hello"}}, count_senders=[])


class TestMetricsRecording:
    def test_only_counted_senders_are_charged(self):
        network, metrics = make_network()
        outboxes = {
            0: {1: Message({(0,): 1}, 0, 1)},
            3: {1: Message({(0,): 1}, 3, 1)},
        }
        network.deliver(1, outboxes, count_senders=[0])
        assert metrics.total_messages() == 1
        assert 0 in metrics.sent[1]
        assert 3 not in metrics.sent[1]

    def test_round_number_recorded(self):
        network, metrics = make_network()
        network.deliver(5, {}, count_senders=[])
        assert metrics.rounds_executed == 5

    def test_bits_accounting_positive(self):
        network, metrics = make_network()
        outboxes = {0: {1: Message({(0,): 1, (0, 2): 0}, 0, 2)}}
        network.deliver(2, outboxes, count_senders=[0])
        assert metrics.total_bits() > 0
        assert metrics.total_value_entries() == 2
