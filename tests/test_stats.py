"""Tests for the statistical primitives of repro.stats.

The load-bearing contracts:

* **streaming ≡ batch, bit-identically** — every aggregator folds one value
  at a time, and folding a list in order IS the batch computation, so the
  streaming Monte-Carlo driver loses nothing against a hold-everything
  implementation;
* **exact serialization** — aggregator state round-trips through JSON with
  IEEE-754 exactness (shortest-repr floats), which is what makes
  checkpoint-resume bit-identical;
* **Wilson intervals** match published values and stay inside [0, 1];
* **cells and specs** are JSON-round-trippable, reject unknown fields, and
  derive trials deterministically (seeds positional, fault placements from
  a separate SHA-256 stream);
* **theorem confrontation** resolves the right bound per protocol and
  claims nothing for baselines, out-of-model adversaries, or unsafe cells.
"""

import json
import math
import random

import pytest

from repro.analysis import protocol_bound
from repro.api import RunRequest, derive_seed, execute
from repro.runtime.errors import ConfigurationError
from repro.stats import (COMPUTATION_SLACK, BoundedHistogram, CellAggregate,
                         Extrema, McCell, McSpec, Welford, mc_digest,
                         placement_seed, wilson_interval, z_score)


def json_round_trip(payload):
    return json.loads(json.dumps(payload))


class TestWelford:
    def test_matches_batch_mean_and_variance(self):
        rng = random.Random(7)
        values = [rng.uniform(-50, 50) for _ in range(500)]
        w = Welford()
        for value in values:
            w.update(value)
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        assert w.count == 500
        assert w.mean == pytest.approx(mean, rel=1e-12)
        assert w.variance() == pytest.approx(variance, rel=1e-9)
        assert w.std() == pytest.approx(math.sqrt(variance), rel=1e-9)

    def test_streaming_equals_batch_bit_identically(self):
        # The batch computation IS the same in-order fold, so equality is
        # exact, not approximate — the property checkpoint-resume rests on.
        rng = random.Random(11)
        values = [rng.uniform(0, 1e6) for _ in range(1000)]
        first, second = Welford(), Welford()
        for value in values:
            first.update(value)
        half = len(values) // 2
        for value in values[:half]:
            second.update(value)
        # Simulate a crash: serialize, reload, continue.
        resumed = Welford.from_dict(json_round_trip(second.to_dict()))
        for value in values[half:]:
            resumed.update(value)
        assert resumed == first
        assert resumed.mean == first.mean  # bitwise, not approx

    def test_degenerate_counts(self):
        w = Welford()
        assert w.variance() == 0.0 and w.mean == 0.0
        w.update(3.5)
        assert w.mean == 3.5 and w.variance() == 0.0

    def test_json_round_trip_is_exact(self):
        w = Welford()
        for value in (0.1, 0.2, 1 / 3, 1e300, -7):
            w.update(value)
        restored = Welford.from_dict(json_round_trip(w.to_dict()))
        assert restored == w and restored.m2 == w.m2


class TestExtrema:
    def test_tracks_min_and_max(self):
        e = Extrema()
        assert e.minimum is None and e.maximum is None
        for value in (3, -1, 7, 0):
            e.update(value)
        assert (e.minimum, e.maximum, e.count) == (-1, 7, 4)

    def test_round_trip(self):
        e = Extrema()
        e.update(2.5)
        assert Extrema.from_dict(json_round_trip(e.to_dict())) == e


class TestBoundedHistogram:
    def test_counts_and_overflow(self):
        h = BoundedHistogram(4)
        for value in (0, 1, 1, 3, 9, 100):
            h.update(value)
        assert h.counts == [1, 2, 0, 1]
        assert h.overflow == 2
        assert h.total() == 6
        assert h.nonzero() == {0: 1, 1: 2, 3: 1}

    def test_round_trip(self):
        h = BoundedHistogram(8)
        for value in (2, 2, 5, 40):
            h.update(value)
        assert BoundedHistogram.from_dict(json_round_trip(h.to_dict())) == h

    def test_rejects_bad_shapes(self):
        with pytest.raises(ConfigurationError):
            BoundedHistogram(0)
        with pytest.raises(ConfigurationError):
            BoundedHistogram.from_dict({"bins": 4, "counts": [0, 0],
                                        "overflow": 0})


class TestWilson:
    def test_known_values(self):
        # 10 successes of 50 at 95%: the standard worked example.
        low, high = wilson_interval(10, 50)
        assert low == pytest.approx(0.1124, abs=5e-4)
        assert high == pytest.approx(0.3304, abs=5e-4)

    def test_zero_and_all_failures_stay_in_unit_interval(self):
        low, high = wilson_interval(0, 200)
        assert low == 0.0 and 0 < high < 0.02
        low, high = wilson_interval(200, 200)
        assert 0.98 < low < 1 and high == 1.0

    def test_zero_trials_is_vacuous(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_interval_narrows_with_trials(self):
        narrow = wilson_interval(10, 1000)
        wide = wilson_interval(1, 100)
        assert narrow[1] - narrow[0] < wide[1] - wide[0]

    def test_confidence_levels_nest(self):
        l90, h90 = wilson_interval(5, 100, confidence=0.90)
        l99, h99 = wilson_interval(5, 100, confidence=0.99)
        assert l99 < l90 and h90 < h99

    def test_unsupported_confidence_is_refused(self):
        with pytest.raises(ConfigurationError):
            z_score(0.80)
        with pytest.raises(ConfigurationError):
            wilson_interval(1, 10, confidence=0.42)

    def test_rejects_impossible_counts(self):
        with pytest.raises(ConfigurationError):
            wilson_interval(11, 10)
        with pytest.raises(ConfigurationError):
            wilson_interval(-1, 10)


class TestProtocolBound:
    def test_maps_every_paper_algorithm(self):
        assert protocol_bound("exponential", {}, 7, 2).rounds == 3
        assert protocol_bound("algorithm-a", {"b": 3}, 13, 3) is not None
        assert protocol_bound("algorithm-b", {"b": 3}, 13, 3) is not None
        assert protocol_bound("algorithm-c", {}, 9, 2) is not None
        assert protocol_bound("hybrid", {"b": 3}, 16, 5) is not None

    def test_baselines_have_no_bound(self):
        for baseline in ("psl", "phase-king", "dolev-strong"):
            assert protocol_bound(baseline, {}, 7, 2) is None

    def test_block_algorithms_need_b(self):
        with pytest.raises(ValueError):
            protocol_bound("algorithm-a", {}, 13, 3)


class TestMcCell:
    def test_round_trip(self):
        cell = McCell(protocol="algorithm-a", n=13, t=3,
                      adversary="consistent-liar",
                      protocol_params={"b": 3}, faults=2,
                      source_placement="never")
        assert McCell.from_dict(json_round_trip(cell.to_dict())) == cell

    def test_unknown_fields_are_rejected(self):
        with pytest.raises(ConfigurationError):
            McCell.from_dict({"protocol": "exponential", "n": 7, "t": 2,
                              "typo": True})

    def test_impossible_fault_counts_are_rejected(self):
        with pytest.raises(ConfigurationError):
            McCell(protocol="exponential", n=7, t=2, faults=8)
        with pytest.raises(ConfigurationError):
            McCell(protocol="exponential", n=7, t=2, faults=0,
                   source_placement="always")

    def test_unknown_placement_is_rejected(self):
        with pytest.raises(ConfigurationError):
            McCell(protocol="exponential", n=7, t=2,
                   source_placement="sometimes")


def small_spec(**overrides):
    fields = dict(
        cells=(McCell(protocol="exponential", n=7, t=2),
               McCell(protocol="algorithm-a", n=13, t=3,
                      protocol_params={"b": 3})),
        trials=10, sweep_seed=5, chunk_size=4)
    fields.update(overrides)
    return McSpec(**fields)


class TestMcSpec:
    def test_round_trip_and_digest_stability(self):
        spec = small_spec()
        restored = McSpec.from_dict(json_round_trip(spec.to_dict()))
        assert restored == spec
        assert mc_digest(restored) == mc_digest(spec)

    def test_digest_changes_with_content(self):
        assert mc_digest(small_spec()) != mc_digest(small_spec(trials=11))
        assert mc_digest(small_spec()) != mc_digest(small_spec(sweep_seed=6))

    def test_trial_addressing(self):
        spec = small_spec()  # 2 cells × 10 trials, chunks of 4
        assert spec.total_trials == 20
        assert spec.total_chunks == 5
        assert spec.cell_index(0) == 0 and spec.cell_index(9) == 0
        assert spec.cell_index(10) == 1 and spec.cell_index(19) == 1
        assert list(spec.chunk_indices(4)) == [16, 17, 18, 19]
        with pytest.raises(ConfigurationError):
            spec.cell_index(20)
        with pytest.raises(ConfigurationError):
            spec.chunk_indices(5)

    def test_trial_requests_are_deterministic_and_positional(self):
        spec = small_spec()
        first = spec.trial_request(3)
        again = McSpec.from_dict(json_round_trip(spec.to_dict()))
        assert again.trial_request(3) == first
        assert first.seed == derive_seed(5, 3)
        # Distinct trials draw distinct seeds and (typically) placements.
        assert first.seed != spec.trial_request(4).seed

    def test_fault_placement_varies_across_trials(self):
        spec = small_spec(trials=50)
        faulty_sets = {spec.trial_request(i).faulty for i in range(50)}
        assert len(faulty_sets) > 1  # a Monte-Carlo, not one repeated run
        assert all(len(f) == 2 for f in faulty_sets)

    def test_source_placement_rules(self):
        always = McSpec(cells=(McCell(protocol="exponential", n=7, t=2,
                                      source_placement="always"),),
                        trials=30, sweep_seed=1)
        assert all(0 in always.trial_request(i).faulty for i in range(30))
        never = McSpec(cells=(McCell(protocol="exponential", n=7, t=2,
                                     source_placement="never"),),
                       trials=30, sweep_seed=1)
        assert all(0 not in never.trial_request(i).faulty
                   for i in range(30))

    def test_placement_stream_is_separate_from_seed_stream(self):
        assert placement_seed(5, 3) != derive_seed(5, 3)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            McSpec(cells=(), trials=10)
        with pytest.raises(ConfigurationError):
            small_spec(trials=0)
        with pytest.raises(ConfigurationError):
            small_spec(chunk_size=0)
        with pytest.raises(ConfigurationError):
            McSpec.from_dict({"cells": [], "trials": 1, "typo": 1})


def reports_for(cell, count, sweep_seed=0):
    spec = McSpec(cells=(cell,), trials=count, sweep_seed=sweep_seed)
    return [execute(spec.trial_request(i)) for i in range(count)]


class TestCellAggregate:
    def test_streaming_equals_batch_through_a_checkpoint(self):
        cell = McCell(protocol="exponential", n=7, t=2)
        reports = reports_for(cell, 12)
        batch = CellAggregate(cell)
        for report in reports:
            batch.update(report)
        streamed = CellAggregate(cell)
        for report in reports[:5]:
            streamed.update(report)
        resumed = CellAggregate.from_dict(
            json_round_trip(streamed.to_dict()))
        for report in reports[5:]:
            resumed.update(report)
        assert resumed == batch

    def test_counts_and_bound_rows_on_clean_runs(self):
        cell = McCell(protocol="exponential", n=7, t=2)
        aggregate = CellAggregate(cell)
        for report in reports_for(cell, 8):
            aggregate.update(report)
        assert aggregate.trials == 8
        assert aggregate.agreement_failures == 0
        assert aggregate.guarantees_apply()
        rows = {row["quantity"]: row for row in aggregate.bound_rows()}
        assert set(rows) == {"rounds", "max_message_entries",
                             "max_computation_units"}
        assert all(row["within"] for row in rows.values())
        assert rows["rounds"]["slack"] == 1.0
        assert rows["max_computation_units"]["slack"] == COMPUTATION_SLACK
        assert aggregate.problems() == ()

    def test_out_of_model_adversary_claims_nothing(self):
        cell = McCell(protocol="exponential", n=7, t=2,
                      adversary="transient-corruption")
        aggregate = CellAggregate(cell)
        assert not aggregate.guarantees_apply()
        # Even a fabricated failure is reported, never a hard problem.
        aggregate.trials = 5
        aggregate.agreement_failures = 5
        assert aggregate.problems() == ()

    def test_baseline_has_numbers_but_no_verdict(self):
        cell = McCell(protocol="psl", n=7, t=2)
        aggregate = CellAggregate(cell)
        for report in reports_for(cell, 4):
            aggregate.update(report)
        assert aggregate.bound_rows() == ()
        assert not aggregate.guarantees_apply()

    def test_agreement_failure_is_a_hard_problem_in_model(self):
        cell = McCell(protocol="exponential", n=7, t=2)
        aggregate = CellAggregate(cell)
        for report in reports_for(cell, 3):
            aggregate.update(report)
        aggregate.agreement_failures = 1
        problems = aggregate.problems()
        assert len(problems) == 1 and "agreement failed" in problems[0]

    def test_failure_rates_carry_wilson_cis(self):
        cell = McCell(protocol="exponential", n=7, t=2)
        aggregate = CellAggregate(cell)
        for report in reports_for(cell, 6):
            aggregate.update(report)
        rates = aggregate.failure_rates(0.95)
        assert rates["trials"] == 6
        assert rates["agreement_rate"] == 0.0
        low, high = rates["agreement_ci"]
        assert low == 0.0 and 0 < high < 1
