"""Unit tests for the Information Gathering Trees (repro.core.tree)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.sequences import count_sequences_of_length
from repro.core.tree import InfoGatheringTree, RepetitionTree
from repro.core.values import DEFAULT_VALUE


def build_full_tree(n=5, levels=3, value_fn=None) -> InfoGatheringTree:
    """Grow a tree to the requested number of levels with a deterministic fill."""
    value_fn = value_fn or (lambda parent, child: (len(parent) + child) % 2)
    tree = InfoGatheringTree(source=0, processors=range(n))
    tree.set_root(1)
    for level in range(2, levels + 1):
        tree.grow_level(level, value_fn)
    return tree


class TestBasicStructure:
    def test_source_must_be_a_processor(self):
        with pytest.raises(ValueError):
            InfoGatheringTree(source=9, processors=range(4))

    def test_empty_tree_height(self):
        tree = InfoGatheringTree(source=0, processors=range(4))
        assert tree.num_levels == 0
        assert tree.height == -1

    def test_root_only_tree_height(self):
        tree = InfoGatheringTree(source=0, processors=range(4))
        tree.set_root(1)
        assert tree.height == 0
        assert tree.root_value() == 1

    def test_store_and_read_back(self):
        tree = InfoGatheringTree(source=0, processors=range(4))
        tree.store((0,), 1)
        tree.store((0, 2), 0)
        assert tree.value((0, 2)) == 0
        assert tree.has((0, 2))
        assert not tree.has((0, 3))

    def test_missing_node_returns_default(self):
        tree = InfoGatheringTree(source=0, processors=range(4))
        assert tree.value((0, 1)) == DEFAULT_VALUE

    def test_child_labels_exclude_path(self):
        tree = InfoGatheringTree(source=0, processors=range(5))
        assert tree.child_labels((0, 3)) == [1, 2, 4]

    def test_repr_mentions_level_sizes(self):
        tree = build_full_tree(n=5, levels=2)
        assert "levels" in repr(tree)


class TestGrowth:
    def test_grow_level_populates_expected_nodes(self):
        tree = build_full_tree(n=5, levels=3)
        assert tree.level_size(1) == 1
        assert tree.level_size(2) == 4
        assert tree.level_size(3) == 4 * 3

    def test_level_sizes_match_paper_count(self):
        n, levels = 6, 4
        tree = build_full_tree(n=n, levels=levels)
        for level in range(1, levels + 1):
            assert tree.level_size(level) == count_sequences_of_length(level, n)

    def test_grow_out_of_order_rejected(self):
        tree = InfoGatheringTree(source=0, processors=range(4))
        tree.set_root(1)
        with pytest.raises(ValueError):
            tree.grow_level(3, lambda parent, child: 0)

    def test_leaves_are_deepest_level(self):
        tree = build_full_tree(n=5, levels=3)
        leaves = tree.leaves()
        assert all(len(seq) == 3 for seq in leaves)
        assert len(leaves) == tree.level_size(3)

    def test_is_leaf(self):
        tree = build_full_tree(n=5, levels=2)
        assert tree.is_leaf((0, 1))
        assert not tree.is_leaf((0,))

    def test_node_count_sums_levels(self):
        tree = build_full_tree(n=5, levels=3)
        assert tree.node_count() == 1 + 4 + 12

    def test_sequences_iterates_all_levels(self):
        tree = build_full_tree(n=4, levels=2)
        assert len(list(tree.sequences())) == tree.node_count()

    def test_meter_charges_on_growth(self):
        tree = build_full_tree(n=5, levels=3)
        assert tree.meter.units > 0


class TestShiftOperations:
    def test_reset_to_root(self):
        tree = build_full_tree(n=5, levels=3)
        tree.reset_to_root(1)
        assert tree.num_levels == 1
        assert tree.root_value() == 1

    def test_truncate_to_level(self):
        tree = build_full_tree(n=5, levels=3)
        tree.truncate_to_level(2)
        assert tree.num_levels == 2
        assert tree.level_size(2) == 4

    def test_copy_is_independent(self):
        tree = build_full_tree(n=5, levels=2)
        clone = tree.copy()
        clone.store((0, 1), 1 - tree.value((0, 1)))
        assert clone.value((0, 1)) != tree.value((0, 1))

    def test_overwrite_level(self):
        tree = build_full_tree(n=5, levels=2)
        tree.overwrite_level(2, {seq: 1 for seq in tree.level_sequences(2)})
        assert all(value == 1 for value in tree.level(2).values())

    @given(st.integers(min_value=4, max_value=7), st.integers(min_value=2, max_value=4))
    def test_reset_after_any_growth_leaves_single_level(self, n, levels):
        tree = build_full_tree(n=n, levels=min(levels, n - 1))
        tree.reset_to_root(0)
        assert tree.num_levels == 1
        assert tree.leaves() == {(0,): 0}


class TestRepetitionTree:
    def test_children_include_every_processor(self):
        tree = RepetitionTree(source=0, processors=range(4))
        assert tree.child_labels((0, 2)) == [0, 1, 2, 3]

    def test_level_sizes_are_powers_of_n(self):
        n = 5
        tree = RepetitionTree(source=0, processors=range(n))
        tree.set_root(1)
        tree.grow_level(2, lambda parent, child: 0)
        tree.grow_level(3, lambda parent, child: 0)
        assert tree.level_size(2) == n
        assert tree.level_size(3) == n * n

    def test_reorder_swaps_leaf_pairs(self):
        n = 4
        tree = RepetitionTree(source=0, processors=range(n))
        tree.set_root(0)
        tree.grow_level(2, lambda parent, child: 0)
        tree.grow_level(3, lambda parent, child: child)  # tree(s, p, q) = q
        tree.reorder_leaves()
        # After the swap, tree(s, q, p) holds the old tree(s, p, q) = q ... i.e.
        # the value at (s, x, y) is now x for every pair.
        for x in range(n):
            for y in range(n):
                assert tree.value((0, x, y)) == x

    def test_reorder_requires_three_levels(self):
        tree = RepetitionTree(source=0, processors=range(4))
        tree.set_root(0)
        tree.grow_level(2, lambda parent, child: 0)
        with pytest.raises(ValueError):
            tree.reorder_leaves()

    def test_reorder_is_an_involution(self):
        n = 4
        tree = RepetitionTree(source=0, processors=range(n))
        tree.set_root(0)
        tree.grow_level(2, lambda parent, child: 0)
        tree.grow_level(3, lambda parent, child: (child * 7 + len(parent)) % 2)
        before = tree.level(3)
        tree.reorder_leaves()
        tree.reorder_leaves()
        assert tree.level(3) == before

    def test_convert_intermediate_drops_third_level(self):
        n = 4
        tree = RepetitionTree(source=0, processors=range(n))
        tree.set_root(0)
        tree.grow_level(2, lambda parent, child: 0)
        tree.grow_level(3, lambda parent, child: 1)
        tree.convert_intermediate(lambda seq: 1)
        assert tree.num_levels == 2
        assert all(value == 1 for value in tree.level(2).values())

    def test_convert_requires_three_levels(self):
        tree = RepetitionTree(source=0, processors=range(4))
        tree.set_root(0)
        tree.grow_level(2, lambda parent, child: 0)
        with pytest.raises(ValueError):
            tree.convert_intermediate(lambda seq: 0)
