"""Unit tests for shift schedules and the generic shifting EIG processor."""

import pytest

from repro.core.exponential import exponential_schedule
from repro.core.protocol import ProtocolConfig
from repro.core.shifting import (Segment, ShiftSchedule, ShiftingEIGProcessor,
                                 run_rounds_for_blocks)
from repro.runtime.errors import ConfigurationError
from repro.runtime.messages import Message


class TestSegment:
    def test_negative_rounds_rejected(self):
        with pytest.raises(ConfigurationError):
            Segment(rounds=0)

    def test_unknown_conversion_rejected(self):
        with pytest.raises(ConfigurationError):
            Segment(rounds=2, conversion="vote-twice")

    def test_valid_segment(self):
        segment = Segment(rounds=3, conversion="resolve_prime",
                          conversion_discovery=True)
        assert segment.rounds == 3


class TestShiftSchedule:
    def test_empty_schedule_rejected(self):
        with pytest.raises(ConfigurationError):
            ShiftSchedule(())

    def test_total_rounds_counts_initial_round(self):
        schedule = ShiftSchedule.uniform([3, 3, 2], "resolve")
        assert schedule.total_rounds == 9
        assert run_rounds_for_blocks([3, 3, 2]) == 9

    def test_segment_end_rounds(self):
        schedule = ShiftSchedule.uniform([3, 2], "resolve")
        ends = schedule.segment_end_rounds()
        assert set(ends) == {4, 6}

    def test_block_lengths(self):
        schedule = ShiftSchedule.uniform([3, 2], "resolve")
        assert schedule.block_lengths() == [3, 2]

    def test_uniform_applies_conversion_to_all(self):
        schedule = ShiftSchedule.uniform([2, 2], "resolve_prime", True)
        assert all(segment.conversion == "resolve_prime"
                   for segment in schedule.segments)
        assert all(segment.conversion_discovery for segment in schedule.segments)


class TestShiftingProcessor:
    def drive_rounds(self, processor, claims_by_round):
        """Feed the processor synthetic inboxes round by round."""
        config = processor.config
        for round_number, claims in claims_by_round.items():
            processor.outgoing(round_number)
            inbox = {sender: Message(entries, sender, round_number)
                     for sender, entries in claims.items()}
            processor.incoming(round_number, inbox)

    def test_tree_shrinks_after_each_segment(self):
        config = ProtocolConfig(n=7, t=2, initial_value=1)
        schedule = ShiftSchedule.uniform([1, 1], "resolve")
        processor = ShiftingEIGProcessor(3, config, schedule)
        # Round 1: source value; rounds 2 and 3 each grow one level and then shift.
        self.drive_rounds(processor, {
            1: {0: {(0,): 1}},
            2: {pid: {(0,): 1} for pid in range(1, 7) if pid != 3},
        })
        assert processor.tree.num_levels == 1
        assert processor.tree.root_value() == 1
        self.drive_rounds(processor, {
            3: {pid: {(0,): 1} for pid in range(1, 7) if pid != 3},
        })
        assert processor.decided
        assert processor.decision() == 1

    def test_preferred_log_records_each_conversion(self):
        config = ProtocolConfig(n=7, t=2, initial_value=1)
        schedule = ShiftSchedule.uniform([1, 1], "resolve")
        processor = ShiftingEIGProcessor(3, config, schedule)
        self.drive_rounds(processor, {
            1: {0: {(0,): 1}},
            2: {pid: {(0,): 1} for pid in range(1, 7) if pid != 3},
            3: {pid: {(0,): 1} for pid in range(1, 7) if pid != 3},
        })
        assert set(processor.preferred_log) == {2, 3}
        assert set(processor.preferred_log.values()) == {1}

    def test_decide_at_end_false_keeps_undecided(self):
        config = ProtocolConfig(n=7, t=2, initial_value=1)
        processor = ShiftingEIGProcessor(3, config, exponential_schedule(1),
                                         decide_at_end=False)
        self.drive_rounds(processor, {
            1: {0: {(0,): 1}},
            2: {pid: {(0,): 1} for pid in range(1, 7) if pid != 3},
        })
        assert not processor.decided
        assert processor.preferred_value() == 1

    def test_missing_source_message_defaults_root(self):
        config = ProtocolConfig(n=7, t=2, initial_value=1)
        processor = ShiftingEIGProcessor(3, config, exponential_schedule(2))
        processor.outgoing(1)
        processor.incoming(1, {})
        assert processor.tree.root_value() == 0

    def test_malformed_source_value_defaults_root(self):
        config = ProtocolConfig(n=7, t=2, initial_value=1)
        processor = ShiftingEIGProcessor(3, config, exponential_schedule(2))
        processor.outgoing(1)
        processor.incoming(1, {0: Message({(0,): "junk"}, 0, 1)})
        assert processor.tree.root_value() == 0

    def test_fault_discovery_can_be_disabled(self):
        # A wide value domain lets the senders' reports about node (0, 6) be
        # pairwise distinct, so that node has no majority value at all and the
        # Fault Discovery Rule must fire (when it is enabled).
        config = ProtocolConfig(n=7, t=2, initial_value=1,
                                domain=tuple(range(7)))
        enabled = ShiftingEIGProcessor(3, config, exponential_schedule(2))
        disabled = ShiftingEIGProcessor(3, config, exponential_schedule(2),
                                        enable_fault_discovery=False)
        claims = {
            1: {0: {(0,): 1}},
            # Processor 6 reports nonsense about the root in round 2 -> its
            # children later disagree, which only the enabled processor records.
        }
        for processor in (enabled, disabled):
            self.drive_rounds(processor, claims)
        round2 = {pid: {(0,): 1} for pid in range(1, 7) if pid != 3}
        round3_enabled = {}
        round3_disabled = {}
        level2 = [(0, pid) for pid in range(1, 7)]
        for pid in range(1, 7):
            if pid == 3:
                continue
            entries = {seq: (seq[-1] % 2 if seq == (0, 6) else 1) for seq in level2}
            round3_enabled[pid] = dict(entries)
            round3_disabled[pid] = dict(entries)
        # make reports about node (0,6) wildly inconsistent across senders
        for sender in round3_enabled:
            round3_enabled[sender][(0, 6)] = sender
            round3_disabled[sender][(0, 6)] = sender
        self.drive_rounds(enabled, {2: round2, 3: round3_enabled})
        self.drive_rounds(disabled, {2: round2, 3: round3_disabled})
        assert 6 in enabled.discovered_faults()
        assert disabled.discovered_faults() == ()

    def test_computation_units_grow_with_execution(self):
        config = ProtocolConfig(n=7, t=2, initial_value=1)
        processor = ShiftingEIGProcessor(3, config, exponential_schedule(2))
        before = processor.computation_units()
        self.drive_rounds(processor, {1: {0: {(0,): 1}}})
        assert processor.computation_units() > before
