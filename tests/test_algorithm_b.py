"""Tests for Algorithm B (Theorem 3): schedules, bounds, and agreement."""

import pytest

from tests.helpers import assert_battery_correct, run_battery

from repro.core.algorithm_b import (AlgorithmBSpec, algorithm_b_blocks,
                                    algorithm_b_max_message_entries,
                                    algorithm_b_resilience, algorithm_b_rounds,
                                    algorithm_b_schedule)
from repro.runtime.errors import ConfigurationError


class TestBlocks:
    def test_b_equals_t_is_exponential(self):
        assert algorithm_b_blocks(3, 3) == [3]

    def test_full_and_partial_blocks(self):
        # t = 5, b = 3: (t−1)/(b−1) = 2 full blocks, remainder 0 → no tail block.
        assert algorithm_b_blocks(5, 3) == [3, 3]
        # t = 6, b = 3: 2 full blocks and a final block of 6 − 2·2 = 2 rounds.
        assert algorithm_b_blocks(6, 3) == [3, 3, 2]

    def test_b_two_blocks_are_single_progress_rounds(self):
        assert algorithm_b_blocks(4, 2) == [2, 2, 2]

    def test_invalid_b_rejected(self):
        with pytest.raises(ConfigurationError):
            algorithm_b_blocks(3, 1)
        with pytest.raises(ConfigurationError):
            algorithm_b_blocks(3, 4)

    def test_blocks_cover_exactly_the_information_gathering_rounds(self):
        for t in range(2, 9):
            for b in range(2, t + 1):
                blocks = algorithm_b_blocks(t, b)
                assert 1 + sum(blocks) == algorithm_b_rounds(t, b)


class TestRoundFormula:
    def test_theorem3_round_count(self):
        # t + 1 + ⌊(t−1)/(b−1)⌋ when (b−1) does not divide (t−1).
        assert algorithm_b_rounds(6, 3) == 6 + 1 + 2
        # one fewer when (b−1) | (t−1)
        assert algorithm_b_rounds(5, 3) == 5 + 2

    def test_rounds_decrease_with_larger_blocks(self):
        t = 6
        rounds = [algorithm_b_rounds(t, b) for b in range(2, t + 1)]
        assert rounds == sorted(rounds, reverse=True)

    def test_b_equals_t_matches_exponential(self):
        assert algorithm_b_rounds(4, 4) == 5

    def test_resilience(self):
        assert algorithm_b_resilience(13) == 3
        assert algorithm_b_resilience(12) == 2

    def test_message_bound_is_falling_factorial(self):
        assert algorithm_b_max_message_entries(13, 2) == 12
        assert algorithm_b_max_message_entries(13, 3) == 12 * 11

    def test_schedule_uses_resolve_without_conversion_discovery(self):
        schedule = algorithm_b_schedule(5, 3)
        assert all(segment.conversion == "resolve" for segment in schedule.segments)
        assert not any(segment.conversion_discovery for segment in schedule.segments)


class TestAgreement:
    @pytest.mark.parametrize("b", [2, 3])
    def test_standard_battery_n13_t3(self, b):
        assert_battery_correct(lambda: AlgorithmBSpec(b), n=13, t=3)

    def test_standard_battery_n9_t2(self):
        assert_battery_correct(lambda: AlgorithmBSpec(2), n=9, t=2)

    def test_initial_value_zero(self):
        assert_battery_correct(lambda: AlgorithmBSpec(2), n=13, t=3,
                               initial_value=0)

    @pytest.mark.parametrize("b", [2, 3])
    def test_round_and_message_bounds_hold(self, b):
        for scenario, result in run_battery(lambda: AlgorithmBSpec(b), n=13, t=3):
            assert result.rounds == algorithm_b_rounds(3, b)
            assert (result.metrics.max_message_entries()
                    <= algorithm_b_max_message_entries(13, b))

    def test_fewer_actual_faults_than_t(self):
        from repro.experiments.workloads import Scenario
        from repro.adversary import TwoFacedSourceAdversary
        scenarios = [Scenario("one-fault", frozenset({0}), TwoFacedSourceAdversary)]
        assert_battery_correct(lambda: AlgorithmBSpec(2), n=13, t=3,
                               scenarios=scenarios)
