"""Property tests for the infrastructure chaos harness (repro.runtime.chaos).

The central property: for every fault schedule the fabric is specified to
survive, the supervised run's report is **byte-identical** to an undisturbed
run (compared over :meth:`RunReport.outcome_dict` — the serialized outcome
minus the execution-side engine/metadata fields) and the recovery is
documented in ``metadata["resilience"]``.  Schedules the fabric is *not*
specified to survive raise named errors within the deadline — never a hang.
"""

import json
import os
import time

import pytest

from repro.api import (RunRequest, SweepSpec, execute, execute_resilient,
                       read_checkpoint, run_sweep)
from repro.api.executors import PoolExecutor, ShardedRunExecutor
from repro.core.engine import numpy_available
from repro.runtime.chaos import (ChaosController, ChaosPolicy, FaultInjection,
                                 build_chaos, chaos_scope, current_chaos)
from repro.runtime.errors import (CheckpointWriteError, ConfigurationError,
                                  SupervisionExhaustedError, WorkerDiedError,
                                  WorkerTimeoutError)

needs_numpy = pytest.mark.skipif(not numpy_available(),
                                 reason="numpy not installed")

#: Generous wall-clock ceiling: a hang trips the assert, recovery never does.
_NO_HANG_SECONDS = 60.0


def small_request(**overrides):
    fields = dict(protocol="exponential", n=7, t=2, initial_value=1,
                  faulty=(1, 2), adversary="two-faced", seed=11)
    fields.update(overrides)
    return RunRequest(**fields)


def canonical(report):
    """The byte string two observationally identical executions share."""
    return json.dumps(report.outcome_dict(), sort_keys=True,
                      separators=(",", ":"))


# ---------------------------------------------------------------------------
# The data model: validation, serialization, controller semantics.
# ---------------------------------------------------------------------------

class TestFaultInjection:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown chaos fault"):
            FaultInjection(kind="cosmic-ray")

    def test_times_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="at least once"):
            FaultInjection(kind="worker-kill", times=0)

    def test_timed_kinds_need_a_delay(self):
        with pytest.raises(ConfigurationError, match="positive delay"):
            FaultInjection(kind="worker-hang")
        FaultInjection(kind="worker-hang", delay=1.0)  # fine

    def test_round_trip_is_minimal(self):
        fault = FaultInjection(kind="worker-kill", shard=1, round=2)
        assert fault.to_dict() == {"kind": "worker-kill", "shard": 1,
                                   "round": 2}
        assert FaultInjection.from_dict(fault.to_dict()) == fault

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown chaos fault"):
            FaultInjection.from_dict({"kind": "worker-kill", "cpu": 3})


class TestChaosPolicy:
    def test_policy_round_trips(self):
        policy = ChaosPolicy(name="torture", faults=(
            FaultInjection(kind="worker-kill", shard=1),
            FaultInjection(kind="slow-shard", delay=0.5, times=2)))
        data = policy.to_dict()
        assert data["kind"] == "repro-chaos-policy"
        assert ChaosPolicy.from_dict(data) == policy
        assert ChaosPolicy.from_dict(json.loads(json.dumps(data))) == policy

    def test_bare_fault_list_is_a_policy(self):
        policy = ChaosPolicy.from_dict([{"kind": "pipe-close", "round": 2}])
        assert policy.faults[0].kind == "pipe-close"

    def test_wrong_kind_and_version_refused(self):
        with pytest.raises(ConfigurationError, match="not a chaos policy"):
            ChaosPolicy.from_dict({"kind": "something-else"})
        with pytest.raises(ConfigurationError, match="version"):
            ChaosPolicy.from_dict({"kind": "repro-chaos-policy",
                                   "version": 99})

    def test_from_json_file(self, tmp_path):
        path = tmp_path / "chaos.json"
        path.write_text(json.dumps(
            {"faults": [{"kind": "worker-kill", "shard": 1}]}))
        policy = ChaosPolicy.from_json_file(str(path))
        assert policy.faults[0].shard == 1
        with pytest.raises(ConfigurationError, match="cannot read"):
            ChaosPolicy.from_json_file(str(tmp_path / "missing.json"))


class TestController:
    def test_take_claims_matching_live_faults_once(self):
        controller = build_chaos([{"kind": "pipe-close", "shard": 1,
                                   "round": 2}])
        assert controller.take("shard-send", shard=2, round=2) == []
        taken = controller.take("shard-send", shard=1, round=2)
        assert [f.kind for f in taken] == ["pipe-close"]
        # The budget is spent: a retry of the same round runs clean.
        assert controller.take("shard-send", shard=1, round=2) == []
        assert controller.live_faults() == []
        assert controller.fired[0]["site"] == "shard-send"

    def test_none_coordinates_are_wildcards(self):
        controller = build_chaos([{"kind": "pipe-close"}])
        assert controller.take("shard-send", shard=3, round=7)

    def test_times_budget(self):
        controller = build_chaos([{"kind": "checkpoint-write-fail",
                                   "times": 2}])
        assert controller.take("checkpoint-write", index=0)
        assert controller.take("checkpoint-write", index=1)
        assert controller.take("checkpoint-write", index=2) == []

    def test_take_for_shard_ships_worker_faults_as_plain_data(self):
        controller = build_chaos([{"kind": "worker-kill", "shard": 1},
                                  {"kind": "pipe-close", "shard": 1}])
        shipped = controller.take_for_shard(1)
        assert shipped == [{"kind": "worker-kill", "shard": 1}]
        # Spent at spawn time: a respawned worker sees nothing.
        assert controller.take_for_shard(1) == []
        # The coordinator-side pipe fault is untouched.
        assert [f.kind for f in controller.live_faults()] == ["pipe-close"]

    def test_build_chaos_normalises(self):
        assert build_chaos(None) is None
        controller = build_chaos(ChaosPolicy())
        assert isinstance(controller, ChaosController)
        assert build_chaos(controller) is controller


class TestChaosScope:
    def test_scope_installs_and_restores(self):
        assert current_chaos() is None
        with chaos_scope([{"kind": "pipe-close"}]) as controller:
            assert current_chaos() is controller
            with chaos_scope(None):
                # None leaves the ambient controller in force.
                assert current_chaos() is controller
        assert current_chaos() is None

    def test_nested_scope_shadows_and_restores(self):
        with chaos_scope([{"kind": "pipe-close"}]) as outer:
            with chaos_scope([{"kind": "worker-kill"}]) as inner:
                assert current_chaos() is inner
            assert current_chaos() is outer


# ---------------------------------------------------------------------------
# The survivability property: chaos in, byte-identical reports out.
# ---------------------------------------------------------------------------

#: Schedules the fabric is specified to survive, with the recovery the audit
#: trail must document (None: the fault perturbs nothing observable).
SURVIVABLE_SHARD_SCHEDULES = [
    pytest.param([{"kind": "worker-kill", "shard": 1, "round": 1}],
                 "WorkerDiedError", id="worker-kill-spawn"),
    pytest.param([{"kind": "worker-kill", "shard": 1, "round": 2}],
                 "WorkerDiedError", id="worker-kill-mid-round"),
    pytest.param([{"kind": "worker-kill", "shard": 0, "round": 2}],
                 "WorkerDiedError", id="coordinator-local-kill"),
    pytest.param([{"kind": "worker-hang", "shard": 1, "round": 2,
                   "delay": 3.0}],
                 "WorkerTimeoutError", id="worker-hang-past-deadline"),
    pytest.param([{"kind": "slow-shard", "shard": 1, "round": 2,
                   "delay": 0.2}],
                 None, id="slow-shard-inside-deadline"),
    pytest.param([{"kind": "pipe-close", "shard": 1, "round": 2}],
                 "WorkerDiedError", id="pipe-close"),
    pytest.param([{"kind": "pipe-corrupt", "shard": 1, "round": 2}],
                 "SimulationError", id="pipe-corrupt"),
    pytest.param([{"kind": "worker-kill", "shard": 1, "round": 1},
                  {"kind": "pipe-close", "shard": 1, "round": 3}],
                 "WorkerDiedError", id="two-fault-schedule"),
]


@needs_numpy
class TestSurvivableShardChaos:
    @pytest.mark.parametrize("faults, expected_error",
                             SURVIVABLE_SHARD_SCHEDULES)
    def test_supervised_run_is_byte_identical_and_audited(self, faults,
                                                          expected_error):
        request = small_request()
        baseline = execute(request)
        started = time.monotonic()
        report = execute_resilient(request, shards=2, deadline=1.0,
                                   base_delay=0.01, chaos={"faults": faults})
        assert time.monotonic() - started < _NO_HANG_SECONDS
        assert canonical(report) == canonical(baseline)
        trail = report.metadata.get("resilience", [])
        if expected_error is None:
            assert trail == []  # an unobservable perturbation leaves no trace
        else:
            assert trail, "a recovery must be documented"
            assert trail[0]["event"] == "retry"
            assert trail[0]["error"] == expected_error
            assert trail[-1]["event"] == "completed"

    def test_retried_attempt_runs_clean_because_faults_are_spent(self):
        # The core one-shot guarantee: the worker-side fault is claimed at
        # spawn time, so exactly one retry suffices for a times=1 fault.
        request = small_request()
        report = execute_resilient(request, shards=2, deadline=2.0,
                                   base_delay=0.01,
                                   chaos={"faults": [{"kind": "worker-kill",
                                                      "shard": 1}]})
        trail = report.metadata["resilience"]
        assert [e["event"] for e in trail] == ["retry", "completed"]
        assert trail[-1] == {"event": "completed", "stage": "sharded",
                             "attempt": 2}


class TestSurvivablePoolChaos:
    def test_pool_worker_kill_recovers_serially(self):
        requests = [small_request(seed=seed) for seed in range(3)]
        baselines = [execute(r) for r in requests]
        with chaos_scope([{"kind": "pool-worker-kill", "index": 1}]):
            with PoolExecutor(max_workers=2) as pool:
                for request in requests:
                    pool.submit(request)
                reports = dict(pool.iter_reports())
        assert sorted(reports) == [0, 1, 2]
        for index, baseline in enumerate(baselines):
            assert canonical(reports[index]) == canonical(baseline)
        record = reports[1].metadata["resilience"][0]
        assert record["error"] == "BrokenProcessPool"
        assert record["fallback"] == "serial"


class TestSurvivableCheckpointChaos:
    def test_checkpoint_write_failure_retries_and_completes(self, tmp_path):
        spec = SweepSpec(requests=(small_request(), small_request(seed=12)),
                         executor="serial")
        undisturbed = run_sweep(spec)
        path = str(tmp_path / "sweep.jsonl")
        reports = run_sweep(spec, checkpoint=path,
                            chaos=[{"kind": "checkpoint-write-fail",
                                    "index": 0}])
        for report, baseline in zip(reports, undisturbed):
            assert canonical(report) == canonical(baseline)
        retried = reports[0].metadata["resilience"][0]
        assert retried["stage"] == "checkpoint"
        assert retried["error"] == "OSError"
        # The durable log replays the merged set, recovery record included.
        replayed = read_checkpoint(path, spec)
        assert len(replayed) == 2
        assert replayed[0].metadata["resilience"] == [retried]
        # No torn tail: every line of the log parses.
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle.read().splitlines():
                json.loads(line)

    def test_fsync_sweep_is_identical(self, tmp_path):
        spec = SweepSpec(requests=(small_request(),), executor="serial")
        plain = run_sweep(spec, checkpoint=str(tmp_path / "a.jsonl"))
        synced = run_sweep(spec, checkpoint=str(tmp_path / "b.jsonl"),
                           fsync=True)
        assert canonical(plain[0]) == canonical(synced[0])


# ---------------------------------------------------------------------------
# Unsurvivable schedules: named errors within the deadline, never hangs.
# ---------------------------------------------------------------------------

@needs_numpy
class TestUnsurvivableChaos:
    def test_exhausting_every_rung_raises_the_named_error(self):
        # Kill the worker on every attempt of a sharded-only ladder.
        request = small_request()
        started = time.monotonic()
        with pytest.raises(SupervisionExhaustedError, match="every rung"):
            execute_resilient(request, ladder=["sharded"], shards=2,
                              deadline=2.0, max_attempts=2, base_delay=0.01,
                              chaos={"faults": [{"kind": "worker-kill",
                                                 "shard": 1, "times": 5}]})
        assert time.monotonic() - started < _NO_HANG_SECONDS

    def test_unsupervised_worker_death_mid_round_is_a_clean_error(self):
        # The raw sharded executor (no supervision rung above it) must
        # surface a worker killed between rounds as the named error —
        # never a hang, never a wrong result.
        request = small_request()
        executor = ShardedRunExecutor(shards=2, deadline=5.0)
        executor.submit(request)
        started = time.monotonic()
        with chaos_scope([{"kind": "worker-kill", "shard": 1, "round": 2}]):
            with pytest.raises(WorkerDiedError, match="shard worker 1"):
                list(executor.iter_reports())
        assert time.monotonic() - started < _NO_HANG_SECONDS

    def test_unsupervised_hang_trips_the_deadline(self):
        request = small_request()
        executor = ShardedRunExecutor(shards=2, deadline=0.5)
        executor.submit(request)
        started = time.monotonic()
        with chaos_scope([{"kind": "worker-hang", "shard": 1, "round": 2,
                           "delay": 5.0}]):
            with pytest.raises(WorkerTimeoutError, match="reply deadline"):
                list(executor.iter_reports())
        assert time.monotonic() - started < _NO_HANG_SECONDS

    def test_persistent_checkpoint_failure_raises_named_error(self, tmp_path):
        spec = SweepSpec(requests=(small_request(),), executor="serial")
        path = str(tmp_path / "sweep.jsonl")
        with pytest.raises(CheckpointWriteError, match="failed 3 times"):
            run_sweep(spec, checkpoint=path,
                      chaos=[{"kind": "checkpoint-write-fail", "times": 3}])


# ---------------------------------------------------------------------------
# Chaos at the CLI seam.
# ---------------------------------------------------------------------------

@needs_numpy
class TestChaosCli:
    def test_sweep_chaos_flag(self, tmp_path, capsys):
        from repro.cli import main
        requests_path = tmp_path / "requests.json"
        requests_path.write_text(json.dumps([small_request().to_dict()]))
        chaos_path = tmp_path / "chaos.json"
        chaos_path.write_text(json.dumps(
            {"faults": [{"kind": "worker-kill", "shard": 1, "round": 1}]}))
        rc = main(["sweep", str(requests_path), "--executor", "supervised",
                   "--shards", "2", "--deadline", "5", "--chaos",
                   str(chaos_path), "--json"])
        assert rc == 0
        reports = json.loads(capsys.readouterr().out)
        trail = reports[0]["metadata"]["resilience"]
        assert trail[0]["error"] == "WorkerDiedError"

    def test_bad_chaos_file_is_a_clean_exit(self, tmp_path):
        from repro.cli import main
        requests_path = tmp_path / "requests.json"
        requests_path.write_text(json.dumps([small_request().to_dict()]))
        with pytest.raises(SystemExit, match="cannot read chaos policy"):
            main(["sweep", str(requests_path), "--chaos",
                  str(tmp_path / "missing.json")])
