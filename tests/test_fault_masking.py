"""Unit tests for the Fault Masking Rule (repro.core.fault_masking)."""

from repro.core.fault_discovery import FaultTracker
from repro.core.fault_masking import (discover_and_mask, mask_inbox,
                                      mask_level_entries, masked_claim)
from repro.core.tree import InfoGatheringTree
from repro.core.values import DEFAULT_VALUE
from repro.runtime.messages import Message


def make_inbox(round_number=2):
    return {
        1: Message({(0,): 1}, sender=1, round_number=round_number),
        2: Message({(0,): 1}, sender=2, round_number=round_number),
    }


class TestMaskInbox:
    def test_suspect_entries_are_zeroed(self):
        inbox = make_inbox()
        masked = mask_inbox(inbox, suspects={1})
        assert masked[1].value_for((0,)) == DEFAULT_VALUE
        assert masked[2].value_for((0,)) == 1

    def test_no_suspects_is_identity(self):
        inbox = make_inbox()
        masked = mask_inbox(inbox, suspects=set())
        assert masked == inbox

    def test_original_inbox_untouched(self):
        inbox = make_inbox()
        mask_inbox(inbox, suspects={1})
        assert inbox[1].value_for((0,)) == 1


class TestMaskLevelEntries:
    def test_only_sender_suffixed_nodes_rewritten(self):
        tree = InfoGatheringTree(source=0, processors=range(5))
        tree.set_root(1)
        tree.grow_level(2, lambda parent, child: 1)
        rewritten = mask_level_entries(tree, 2, senders={3})
        assert rewritten == 1
        assert tree.value((0, 3)) == DEFAULT_VALUE
        assert tree.value((0, 2)) == 1

    def test_empty_sender_set_is_noop(self):
        tree = InfoGatheringTree(source=0, processors=range(5))
        tree.set_root(1)
        tree.grow_level(2, lambda parent, child: 1)
        assert mask_level_entries(tree, 2, senders=set()) == 0


class TestDiscoverAndMask:
    def test_discovery_masks_the_discovered_senders_level(self):
        tree = InfoGatheringTree(source=0, processors=range(7))
        tree.set_root(1)
        tree.grow_level(2, lambda parent, child: 1)

        def leaf(parent, child):
            if parent == (0, 4):
                return child
            return 1

        tree.grow_level(3, leaf)
        tracker = FaultTracker(owner=1, t=2)
        newly = discover_and_mask(tree, 3, tracker, round_number=3)
        assert newly == {4}
        assert 4 in tracker
        # Every level-3 node ending in 4 has been overwritten with the default.
        for seq in tree.level_sequences(3):
            if seq[-1] == 4:
                assert tree.value(seq) == DEFAULT_VALUE

    def test_no_discovery_changes_nothing(self):
        tree = InfoGatheringTree(source=0, processors=range(7))
        tree.set_root(1)
        tree.grow_level(2, lambda parent, child: 1)
        tracker = FaultTracker(owner=1, t=2)
        assert discover_and_mask(tree, 2, tracker, round_number=2) == set()
        assert len(tracker) == 0

    def test_fixpoint_can_cascade(self):
        # Masking processor 5's entries changes the children of other nodes;
        # the fixpoint loop must pick up any discoveries that enables, and it
        # must never incriminate more processors than actually misbehaved here.
        tree = InfoGatheringTree(source=0, processors=range(9))
        tree.set_root(1)
        tree.grow_level(2, lambda parent, child: 1)

        def leaf(parent, child):
            if parent[-1] == 5:
                return child % 2            # node (0,5): wild disagreement
            if child == 5:
                return 0                    # 5 also lies about everyone else
            return 1

        tree.grow_level(3, leaf)
        tracker = FaultTracker(owner=1, t=2)
        newly = discover_and_mask(tree, 3, tracker, round_number=3)
        assert newly == {5}


class TestMaskedClaim:
    def test_suspect_sender_masked(self):
        message = Message({(0,): 1}, sender=3, round_number=2)
        value = masked_claim(message, (0,), sender=3, suspects={3}, domain=(0, 1))
        assert value == DEFAULT_VALUE

    def test_missing_message_masked(self):
        assert masked_claim(None, (0,), sender=3, suspects=set(),
                            domain=(0, 1)) == DEFAULT_VALUE

    def test_out_of_domain_value_coerced(self):
        message = Message({(0,): 9}, sender=3, round_number=2)
        assert masked_claim(message, (0,), sender=3, suspects=set(),
                            domain=(0, 1)) == DEFAULT_VALUE

    def test_honest_value_passes(self):
        message = Message({(0,): 1}, sender=3, round_number=2)
        assert masked_claim(message, (0,), sender=3, suspects=set(),
                            domain=(0, 1)) == 1
