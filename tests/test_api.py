"""Tests for the declarative run façade (repro.api).

Covers the registries (names, parameter schemas, error reporting), the
RunRequest/RunReport JSON round trips — the property test sweeps every
registered protocol × adversary pairing at small n — the engine planner's
``auto`` resolution and explicit-overrides-ambient precedence, and the
equivalence of façade executions to hand-built ``run_agreement`` calls.
"""

import json
import warnings

import pytest

from repro.api import (RunReport, RunRequest, RegistryError, adversary_names,
                       adversary_registry, build_adversary, build_protocol,
                       execute, execute_many, plan_request, protocol_names,
                       protocol_registry, request_fields_for_spec)
from repro.api import planner as planner_module
from repro.core import engine as engine_module
from repro.core.hybrid import HybridSpec
from repro.runtime import batched as batched_module
from repro.runtime.errors import ConfigurationError
from repro.runtime.simulation import choose_faulty, run_agreement

#: One small-but-valid (n, t, params) instance per registered protocol.
SMALL_INSTANCES = {
    "exponential": (4, 1, {}),
    "algorithm-a": (10, 3, {"b": 3}),
    "algorithm-b": (9, 2, {"b": 2}),
    "algorithm-c": (14, 2, {}),
    "hybrid": (10, 3, {"b": 3}),
    "psl": (4, 1, {}),
    "phase-king": (9, 2, {}),
    "dolev-strong": (7, 2, {}),
}


def small_request(protocol: str, adversary: str = "benign",
                  engine: str = "auto", **overrides) -> RunRequest:
    n, t, params = SMALL_INSTANCES[protocol]
    fields = dict(protocol=protocol, protocol_params=params, n=n, t=t,
                  initial_value=1,
                  faulty=tuple(choose_faulty(n, t, source_faulty=True)),
                  adversary=adversary, engine=engine)
    fields.update(overrides)
    return RunRequest(**fields)


class TestRegistries:
    def test_every_protocol_builds(self):
        for name in protocol_names():
            _, _, params = SMALL_INSTANCES[name]
            spec = build_protocol(name, params)
            assert spec.name  # a human-readable display name exists

    def test_every_adversary_builds(self):
        for name in adversary_names():
            assert build_adversary(name) is not None

    def test_instances_cover_the_registry_exactly(self):
        assert set(SMALL_INSTANCES) == set(protocol_names())

    def test_api_adversaries_track_the_adversary_package_registry(self):
        # The API entries are derived from repro.adversary's registry; a
        # strategy added there must be addressable by name here.
        from repro.adversary import adversary_registry as package_registry
        assert set(adversary_names()) == set(package_registry())
        for name, factory in package_registry().items():
            assert adversary_registry()[name].factory is factory

    def test_unknown_protocol(self):
        with pytest.raises(RegistryError, match="unknown protocol 'raft'"):
            build_protocol("raft")

    def test_unknown_adversary(self):
        with pytest.raises(RegistryError, match="unknown adversary"):
            build_adversary("gremlin")

    def test_unknown_parameter(self):
        with pytest.raises(RegistryError, match="unknown parameter"):
            build_protocol("exponential", {"block": 3})

    def test_missing_required_parameter(self):
        with pytest.raises(RegistryError, match="missing required parameter 'b'"):
            build_protocol("algorithm-a")

    def test_wrong_parameter_type(self):
        with pytest.raises(RegistryError, match="must be an integer"):
            build_protocol("hybrid", {"b": "three"})
        with pytest.raises(RegistryError, match="must be an integer"):
            build_protocol("hybrid", {"b": True})

    def test_choice_parameter_validated(self):
        spec = build_protocol("exponential", {"conversion": "resolve_prime"})
        assert spec.name == "exponential-resolve-prime"
        with pytest.raises(RegistryError, match="must be one of"):
            build_protocol("exponential", {"conversion": "majority"})

    def test_adversary_parameters_flow_through(self):
        adversary = build_adversary("delayed-equivocation",
                                    {"honest_rounds": 4})
        assert adversary.honest_rounds == 4
        with pytest.raises(RegistryError, match="unknown parameter"):
            build_adversary("benign", {"honest_rounds": 4})

    def test_schemas_are_introspectable(self):
        assert "b" in protocol_registry()["hybrid"].schema
        assert "crash_round" in adversary_registry()["crash"].schema

    def test_request_fields_round_trip_through_specs(self):
        for name in protocol_names():
            _, _, params = SMALL_INSTANCES[name]
            spec = build_protocol(name, params)
            recovered_name, recovered_params = request_fields_for_spec(spec)
            assert recovered_name == name
            rebuilt = build_protocol(recovered_name, recovered_params)
            assert rebuilt.name == spec.name

    def test_request_fields_rejects_foreign_spec(self):
        class AlienSpec(HybridSpec):
            pass
        with pytest.raises(RegistryError, match="not in the registry"):
            request_fields_for_spec(AlienSpec(3))


class TestRunRequestValidation:
    def test_scenario_excludes_explicit_faulty(self):
        with pytest.raises(ConfigurationError, match="not both"):
            RunRequest(protocol="exponential", n=7, t=2,
                       scenario="silent", faulty=(0,))

    def test_scenario_excludes_explicit_adversary(self):
        with pytest.raises(ConfigurationError, match="adversary"):
            RunRequest(protocol="exponential", n=7, t=2,
                       scenario="silent", adversary="crash")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown engine"):
            RunRequest(protocol="exponential", n=7, t=2, engine="warp")

    def test_unknown_field_rejected_on_deserialization(self):
        with pytest.raises(ConfigurationError, match="bogus"):
            RunRequest.from_dict({"protocol": "exponential", "n": 7, "t": 2,
                                  "bogus": 1})

    def test_unknown_battery_and_scenario_fail_at_execution(self):
        request = RunRequest(protocol="exponential", n=7, t=2,
                             scenario="silent", battery="imaginary")
        with pytest.raises(ConfigurationError, match="unknown scenario battery"):
            execute(request)
        request = RunRequest(protocol="exponential", n=7, t=2,
                             scenario="no-such-scenario")
        with pytest.raises(ConfigurationError, match="no[- ]*scenario|no\nscenario|has no"):
            execute(request)

    def test_faulty_set_is_normalised(self):
        request = RunRequest(protocol="exponential", n=7, t=2, faulty=[6, 0])
        assert request.faulty == (0, 6)


@pytest.mark.parametrize("protocol", sorted(SMALL_INSTANCES))
class TestRoundTripProperty:
    """`from_dict(to_dict(x))` is the identity, for requests and reports,
    across every registered protocol × adversary pairing at small n — and an
    executed deserialized request reproduces the exact report of the
    equivalent hand-built `run_agreement` call."""

    def test_request_and_report_round_trip(self, protocol):
        for adversary in adversary_names():
            request = small_request(protocol, adversary)
            wire = json.dumps(request.to_dict(), sort_keys=True)
            revived = RunRequest.from_dict(json.loads(wire))
            assert revived == request, adversary

            report = execute(revived)
            report_wire = json.dumps(report.to_dict(), sort_keys=True)
            assert RunReport.from_dict(json.loads(report_wire)) == report, adversary

    def test_facade_matches_hand_built_run(self, protocol):
        n, t, params = SMALL_INSTANCES[protocol]
        for adversary in adversary_names():
            request = small_request(protocol, adversary)
            report = execute(RunRequest.from_dict(
                json.loads(json.dumps(request.to_dict()))))

            spec = build_protocol(protocol, params)
            result = run_agreement(spec, request.config(),
                                   frozenset(request.faulty),
                                   build_adversary(adversary),
                                   seed=request.seed)
            hand_built = RunReport.from_result(
                result, engine=report.engine,
                engine_resolved=report.engine_resolved, seed=request.seed)
            assert report == hand_built, adversary


class TestScenarioRequests:
    def test_named_scenario_resolves_faulty_and_adversary(self):
        request = RunRequest(protocol="exponential", n=7, t=2, initial_value=1,
                             scenario="faulty-source-allies",
                             battery="worst-case")
        report = execute(request)
        assert report.scenario == "faulty-source-allies"
        assert report.adversary == "equivocating-source-allies"
        assert 0 in report.faulty and report.faults == 2
        assert report.agreement


class TestPlanner:
    @pytest.fixture(autouse=True)
    def _restore_engine(self, monkeypatch):
        monkeypatch.delenv("REPRO_EIG_ENGINE", raising=False)
        previous = engine_module.get_default_engine()
        yield
        engine_module.set_default_engine(previous)

    @pytest.mark.skipif(not engine_module.batched_available(),
                        reason="numpy not installed")
    def test_auto_resolves_to_batched_for_eig_specs(self):
        # psl is OM(m) on the same shifting-EIG machine, so it batches too.
        for protocol in ("exponential", "algorithm-a", "algorithm-b", "psl"):
            plan = plan_request(small_request(protocol))
            assert plan.resolved == "batched", protocol
            report = execute(small_request(protocol))
            assert report.engine_resolved == "batched", protocol

    @pytest.mark.skipif(not engine_module.numpy_available(),
                        reason="numpy not installed")
    def test_auto_falls_back_to_numpy_for_ineligible_specs(self):
        for protocol in ("algorithm-c", "hybrid", "phase-king",
                         "dolev-strong"):
            plan = plan_request(small_request(protocol))
            assert plan.resolved == "numpy", protocol

    def test_auto_falls_back_to_fast_without_numpy(self, monkeypatch):
        monkeypatch.setattr(planner_module, "numpy_available", lambda: False)
        monkeypatch.setattr(batched_module, "numpy_available", lambda: False)
        for protocol in ("exponential", "hybrid"):
            plan = plan_request(small_request(protocol))
            assert plan.resolved == "fast", protocol
        report = execute(small_request("exponential"))
        assert report.engine_resolved == "fast"
        assert report.agreement

    def test_explicit_engine_runs_as_requested(self):
        for engine in engine_module.available_engines():
            report = execute(small_request("exponential", engine=engine))
            assert report.engine == engine
            assert report.engine_resolved == engine

    def test_explicit_engines_are_observationally_identical(self):
        reports = [execute(small_request("algorithm-a",
                                         adversary="minimal-exposure",
                                         engine=engine))
                   for engine in engine_module.available_engines()]
        baseline = reports[0]
        for report in reports[1:]:
            assert report.decisions == baseline.decisions
            assert report.discovered == baseline.discovered
            assert report.metrics == baseline.metrics

    def test_auto_defers_to_ambient_reference(self, monkeypatch):
        monkeypatch.setenv("REPRO_EIG_ENGINE", "reference")
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # deference must not warn
            plan = plan_request(small_request("exponential"))
        assert plan.resolved == "reference"

    def test_explicit_engine_overrides_env_var_with_warning(self, monkeypatch):
        monkeypatch.setenv("REPRO_EIG_ENGINE", "reference")
        with pytest.warns(RuntimeWarning, match="overrides the ambient"):
            report = execute(small_request("exponential", engine="fast"))
        assert report.engine_resolved == "fast"

    def test_explicit_engine_overrides_set_default_with_warning(self):
        engine_module.set_default_engine("reference")
        with pytest.warns(RuntimeWarning, match="overrides the ambient"):
            report = execute(small_request("exponential", engine="fast"))
        assert report.engine_resolved == "fast"

    @pytest.mark.skipif(not engine_module.batched_available(),
                        reason="numpy not installed")
    def test_explicit_batched_degrades_with_warning_when_unsupported(self):
        with pytest.warns(RuntimeWarning, match="not supported"):
            report = execute(small_request("hybrid", engine="batched"))
        assert report.engine_resolved == "numpy"
        assert report.agreement

    def test_unusable_numpy_env_falls_through_to_default_pin(self, monkeypatch):
        # REPRO_EIG_ENGINE=numpy on a numpy-less box must not mask a
        # set_default_engine("reference") pin from the planner.
        monkeypatch.setenv("REPRO_EIG_ENGINE", "numpy")
        monkeypatch.setattr(engine_module, "numpy_available", lambda: False)
        engine_module.set_default_engine("reference")
        assert engine_module.ambient_engine() == "reference"

    def test_matching_explicit_and_ambient_do_not_warn(self, monkeypatch):
        monkeypatch.setenv("REPRO_EIG_ENGINE", "fast")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            report = execute(small_request("exponential", engine="fast"))
        assert report.engine_resolved == "fast"


class TestExecuteMany:
    def test_parallel_matches_serial(self):
        requests = [small_request("exponential", adversary)
                    for adversary in ("silent", "two-faced-source",
                                      "equivocating-source-allies")]
        serial = execute_many(requests, parallel=False)
        parallel = execute_many(requests, parallel=True, max_workers=2)
        assert parallel == serial

    def test_empty_input(self):
        assert execute_many([]) == []

    def test_order_preserved(self):
        requests = [small_request("exponential", "silent"),
                    small_request("algorithm-c", "silent")]
        reports = execute_many(requests, parallel=True)
        assert [r.protocol for r in reports] == ["exponential", "algorithm-c"]


class TestVerifyReport:
    def test_matches_verify_run(self):
        from repro.analysis.checkers import verify_report, verify_run
        request = small_request("exponential", "equivocating-source-allies")
        spec = build_protocol(request.protocol, request.protocol_params)
        result = run_agreement(spec, request.config(),
                               frozenset(request.faulty),
                               build_adversary(request.adversary))
        report = RunReport.from_result(result, engine="auto",
                                       engine_resolved="fast")
        assert (verify_report(report, round_bound=3, message_bound=10)
                == verify_run(result, round_bound=3, message_bound=10))


class TestExperimentCellBridge:
    def test_cell_converts_to_equivalent_request(self):
        from repro.experiments import ExperimentCell, run_cell
        spec = build_protocol("hybrid", {"b": 3})
        cell = ExperimentCell(spec=spec, n=10, t=3, battery="worst-case",
                              scenario="faulty-source-allies")
        request = cell.to_request()
        assert request.protocol == "hybrid"
        assert request.protocol_params == {"b": 3}
        assert request.scenario == "faulty-source-allies"
        row = run_cell(cell)
        assert row["protocol"] == "hybrid(b=3)"
        assert row["succeeded"]
