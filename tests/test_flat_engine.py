"""Property tests: the flat-array fast engine agrees with the reference oracle.

The ``"reference"`` engine (dict-of-tuples trees, recursive-specification
conversion functions) is the executable specification; the ``"fast"`` engine
(interned sequences, flat level-major buffers, batched bottom-up resolve) must
be observationally identical.  These tests drive both over randomized trees —
with and without repetitions, with missing entries and default substitutions,
across ``n ∈ {4..10}`` — and over full executions, and assert equality of
conversions, decisions, discoveries, and metrics (including computation
units, which the engines charge identically by construction).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adversary import adversary_registry
from repro.core.algorithm_a import AlgorithmASpec
from repro.core.algorithm_b import AlgorithmBSpec
from repro.core.algorithm_c import AlgorithmCSpec
from repro.core.hybrid import HybridSpec
from repro.core.engine import use_engine
from repro.core.exponential import ExponentialSpec
from repro.core.protocol import ProtocolConfig
from repro.core.resolve import (flat_converted_dict, flat_resolve_levels,
                                resolve, resolve_all, resolve_prime)
from repro.core.sequences import sequences_of_length
from repro.core.tree import (FlatEIGTree, FlatRepetitionTree,
                             InfoGatheringTree, RepetitionTree)
from repro.core.values import DEFAULT_VALUE, is_bottom
from repro.runtime.simulation import run_agreement

ADVERSARY_NAMES = sorted(adversary_registry())

_settings = settings(max_examples=25, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


def build_tree_pair(draw, n, height, repetitions, domain_size=3,
                    missing_rate=5):
    """Build one reference tree and one flat tree with identical (randomly
    chosen, possibly sparse) contents and return them."""
    processors = tuple(range(n))
    if repetitions:
        reference, fast = (RepetitionTree(0, processors),
                           FlatRepetitionTree(0, processors))
    else:
        reference, fast = (InfoGatheringTree(0, processors),
                           FlatEIGTree(0, processors))
    for length in range(1, height + 1):
        for seq in sequences_of_length(length, 0, processors, repetitions):
            present = draw(st.integers(min_value=0, max_value=missing_rate))
            if present == 0 and length == height:
                continue  # a missing leaf: reads fall back to the default
            value = draw(st.integers(min_value=0, max_value=domain_size - 1))
            reference.store(seq, value)
            fast.store(seq, value)
    # The root always exists (it is stored in round 1 by every protocol).
    if not reference.has((0,)):
        reference.store((0,), DEFAULT_VALUE)
        fast.store((0,), DEFAULT_VALUE)
    return reference, fast


class TestFlatResolveAgainstOracle:
    @_settings
    @given(data=st.data())
    def test_resolve_matches_recursive_oracle(self, data):
        n = data.draw(st.integers(min_value=4, max_value=10))
        height = data.draw(st.integers(min_value=1, max_value=min(4, n - 1)))
        reference, fast = build_tree_pair(data.draw, n, height,
                                          repetitions=False)
        expected = resolve_all(reference, "resolve", t=1)
        levels = flat_resolve_levels(fast, "resolve", t=1)
        assert flat_converted_dict(fast, levels) == expected
        assert levels[0][0] == resolve(reference, (0,))

    @_settings
    @given(data=st.data())
    def test_resolve_prime_matches_recursive_oracle(self, data):
        n = data.draw(st.integers(min_value=4, max_value=10))
        height = data.draw(st.integers(min_value=1, max_value=min(4, n - 1)))
        t = data.draw(st.integers(min_value=1, max_value=3))
        reference, fast = build_tree_pair(data.draw, n, height,
                                          repetitions=False)
        expected = resolve_all(reference, "resolve_prime", t=t)
        levels = flat_resolve_levels(fast, "resolve_prime", t=t)
        assert flat_converted_dict(fast, levels) == expected
        # ⊥ propagation at the root matches too.
        root_reference = resolve_prime(reference, (0,), t)
        assert is_bottom(levels[0][0]) == is_bottom(root_reference)
        assert levels[0][0] == root_reference

    @_settings
    @given(data=st.data())
    def test_repetition_trees_match(self, data):
        n = data.draw(st.integers(min_value=4, max_value=8))
        height = data.draw(st.integers(min_value=1, max_value=3))
        reference, fast = build_tree_pair(data.draw, n, height,
                                          repetitions=True)
        expected = resolve_all(reference, "resolve", t=1)
        levels = flat_resolve_levels(fast, "resolve", t=1)
        assert flat_converted_dict(fast, levels) == expected

    @_settings
    @given(data=st.data())
    def test_meter_charges_match_reference(self, data):
        n = data.draw(st.integers(min_value=4, max_value=8))
        height = data.draw(st.integers(min_value=1, max_value=3))
        conversion = data.draw(st.sampled_from(["resolve", "resolve_prime"]))
        reference, fast = build_tree_pair(data.draw, n, height,
                                          repetitions=False, missing_rate=10)
        before_reference = reference.meter.units
        before_fast = fast.meter.units
        resolve_all(reference, conversion, t=2)
        flat_resolve_levels(fast, conversion, t=2)
        assert (reference.meter.units - before_reference
                == fast.meter.units - before_fast)


def _run_both_engines(spec_factory, n, t, faulty, adversary_name, value, seed):
    results = {}
    for engine in ("fast", "reference"):
        with use_engine(engine):
            adversary = adversary_registry()[adversary_name]()
            config = ProtocolConfig(n=n, t=t, initial_value=value)
            results[engine] = run_agreement(spec_factory(), config, faulty,
                                            adversary, seed=seed)
    fast, reference = results["fast"], results["reference"]
    context = (adversary_name, sorted(faulty), value, seed)
    assert fast.decisions == reference.decisions, context
    assert fast.discovered == reference.discovered, context
    assert fast.discovery_logs == reference.discovery_logs, context
    assert fast.metrics.summary() == reference.metrics.summary(), context


class TestEndToEndEngineEquivalence:
    _e2e_settings = settings(max_examples=12, deadline=None,
                             suppress_health_check=[HealthCheck.too_slow])

    @_e2e_settings
    @given(data=st.data())
    def test_exponential_runs_identically(self, data):
        n, t = 7, 2
        count = data.draw(st.integers(min_value=0, max_value=t))
        faulty = frozenset(data.draw(
            st.sets(st.integers(min_value=0, max_value=n - 1),
                    min_size=count, max_size=count)))
        adversary_name = data.draw(st.sampled_from(ADVERSARY_NAMES))
        value = data.draw(st.integers(min_value=0, max_value=1))
        seed = data.draw(st.integers(min_value=0, max_value=10))
        _run_both_engines(ExponentialSpec, n, t, faulty, adversary_name,
                          value, seed)

    @_e2e_settings
    @given(data=st.data())
    def test_algorithm_b_runs_identically(self, data):
        n, t = 9, 2
        count = data.draw(st.integers(min_value=0, max_value=t))
        faulty = frozenset(data.draw(
            st.sets(st.integers(min_value=0, max_value=n - 1),
                    min_size=count, max_size=count)))
        adversary_name = data.draw(st.sampled_from(ADVERSARY_NAMES))
        value = data.draw(st.integers(min_value=0, max_value=1))
        seed = data.draw(st.integers(min_value=0, max_value=10))
        _run_both_engines(lambda: AlgorithmBSpec(2), n, t, faulty,
                          adversary_name, value, seed)

    @_e2e_settings
    @given(data=st.data())
    def test_algorithm_a_runs_identically(self, data):
        # Algorithm A is the only user of conversion-time fault discovery
        # (discover_during_conversion_flat), so this also pins that path.
        n, t = 10, 3
        count = data.draw(st.integers(min_value=0, max_value=t))
        faulty = frozenset(data.draw(
            st.sets(st.integers(min_value=0, max_value=n - 1),
                    min_size=count, max_size=count)))
        adversary_name = data.draw(st.sampled_from(ADVERSARY_NAMES))
        value = data.draw(st.integers(min_value=0, max_value=1))
        seed = data.draw(st.integers(min_value=0, max_value=10))
        _run_both_engines(lambda: AlgorithmASpec(3), n, t, faulty,
                          adversary_name, value, seed)

    @_e2e_settings
    @given(data=st.data())
    def test_hybrid_runs_identically(self, data):
        n, t = 10, 3
        count = data.draw(st.integers(min_value=0, max_value=t))
        faulty = frozenset(data.draw(
            st.sets(st.integers(min_value=0, max_value=n - 1),
                    min_size=count, max_size=count)))
        adversary_name = data.draw(st.sampled_from(ADVERSARY_NAMES))
        value = data.draw(st.integers(min_value=0, max_value=1))
        seed = data.draw(st.integers(min_value=0, max_value=10))
        _run_both_engines(lambda: HybridSpec(3), n, t, faulty,
                          adversary_name, value, seed)

    @_e2e_settings
    @given(data=st.data())
    def test_algorithm_c_runs_identically(self, data):
        n, t = 14, 2
        count = data.draw(st.integers(min_value=0, max_value=t))
        faulty = frozenset(data.draw(
            st.sets(st.integers(min_value=0, max_value=n - 1),
                    min_size=count, max_size=count)))
        adversary_name = data.draw(st.sampled_from(ADVERSARY_NAMES))
        value = data.draw(st.integers(min_value=0, max_value=1))
        seed = data.draw(st.integers(min_value=0, max_value=10))
        _run_both_engines(AlgorithmCSpec, n, t, faulty, adversary_name,
                          value, seed)
