"""Property tests: the array engines agree with the reference oracle.

The ``"reference"`` engine (dict-of-tuples trees, recursive-specification
conversion functions) is the executable specification; the ``"fast"`` engine
(interned sequences, flat level-major buffers, batched bottom-up resolve) and
the ``"numpy"`` engine (the same layout on small-int code ndarrays with
``bincount`` majority votes) must both be observationally identical to it.
These tests drive every array engine against the oracle over randomized trees
— with and without repetitions, with missing entries and default
substitutions, across ``n ∈ {4..10}`` — and over full executions, and assert
equality of conversions (including ``⊥`` propagation), decisions,
discoveries, and metrics (including computation units, which the engines
charge identically by construction).  The numpy cases skip cleanly when numpy
is not installed.

The batched whole-run executor (``run_agreement(..., batched=True)``, see
:mod:`repro.runtime.batched`) joins the end-to-end comparisons as a fourth
mode: the EIG specs it accelerates are pinned four ways
(reference/fast/numpy/batched, including per-round message stats and
per-processor computation units), the specs it does not support are pinned to
fall back cleanly, and the random-liar adversary must stay byte-identical
across all four modes for the same seed (the rng draw order is part of the
observational contract).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adversary import adversary_registry
from repro.core.algorithm_a import AlgorithmASpec
from repro.core.algorithm_b import AlgorithmBSpec
from repro.core.algorithm_c import AlgorithmCSpec
from repro.core.hybrid import HybridSpec
from repro.core.engine import numpy_available, use_engine
from repro.core.exponential import ExponentialSpec
from repro.core.protocol import ProtocolConfig
from repro.core.resolve import (flat_converted_dict, flat_resolve_levels,
                                numpy_resolve_levels, resolve, resolve_all,
                                resolve_prime)
from repro.core.sequences import sequences_of_length
from repro.core.tree import make_tree
from repro.core.values import DEFAULT_VALUE, is_bottom
from repro.runtime.simulation import run_agreement

ADVERSARY_NAMES = sorted(adversary_registry())

#: The array-backed engines under test, each checked against "reference".
ARRAY_ENGINES = [
    "fast",
    pytest.param("numpy", marks=pytest.mark.skipif(
        not numpy_available(), reason="numpy not installed")),
]

_settings = settings(max_examples=25, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


def resolve_levels(tree, engine, conversion, t):
    """Engine-dispatched batched conversion over an array-backed tree."""
    if engine == "numpy":
        return numpy_resolve_levels(tree, conversion, t)
    return flat_resolve_levels(tree, conversion, t)


def root_of(tree, levels):
    """The converted root value of batched levels (decodes numpy codes)."""
    return flat_converted_dict(tree, levels)[tree.root]


def build_tree_pair(draw, n, height, repetitions, engine, domain_size=3,
                    missing_rate=5):
    """Build one reference tree and one array tree with identical (randomly
    chosen, possibly sparse) contents and return them."""
    processors = tuple(range(n))
    reference = make_tree(0, processors, "reference", repetitions=repetitions)
    array_tree = make_tree(0, processors, engine, repetitions=repetitions)
    for length in range(1, height + 1):
        for seq in sequences_of_length(length, 0, processors, repetitions):
            present = draw(st.integers(min_value=0, max_value=missing_rate))
            if present == 0 and length == height:
                continue  # a missing leaf: reads fall back to the default
            value = draw(st.integers(min_value=0, max_value=domain_size - 1))
            reference.store(seq, value)
            array_tree.store(seq, value)
    # The root always exists (it is stored in round 1 by every protocol).
    if not reference.has((0,)):
        reference.store((0,), DEFAULT_VALUE)
        array_tree.store((0,), DEFAULT_VALUE)
    return reference, array_tree


@pytest.mark.parametrize("engine", ARRAY_ENGINES)
class TestBatchedResolveAgainstOracle:
    @_settings
    @given(data=st.data())
    def test_resolve_matches_recursive_oracle(self, data, engine):
        n = data.draw(st.integers(min_value=4, max_value=10))
        height = data.draw(st.integers(min_value=1, max_value=min(4, n - 1)))
        reference, array_tree = build_tree_pair(data.draw, n, height,
                                                repetitions=False,
                                                engine=engine)
        expected = resolve_all(reference, "resolve", t=1)
        levels = resolve_levels(array_tree, engine, "resolve", t=1)
        assert flat_converted_dict(array_tree, levels) == expected
        assert root_of(array_tree, levels) == resolve(reference, (0,))

    @_settings
    @given(data=st.data())
    def test_resolve_prime_matches_recursive_oracle(self, data, engine):
        n = data.draw(st.integers(min_value=4, max_value=10))
        height = data.draw(st.integers(min_value=1, max_value=min(4, n - 1)))
        t = data.draw(st.integers(min_value=1, max_value=3))
        reference, array_tree = build_tree_pair(data.draw, n, height,
                                                repetitions=False,
                                                engine=engine)
        expected = resolve_all(reference, "resolve_prime", t=t)
        levels = resolve_levels(array_tree, engine, "resolve_prime", t=t)
        assert flat_converted_dict(array_tree, levels) == expected
        # ⊥ propagation at the root matches too.
        root_reference = resolve_prime(reference, (0,), t)
        root_value = root_of(array_tree, levels)
        assert is_bottom(root_value) == is_bottom(root_reference)
        assert root_value == root_reference

    @_settings
    @given(data=st.data())
    def test_repetition_trees_match(self, data, engine):
        n = data.draw(st.integers(min_value=4, max_value=8))
        height = data.draw(st.integers(min_value=1, max_value=3))
        reference, array_tree = build_tree_pair(data.draw, n, height,
                                                repetitions=True,
                                                engine=engine)
        expected = resolve_all(reference, "resolve", t=1)
        levels = resolve_levels(array_tree, engine, "resolve", t=1)
        assert flat_converted_dict(array_tree, levels) == expected

    @_settings
    @given(data=st.data())
    def test_meter_charges_match_reference(self, data, engine):
        n = data.draw(st.integers(min_value=4, max_value=8))
        height = data.draw(st.integers(min_value=1, max_value=3))
        conversion = data.draw(st.sampled_from(["resolve", "resolve_prime"]))
        reference, array_tree = build_tree_pair(data.draw, n, height,
                                                repetitions=False,
                                                engine=engine,
                                                missing_rate=10)
        before_reference = reference.meter.units
        before_array = array_tree.meter.units
        resolve_all(reference, conversion, t=2)
        resolve_levels(array_tree, engine, conversion, t=2)
        assert (reference.meter.units - before_reference
                == array_tree.meter.units - before_array)


def _run_mode(mode, spec_factory, config, faulty, adversary, seed):
    """One full execution in an engine mode ("batched" = the whole-run path)."""
    batched = mode == "batched"
    with use_engine("numpy" if batched else mode):
        return run_agreement(spec_factory(), config, faulty, adversary,
                             seed=seed, batched=batched)


def _run_engine_vs_reference(engine, spec_factory, n, t, faulty,
                             adversary_name, value, seed):
    results = {}
    for run_engine in (engine, "reference"):
        config = ProtocolConfig(n=n, t=t, initial_value=value)
        results[run_engine] = _run_mode(run_engine, spec_factory, config,
                                        faulty,
                                        adversary_registry()[adversary_name](),
                                        seed)
    candidate, reference = results[engine], results["reference"]
    context = (engine, adversary_name, sorted(faulty), value, seed)
    assert candidate.decisions == reference.decisions, context
    assert candidate.discovered == reference.discovered, context
    assert candidate.discovery_logs == reference.discovery_logs, context
    assert candidate.metrics.summary() == reference.metrics.summary(), context


@pytest.mark.parametrize("engine", ARRAY_ENGINES)
class TestEndToEndEngineEquivalence:
    _e2e_settings = settings(max_examples=12, deadline=None,
                             suppress_health_check=[HealthCheck.too_slow])

    @_e2e_settings
    @given(data=st.data())
    def test_exponential_runs_identically(self, data, engine):
        n, t = 7, 2
        count = data.draw(st.integers(min_value=0, max_value=t))
        faulty = frozenset(data.draw(
            st.sets(st.integers(min_value=0, max_value=n - 1),
                    min_size=count, max_size=count)))
        adversary_name = data.draw(st.sampled_from(ADVERSARY_NAMES))
        value = data.draw(st.integers(min_value=0, max_value=1))
        seed = data.draw(st.integers(min_value=0, max_value=10))
        _run_engine_vs_reference(engine, ExponentialSpec, n, t, faulty,
                                 adversary_name, value, seed)

    @_e2e_settings
    @given(data=st.data())
    def test_algorithm_b_runs_identically(self, data, engine):
        n, t = 9, 2
        count = data.draw(st.integers(min_value=0, max_value=t))
        faulty = frozenset(data.draw(
            st.sets(st.integers(min_value=0, max_value=n - 1),
                    min_size=count, max_size=count)))
        adversary_name = data.draw(st.sampled_from(ADVERSARY_NAMES))
        value = data.draw(st.integers(min_value=0, max_value=1))
        seed = data.draw(st.integers(min_value=0, max_value=10))
        _run_engine_vs_reference(engine, lambda: AlgorithmBSpec(2), n, t,
                                 faulty, adversary_name, value, seed)

    @_e2e_settings
    @given(data=st.data())
    def test_algorithm_a_runs_identically(self, data, engine):
        # Algorithm A is the only user of conversion-time fault discovery
        # (discover_during_conversion_flat / _numpy), so this also pins that
        # path for both array engines.
        n, t = 10, 3
        count = data.draw(st.integers(min_value=0, max_value=t))
        faulty = frozenset(data.draw(
            st.sets(st.integers(min_value=0, max_value=n - 1),
                    min_size=count, max_size=count)))
        adversary_name = data.draw(st.sampled_from(ADVERSARY_NAMES))
        value = data.draw(st.integers(min_value=0, max_value=1))
        seed = data.draw(st.integers(min_value=0, max_value=10))
        _run_engine_vs_reference(engine, lambda: AlgorithmASpec(3), n, t,
                                 faulty, adversary_name, value, seed)

    @_e2e_settings
    @given(data=st.data())
    def test_hybrid_runs_identically(self, data, engine):
        n, t = 10, 3
        count = data.draw(st.integers(min_value=0, max_value=t))
        faulty = frozenset(data.draw(
            st.sets(st.integers(min_value=0, max_value=n - 1),
                    min_size=count, max_size=count)))
        adversary_name = data.draw(st.sampled_from(ADVERSARY_NAMES))
        value = data.draw(st.integers(min_value=0, max_value=1))
        seed = data.draw(st.integers(min_value=0, max_value=10))
        _run_engine_vs_reference(engine, lambda: HybridSpec(3), n, t, faulty,
                                 adversary_name, value, seed)

    @_e2e_settings
    @given(data=st.data())
    def test_algorithm_c_runs_identically(self, data, engine):
        n, t = 14, 2
        count = data.draw(st.integers(min_value=0, max_value=t))
        faulty = frozenset(data.draw(
            st.sets(st.integers(min_value=0, max_value=n - 1),
                    min_size=count, max_size=count)))
        adversary_name = data.draw(st.sampled_from(ADVERSARY_NAMES))
        value = data.draw(st.integers(min_value=0, max_value=1))
        seed = data.draw(st.integers(min_value=0, max_value=10))
        _run_engine_vs_reference(engine, AlgorithmCSpec, n, t, faulty,
                                 adversary_name, value, seed)


#: The EIG specs the batched whole-run executor accelerates, with the same
#: (n, t) cells the per-engine e2e tests use.
BATCHED_SPECS = [
    ("exponential", ExponentialSpec, 7, 2),
    ("algorithm-b", lambda: AlgorithmBSpec(2), 9, 2),
    ("algorithm-a", lambda: AlgorithmASpec(3), 10, 3),
]

ALL_MODES = ("reference", "fast", "numpy", "batched")


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
class TestBatchedRunEquivalence:
    """The batched executor is observationally identical, four ways."""

    _settings = settings(max_examples=10, deadline=None,
                         suppress_health_check=[HealthCheck.too_slow])

    @_settings
    @given(data=st.data())
    @pytest.mark.parametrize("label, spec_factory, n, t", BATCHED_SPECS)
    def test_four_way_observational_identity(self, data, label, spec_factory,
                                             n, t):
        count = data.draw(st.integers(min_value=0, max_value=t))
        faulty = frozenset(data.draw(
            st.sets(st.integers(min_value=0, max_value=n - 1),
                    min_size=count, max_size=count)))
        adversary_name = data.draw(st.sampled_from(ADVERSARY_NAMES))
        value = data.draw(st.integers(min_value=0, max_value=1))
        seed = data.draw(st.integers(min_value=0, max_value=10))
        config = ProtocolConfig(n=n, t=t, initial_value=value)
        results = {
            mode: _run_mode(mode, spec_factory, config, faulty,
                            adversary_registry()[adversary_name](), seed)
            for mode in ALL_MODES
        }
        reference = results["reference"]
        for mode in ALL_MODES[1:]:
            candidate = results[mode]
            context = (label, mode, adversary_name, sorted(faulty), value,
                       seed)
            assert candidate.decisions == reference.decisions, context
            assert candidate.discovered == reference.discovered, context
            assert candidate.discovery_logs == reference.discovery_logs, context
            assert (candidate.metrics.summary()
                    == reference.metrics.summary()), context
            assert (candidate.metrics.computation_units
                    == reference.metrics.computation_units), context
            assert candidate.metrics.sent == reference.metrics.sent, context

    @pytest.mark.parametrize("seed", [0, 1, 7])
    @pytest.mark.parametrize("faulty", [frozenset({5, 6}),
                                        frozenset({0, 6})],
                             ids=["correct-source", "faulty-source"])
    def test_random_liar_is_seed_reproducible_across_modes(self, faulty,
                                                           seed):
        """The random liar's rng draw order is part of the contract.

        The same seed must produce byte-identical decisions, discoveries,
        and discovery logs whichever execution mode runs the adversary —
        including the batched path, whose shadows broadcast by reference.
        """
        from repro.adversary import RandomLiarAdversary
        config = ProtocolConfig(n=7, t=2, initial_value=1)
        results = {
            mode: _run_mode(mode, ExponentialSpec, config, faulty,
                            RandomLiarAdversary(), seed)
            for mode in ALL_MODES
        }
        reference = results["reference"]
        for mode in ALL_MODES[1:]:
            candidate = results[mode]
            assert candidate.decisions == reference.decisions, (mode, seed)
            assert candidate.discovered == reference.discovered, (mode, seed)
            assert (candidate.discovery_logs
                    == reference.discovery_logs), (mode, seed)

    def test_batched_supported_covers_exactly_the_eig_specs(self):
        from repro.runtime.batched import batched_supported
        assert batched_supported(ExponentialSpec(),
                                 ProtocolConfig(n=7, t=2))
        assert batched_supported(AlgorithmASpec(3),
                                 ProtocolConfig(n=10, t=3))
        assert batched_supported(AlgorithmBSpec(2),
                                 ProtocolConfig(n=9, t=2))
        assert not batched_supported(HybridSpec(3),
                                     ProtocolConfig(n=10, t=3))
        assert not batched_supported(AlgorithmCSpec(),
                                     ProtocolConfig(n=14, t=2))

    def test_row_tree_bridges_batched_state_to_per_processor_kernels(self):
        """BatchedEIGState.row_tree / NumpyEIGTree.adopt_levels round-trip.

        A row extracted from a stacked state must behave exactly like a
        per-processor tree with the same contents: identical dict-shaped
        level views, and the per-processor conversion kernel over the row
        tree must match the whole-run conversion's row.
        """
        from repro.core.npsupport import BatchedEIGState, VALUE_CODEC
        from repro.core.resolve import batched_resolve_levels
        from repro.core.sequences import sequence_index
        import numpy as np

        n, count, height, t = 6, 3, 3, 1
        processors = tuple(range(n))
        index = sequence_index(0, processors, False)
        state = BatchedEIGState(index, count)
        code_of = VALUE_CODEC.code

        def value_at(row, level, node_id):
            return (row + level + node_id) % 2

        state.set_roots(np.asarray(
            [code_of(value_at(i, 1, 0)) for i in range(count)],
            dtype="int32"))
        for level in range(2, height + 1):
            size = index.level_size(level)
            state.append_level(np.asarray(
                [[code_of(value_at(i, level, node_id))
                  for node_id in range(size)] for i in range(count)],
                dtype="int32"))

        batched_levels, _charge = batched_resolve_levels(state, "resolve", t)
        for i in range(count):
            tree = state.row_tree(i)
            for level in range(1, height + 1):
                expected = {
                    seq: value_at(i, level, node_id)
                    for node_id, seq in enumerate(index.sequences(level))
                }
                assert tree.level(level) == expected, (i, level)
            single_levels = numpy_resolve_levels(tree, "resolve", t)
            for level in range(height):
                assert (batched_levels[level][i]
                        == single_levels[level]).all(), (i, level)

    def test_batched_flag_falls_back_cleanly_for_unsupported_specs(self):
        """batched=True on a non-EIG spec runs the per-processor driver."""
        config = ProtocolConfig(n=14, t=2, initial_value=1)
        faulty = frozenset({12, 13})
        with use_engine("numpy"):
            batched = run_agreement(AlgorithmCSpec(), config, faulty,
                                    adversary_registry()["two-faced"](),
                                    batched=True)
        reference = _run_mode("reference", AlgorithmCSpec, config, faulty,
                              adversary_registry()["two-faced"](), 0)
        assert batched.decisions == reference.decisions
        assert batched.metrics.summary() == reference.metrics.summary()
