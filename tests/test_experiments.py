"""Smoke tests for the experiment harness (E1–E9 runners) and workloads."""

import pytest

from repro.experiments import (adversarial_scenarios, experiment_baselines,
                               experiment_block_progress, experiment_dominance,
                               experiment_exponential_growth, experiment_theorem1,
                               experiment_theorem2, experiment_theorem3,
                               experiment_theorem4, experiment_tradeoff, measure,
                               scenario_by_name, scenario_names, standard_scenarios,
                               worst_case_scenarios)
from repro.core.exponential import ExponentialSpec
from repro.experiments.workloads import fault_count_sweep


class TestWorkloads:
    def test_standard_scenarios_cover_faulty_and_correct_source(self):
        scenarios = standard_scenarios(10, 3)
        assert any(0 in s.faulty for s in scenarios)
        assert any(s.faulty and 0 not in s.faulty for s in scenarios)
        assert any(not s.faulty for s in scenarios)

    def test_fault_counts_never_exceed_t(self):
        assert all(s.fault_count <= 3 for s in standard_scenarios(10, 3))

    def test_adversarial_subset_drops_benign(self):
        names = {s.name for s in adversarial_scenarios(10, 3)}
        assert "fault-free" not in names and "benign-faults" not in names

    def test_worst_case_scenarios_nonempty(self):
        assert len(worst_case_scenarios(10, 3)) >= 3

    def test_fault_count_sweep(self):
        sweep = list(fault_count_sweep(10, 3))
        assert [len(f) for f in sweep] == [0, 1, 2, 3]

    def test_scenario_lookup(self):
        assert scenario_by_name("silent", 10, 3).name == "silent"
        assert scenario_by_name("nonsense", 10, 3) is None
        assert "silent" in scenario_names()

    def test_adversary_factory_returns_fresh_instances(self):
        scenario = scenario_by_name("silent", 10, 3)
        assert scenario.adversary() is not scenario.adversary()


class TestHarness:
    def test_measure_runs_one_scenario(self):
        scenario = scenario_by_name("faulty-source-two-faced", 7, 2)
        result = measure(ExponentialSpec(), 7, 2, scenario)
        assert result.agreement

    def test_experiment_theorem2_rows(self):
        rows = experiment_theorem2(n=10, t=3, b_values=(3,))
        assert len(rows) == 1
        row = rows[0]
        assert row["measured_rounds"] <= row["rounds_bound"]
        assert row["measured_max_entries"] <= row["max_message_entries_bound"]
        assert row["all_scenarios_agree"]

    def test_experiment_theorem3_rows(self):
        rows = experiment_theorem3(n=13, t=3, b_values=(2,))
        assert rows and rows[0]["all_scenarios_agree"]

    def test_experiment_theorem4_rows(self):
        rows = experiment_theorem4((14,))
        assert rows and rows[0]["measured_rounds"] == rows[0]["rounds_bound"]

    def test_experiment_theorem1_rows(self):
        rows = experiment_theorem1(n=13, t=4, b_values=(3,))
        assert rows and rows[0]["all_scenarios_agree"]
        assert rows[0]["k_AB"] + rows[0]["k_BC"] + rows[0]["c_rounds"] == rows[0]["rounds_bound"]

    def test_experiment_exponential_growth_rows(self):
        rows = experiment_exponential_growth((4, 7))
        entries = [row["measured_max_entries"] for row in rows]
        assert entries == sorted(entries)

    def test_experiment_tradeoff_rows(self):
        rows = experiment_tradeoff(n=31, t=10, b_values=(3, 4))
        assert len(rows) == 2

    def test_experiment_block_progress_rows(self):
        rows = experiment_block_progress(n=10, t=3, b=3)
        assert all(row["agreement"] for row in rows)
        assert any(row["total_detected_max"] > 0 for row in rows)

    def test_experiment_dominance_rows(self):
        rows = experiment_dominance(n=31, t=10, b_values=(3, 4))
        assert all(row["saving"] >= 0 for row in rows)

    def test_experiment_baselines_rows(self):
        rows = experiment_baselines(n=13, t=3)
        names = {row["protocol"] for row in rows}
        assert "exponential" in names and "phase-king" in names
        assert all(row["all_scenarios_agree"] for row in rows)
