"""Engine registry behaviour: selection, gating, and environment fallback.

The numpy engine must stay strictly optional: it is registered only when
numpy is importable, selecting it without numpy raises a clear error, and an
environment request degrades to the default engine with a warning instead of
silently changing behaviour.  An *invalid* ``REPRO_EIG_ENGINE`` value must
likewise warn (naming both the bad value and the chosen fallback) rather than
being swallowed.
"""

from __future__ import annotations

import importlib
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core import engine as engine_module
from repro.core.engine import (ENGINES, available_engines, numpy_available,
                               set_default_engine, use_engine,
                               validate_engine)

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


def _reload_engine_with_env(monkeypatch, value):
    """Reload the engine module under a given ``REPRO_EIG_ENGINE`` setting."""
    if value is None:
        monkeypatch.delenv("REPRO_EIG_ENGINE", raising=False)
    else:
        monkeypatch.setenv("REPRO_EIG_ENGINE", value)
    return importlib.reload(engine_module)


@pytest.fixture
def reloaded_engine(monkeypatch):
    """Yield a reload helper and restore the pristine module afterwards."""
    yield lambda value: _reload_engine_with_env(monkeypatch, value)
    monkeypatch.delenv("REPRO_EIG_ENGINE", raising=False)
    importlib.reload(engine_module)


class TestValidateEngine:
    def test_known_engines_accepted(self):
        assert validate_engine("fast") == "fast"
        assert validate_engine("reference") == "reference"

    def test_none_selects_default(self):
        with use_engine("reference"):
            assert validate_engine(None) == "reference"

    def test_unknown_engine_raises_with_candidates(self):
        with pytest.raises(ValueError, match="unknown EIG engine"):
            validate_engine("cython")

    def test_numpy_engine_validates_when_available(self):
        if not numpy_available():
            pytest.skip("numpy not installed")
        assert validate_engine("numpy") == "numpy"
        with use_engine("numpy"):
            assert validate_engine(None) == "numpy"

    def test_numpy_engine_raises_when_unavailable(self, monkeypatch):
        monkeypatch.setattr(engine_module, "numpy_available", lambda: False)
        with pytest.raises(ValueError, match="requires numpy"):
            validate_engine("numpy")
        with pytest.raises(ValueError, match="requires numpy"):
            set_default_engine("numpy")

    def test_available_engines_reflects_gating(self, monkeypatch):
        assert set(available_engines()) <= set(ENGINES)
        monkeypatch.setattr(engine_module, "numpy_available", lambda: False)
        assert engine_module.available_engines() == ("fast", "reference")


class TestEnvironmentFallback:
    def test_invalid_env_value_warns_and_falls_back(self, reloaded_engine):
        with pytest.warns(RuntimeWarning, match=r"'bogus'.*falling back.*'fast'"):
            module = reloaded_engine("bogus")
        assert module.get_default_engine() == "fast"

    def test_numpy_env_without_numpy_warns_and_falls_back(self, monkeypatch,
                                                          reloaded_engine):
        # numpy_available() re-imports npsupport on every call, so patching
        # npsupport.have_numpy survives the module reload under test.
        from repro.core import npsupport
        monkeypatch.setattr(npsupport, "have_numpy", lambda: False)
        with pytest.warns(RuntimeWarning, match="numpy is not installed"):
            module = reloaded_engine("numpy")
        assert module.get_default_engine() == "fast"

    def test_valid_env_value_is_silent(self, reloaded_engine, recwarn):
        module = reloaded_engine("reference")
        assert module.get_default_engine() == "reference"
        assert not [w for w in recwarn.list
                    if issubclass(w.category, RuntimeWarning)]


class TestWithoutNumpyInstalled:
    """Simulate a bare image: importing repro and running the fast engine
    must work with numpy entirely unimportable."""

    def test_import_and_run_without_numpy(self):
        script = """
import sys

class _BlockNumpy:
    def find_spec(self, name, path=None, target=None):
        if name == "numpy" or name.startswith("numpy."):
            raise ImportError("numpy blocked for this test")
        return None

sys.meta_path.insert(0, _BlockNumpy())

from repro.core.engine import available_engines, validate_engine
assert available_engines() == ("fast", "reference"), available_engines()
try:
    validate_engine("numpy")
except ValueError as exc:
    assert "requires numpy" in str(exc)
else:
    raise AssertionError("validate_engine('numpy') should have raised")

from repro.core.exponential import ExponentialSpec
from repro.core.protocol import ProtocolConfig
from repro.runtime.simulation import run_agreement
result = run_agreement(ExponentialSpec(), ProtocolConfig(n=4, t=1),
                       frozenset([1]), None)
assert result.agreement
print("OK")
"""
        completed = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True,
            env={"PYTHONPATH": SRC_DIR, "PATH": "/usr/bin:/bin"})
        assert completed.returncode == 0, completed.stderr
        assert "OK" in completed.stdout
