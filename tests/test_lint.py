"""Tests for :mod:`repro.lint` — the static determinism/contract auditor.

Every rule is pinned by a *catching* fixture (a tiny tree the rule must
flag) and a *passing* fixture (the sanctioned shape it must not), so a
rule that silently stops firing fails here before a regression lands.
Waiver and baseline semantics, the JSON schema, the CLI surface, and the
self-lint invariant (``src/repro`` stays clean) are covered alongside.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.engine import numpy_available
from repro.lint import (Finding, load_baseline, render_json, render_text,
                        rule_names, run_lint, save_baseline, to_json)
from repro.lint.baseline import apply_baseline
from repro.runtime.errors import ConfigurationError

needs_numpy = pytest.mark.skipif(not numpy_available(),
                                 reason="numpy not installed")

REPRO_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


def lint_tree(tmp_path, files, rules=None, baseline_path=None):
    """Write *files* under a throwaway package root and lint it."""
    root = tmp_path / "pkg"
    for relpath, source in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return run_lint(root, package="pkg", rules=rules,
                    baseline_path=baseline_path)


def active_rules(result):
    return sorted({finding.rule for finding in result.active})


# ---------------------------------------------------------------------------
# determinism/global-rng
# ---------------------------------------------------------------------------

class TestGlobalRng:
    RULE = "determinism/global-rng"

    def test_catches_module_level_draw(self, tmp_path):
        result = lint_tree(tmp_path, {"mod.py": """\
            import random

            def pick(items):
                return random.choice(items)
            """}, rules=[self.RULE])
        assert active_rules(result) == [self.RULE]
        assert result.exit_code == 1

    def test_catches_aliased_import_and_unseeded_numpy(self, tmp_path):
        result = lint_tree(tmp_path, {"mod.py": """\
            import random as rnd
            import numpy as np

            def draw():
                gen = np.random.default_rng()
                return rnd.random() + np.random.rand()
            """}, rules=[self.RULE])
        assert len(result.active) == 3

    def test_passes_bound_generator(self, tmp_path):
        result = lint_tree(tmp_path, {"mod.py": """\
            import random

            def pick(items, seed):
                rng = random.Random(seed)
                return rng.choice(items)
            """}, rules=[self.RULE])
        assert result.active == []
        assert result.exit_code == 0

    def test_passes_seeded_numpy_factory(self, tmp_path):
        result = lint_tree(tmp_path, {"mod.py": """\
            import numpy

            def gen(seed):
                return numpy.random.default_rng(seed)
            """}, rules=[self.RULE])
        assert result.active == []


# ---------------------------------------------------------------------------
# determinism/wall-clock
# ---------------------------------------------------------------------------

class TestWallClock:
    RULE = "determinism/wall-clock"

    def test_catches_clock_in_engine_path(self, tmp_path):
        result = lint_tree(tmp_path, {"core/timing.py": """\
            import time

            def stamp():
                return time.time()
            """}, rules=[self.RULE])
        assert active_rules(result) == [self.RULE]

    def test_catches_datetime_now(self, tmp_path):
        result = lint_tree(tmp_path, {"stats/clock.py": """\
            import datetime

            def today():
                return datetime.datetime.now()
            """}, rules=[self.RULE])
        assert len(result.active) == 1

    def test_passes_outside_scoped_packages(self, tmp_path):
        result = lint_tree(tmp_path, {"serve/timing.py": """\
            import time

            def stamp():
                return time.perf_counter()
            """}, rules=[self.RULE])
        assert result.active == []


# ---------------------------------------------------------------------------
# determinism/unsorted-fs-scan
# ---------------------------------------------------------------------------

class TestUnsortedFsScan:
    RULE = "determinism/unsorted-fs-scan"

    def test_catches_bare_listdir(self, tmp_path):
        result = lint_tree(tmp_path, {"mod.py": """\
            import os

            def names(path):
                return [n for n in os.listdir(path)]
            """}, rules=[self.RULE])
        assert active_rules(result) == [self.RULE]

    def test_catches_pathlib_glob_method(self, tmp_path):
        result = lint_tree(tmp_path, {"mod.py": """\
            def scan(root):
                for path in root.glob("*.json"):
                    yield path
            """}, rules=[self.RULE])
        assert len(result.active) == 1

    def test_passes_sorted_scan(self, tmp_path):
        result = lint_tree(tmp_path, {"mod.py": """\
            import os

            def names(path):
                return sorted(os.listdir(path))

            def walk(root):
                for item in sorted(root.rglob("*.py")):
                    yield item
            """}, rules=[self.RULE])
        assert result.active == []


# ---------------------------------------------------------------------------
# determinism/set-iteration
# ---------------------------------------------------------------------------

class TestSetIteration:
    RULE = "determinism/set-iteration"

    def test_catches_for_over_set_call(self, tmp_path):
        result = lint_tree(tmp_path, {"mod.py": """\
            def dedupe(items):
                out = []
                for item in set(items):
                    out.append(item)
                return out
            """}, rules=[self.RULE])
        assert active_rules(result) == [self.RULE]

    def test_catches_comprehension_over_set_literal(self, tmp_path):
        result = lint_tree(tmp_path, {"mod.py": """\
            def squares(a, b):
                return [x * x for x in {a, b}]
            """}, rules=[self.RULE])
        assert len(result.active) == 1

    def test_passes_sorted_set(self, tmp_path):
        result = lint_tree(tmp_path, {"mod.py": """\
            def dedupe(items):
                return [item for item in sorted(set(items))]
            """}, rules=[self.RULE])
        assert result.active == []


# ---------------------------------------------------------------------------
# contract/registry-schema-sync
# ---------------------------------------------------------------------------

_WIDGET_IMPL = """\
    class Widget:
        def __init__(self, size=3):
            self.size = size
    """


class TestRegistrySchemaSync:
    RULE = "contract/registry-schema-sync"

    def test_catches_default_mismatch(self, tmp_path):
        result = lint_tree(tmp_path, {
            "impl.py": _WIDGET_IMPL,
            "registries.py": """\
            from .impl import Widget

            ENTRIES = (
                RegistryEntry("widget", Widget,
                              params=(ParamSpec("size", int, 4),)),
            )
            """}, rules=[self.RULE])
        assert active_rules(result) == [self.RULE]
        assert "schema default size=4" in result.active[0].message

    def test_catches_undeclared_required_param(self, tmp_path):
        result = lint_tree(tmp_path, {
            "impl.py": """\
            class Widget:
                def __init__(self, size):
                    self.size = size
            """,
            "registries.py": """\
            from .impl import Widget

            ENTRIES = (
                RegistryEntry("widget", Widget, params=()),
            )
            """}, rules=[self.RULE])
        messages = [finding.message for finding in result.active]
        assert any("required constructor parameter 'size'" in message
                   for message in messages)

    def test_catches_unaddressable_optional_param(self, tmp_path):
        result = lint_tree(tmp_path, {
            "impl.py": """\
            class Widget:
                def __init__(self, size=3, color="red"):
                    self.size = size
                    self.color = color
            """,
            "registries.py": """\
            from .impl import Widget

            ENTRIES = (
                RegistryEntry("widget", Widget,
                              params=(ParamSpec("size", int, 3),)),
            )
            """}, rules=[self.RULE])
        assert any("not addressable" in finding.message
                   for finding in result.active)

    def test_catches_stale_schema_key_in_registry_join(self, tmp_path):
        result = lint_tree(tmp_path, {
            "impl.py": """\
            class CrashAdv:
                def __init__(self, rate=0.5):
                    self.rate = rate
            """,
            "adv.py": """\
            from .impl import CrashAdv

            ADV_SCHEMAS = {
                "crash": (ParamSpec("rate", float, 0.5),),
                "ghost": (),
            }

            def adversary_registry():
                return {"crash": CrashAdv}
            """}, rules=[self.RULE])
        assert any("'ghost'" in finding.message
                   for finding in result.active)

    def test_catches_join_schema_drift(self, tmp_path):
        result = lint_tree(tmp_path, {
            "impl.py": """\
            class CrashAdv:
                def __init__(self, rate=0.5):
                    self.rate = rate
            """,
            "adv.py": """\
            from .impl import CrashAdv

            ADV_SCHEMAS = {
                "crash": (ParamSpec("rate", float, 0.9),),
            }

            def adversary_registry():
                return {"crash": CrashAdv}
            """}, rules=[self.RULE])
        assert any("schema default rate=0.9" in finding.message
                   for finding in result.active)

    def test_passes_consistent_entry_and_join(self, tmp_path):
        result = lint_tree(tmp_path, {
            "impl.py": _WIDGET_IMPL,
            "impl2.py": """\
            class CrashAdv:
                def __init__(self, rate=0.5):
                    self.rate = rate
            """,
            "registries.py": """\
            from .impl import Widget

            ENTRIES = (
                RegistryEntry("widget", Widget,
                              params=(ParamSpec("size", int, 3),)),
            )
            """,
            "adv.py": """\
            from .impl2 import CrashAdv

            ADV_SCHEMAS = {
                "crash": (ParamSpec("rate", float, 0.5),),
            }

            def adversary_registry():
                return {"crash": CrashAdv}
            """}, rules=[self.RULE])
        assert result.active == []

    def test_resolves_shared_paramspec_constant(self, tmp_path):
        result = lint_tree(tmp_path, {
            "impl.py": """\
            class Widget:
                def __init__(self, b):
                    self.b = b
            """,
            "registries.py": """\
            from .impl import Widget

            _BLOCK = ParamSpec("b", int, required=True)

            ENTRIES = (
                RegistryEntry("widget", Widget, params=(_BLOCK,)),
            )
            """}, rules=[self.RULE])
        assert result.active == []

    def test_engages_on_the_real_tree(self):
        """The join is not vacuous: it sees all 18 adversary factories."""
        from repro.lint.rules.contracts import _factory_registries
        from repro.lint.symbols import Project
        project = Project.load(REPRO_ROOT, package="repro")
        factories = _factory_registries(project)
        assert len(factories) >= 18


# ---------------------------------------------------------------------------
# contract/roundtrip-parity
# ---------------------------------------------------------------------------

class TestRoundtripParity:
    RULE = "contract/roundtrip-parity"

    def test_catches_consumed_key_never_emitted(self, tmp_path):
        result = lint_tree(tmp_path, {"mod.py": """\
            class Thing:
                def __init__(self, a, b):
                    self.a = a
                    self.b = b

                def to_dict(self):
                    return {"a": self.a}

                @classmethod
                def from_dict(cls, data):
                    return cls(data["a"], data["b"])
            """}, rules=[self.RULE])
        assert active_rules(result) == [self.RULE]
        assert "'b'" in result.active[0].message

    def test_catches_get_and_membership_reads(self, tmp_path):
        result = lint_tree(tmp_path, {"mod.py": """\
            class Thing:
                def to_dict(self):
                    return {"a": 1}

                @classmethod
                def from_dict(cls, data):
                    kwargs = dict(data)
                    if "meta" in kwargs:
                        kwargs.pop("meta")
                    return cls(kwargs.get("extra"))
            """}, rules=[self.RULE])
        flagged = {finding.message.split("key ")[1].split(" that")[0]
                   for finding in result.active}
        assert flagged == {"'extra'", "'meta'"}

    def test_passes_emitting_every_consumed_key(self, tmp_path):
        result = lint_tree(tmp_path, {"mod.py": """\
            class Thing:
                def __init__(self, a, b=None):
                    self.a = a
                    self.b = b

                def to_dict(self):
                    data = {"a": self.a}
                    if self.b is not None:
                        data["b"] = self.b
                    return data

                @classmethod
                def from_dict(cls, data):
                    return cls(data["a"], data.get("b"))
            """}, rules=[self.RULE])
        assert result.active == []


# ---------------------------------------------------------------------------
# errors/swallowed-failstop
# ---------------------------------------------------------------------------

class TestSwallowedFailstop:
    RULE = "errors/swallowed-failstop"

    def test_catches_discarded_fabric_error(self, tmp_path):
        result = lint_tree(tmp_path, {"mod.py": """\
            from pkg.errors import CheckpointWriteError

            def save(write):
                try:
                    write()
                except CheckpointWriteError:
                    pass
            """}, rules=[self.RULE])
        assert active_rules(result) == [self.RULE]

    def test_passes_reraise_and_recorded(self, tmp_path):
        result = lint_tree(tmp_path, {"mod.py": """\
            from pkg.errors import FabricError, WorkerDiedError

            def run(task, trail):
                try:
                    task()
                except WorkerDiedError as exc:
                    trail.append(str(exc))
                try:
                    task()
                except FabricError:
                    raise
            """}, rules=[self.RULE])
        assert result.active == []


# ---------------------------------------------------------------------------
# errors/broad-except
# ---------------------------------------------------------------------------

class TestBroadExcept:
    RULE = "errors/broad-except"

    def test_catches_bare_and_broad_handlers(self, tmp_path):
        result = lint_tree(tmp_path, {"mod.py": """\
            def run(task):
                try:
                    task()
                except Exception:
                    return None
                try:
                    task()
                except:
                    return None
            """}, rules=[self.RULE])
        assert len(result.active) == 2
        assert all(finding.severity == "warning"
                   for finding in result.active)

    def test_passes_narrow_or_reraising_handlers(self, tmp_path):
        result = lint_tree(tmp_path, {"mod.py": """\
            def run(task):
                try:
                    task()
                except ValueError:
                    return None
                try:
                    task()
                except Exception:
                    raise
            """}, rules=[self.RULE])
        assert result.active == []


# ---------------------------------------------------------------------------
# Waiver semantics
# ---------------------------------------------------------------------------

class TestWaivers:
    def test_trailing_waiver_suppresses_with_reason(self, tmp_path):
        result = lint_tree(tmp_path, {"mod.py": """\
            def run(task):
                try:
                    task()
                except Exception:  # repro-lint: waive[errors/broad-except] -- probe
                    return None
            """}, rules=["errors/broad-except"])
        assert result.active == []
        waived = [f for f in result.findings if f.waived]
        assert len(waived) == 1
        assert waived[0].waive_reason == "probe"

    def test_preceding_line_waiver_with_wrapped_reason(self, tmp_path):
        result = lint_tree(tmp_path, {"mod.py": """\
            def run(task):
                try:
                    task()
                # repro-lint: waive[errors/broad-except] -- the probe
                # absorbs every failure by design
                except Exception:
                    return None
            """}, rules=["errors/broad-except"])
        assert result.active == []
        waived = [f for f in result.findings if f.waived]
        assert waived[0].waive_reason == \
            "the probe absorbs every failure by design"

    def test_waiver_without_reason_is_a_finding(self, tmp_path):
        result = lint_tree(tmp_path, {"mod.py": """\
            def run(task):
                try:
                    task()
                except Exception:  # repro-lint: waive[errors/broad-except]
                    return None
            """}, rules=["errors/broad-except"])
        rules = active_rules(result)
        assert "lint/bad-waiver" in rules
        assert "errors/broad-except" in rules  # not suppressed

    def test_invalid_rule_id_is_a_finding(self, tmp_path):
        result = lint_tree(tmp_path, {"mod.py": """\
            # repro-lint: waive[NotARule] -- because
            x = 1
            """})
        assert active_rules(result) == ["lint/bad-waiver"]

    def test_unused_waiver_is_a_finding(self, tmp_path):
        result = lint_tree(tmp_path, {"mod.py": """\
            # repro-lint: waive[errors/broad-except] -- nothing here
            x = 1
            """}, rules=["errors/broad-except"])
        assert active_rules(result) == ["lint/unused-waiver"]

    def test_unused_waiver_exempt_when_rule_not_selected(self, tmp_path):
        result = lint_tree(tmp_path, {"mod.py": """\
            # repro-lint: waive[errors/broad-except] -- nothing here
            x = 1
            """}, rules=["determinism/set-iteration"])
        assert result.active == []

    def test_waiver_syntax_in_docstring_is_ignored(self, tmp_path):
        result = lint_tree(tmp_path, {"mod.py": '''\
            """Write ``# repro-lint: waive[rule-id] -- reason`` to waive."""

            PATTERN = "# repro-lint: waive[not/parsed]"
            '''})
        assert result.active == []

    def test_waiver_only_covers_named_rule(self, tmp_path):
        result = lint_tree(tmp_path, {"core/mod.py": """\
            import time

            def stamp():
                # repro-lint: waive[errors/broad-except] -- wrong rule
                return time.time()
            """}, rules=["determinism/wall-clock", "errors/broad-except"])
        assert "determinism/wall-clock" in active_rules(result)


# ---------------------------------------------------------------------------
# Baseline semantics
# ---------------------------------------------------------------------------

_DIRTY = {"mod.py": """\
    import random

    def pick(items):
        return random.choice(items)
    """}


class TestBaseline:
    def test_baseline_grandfathers_known_findings(self, tmp_path):
        dirty = lint_tree(tmp_path, _DIRTY,
                          rules=["determinism/global-rng"])
        assert dirty.exit_code == 1
        baseline_path = tmp_path / "baseline.json"
        save_baseline(baseline_path, dirty.findings)

        again = lint_tree(tmp_path, _DIRTY,
                          rules=["determinism/global-rng"],
                          baseline_path=baseline_path)
        assert again.exit_code == 0
        assert [f.baselined for f in again.findings] == [True]

    def test_baseline_survives_line_shifts(self, tmp_path):
        dirty = lint_tree(tmp_path, _DIRTY,
                          rules=["determinism/global-rng"])
        baseline_path = tmp_path / "baseline.json"
        save_baseline(baseline_path, dirty.findings)

        shifted = {"mod.py": "# a new comment\n\n" + textwrap.dedent(
            _DIRTY["mod.py"])}
        again = lint_tree(tmp_path, shifted,
                          rules=["determinism/global-rng"],
                          baseline_path=baseline_path)
        assert again.exit_code == 0

    def test_new_finding_still_fails_under_baseline(self, tmp_path):
        dirty = lint_tree(tmp_path, _DIRTY,
                          rules=["determinism/global-rng"])
        baseline_path = tmp_path / "baseline.json"
        save_baseline(baseline_path, dirty.findings)

        grown = {"mod.py": textwrap.dedent(_DIRTY["mod.py"])
                 + "\n\ndef also(items):\n"
                   "    return random.shuffle(items)\n"}
        again = lint_tree(tmp_path, grown,
                          rules=["determinism/global-rng"],
                          baseline_path=baseline_path)
        assert again.exit_code == 1
        assert len(again.active) == 1  # only the new site

    def test_stale_baseline_entry_is_surfaced(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps({
            "version": 1,
            "findings": [{"rule": "determinism/global-rng",
                          "path": "gone.py",
                          "message": "long since fixed"}],
        }), encoding="utf-8")
        result = lint_tree(tmp_path, {"mod.py": "x = 1\n"},
                           baseline_path=baseline_path)
        assert result.stale_baseline == [
            ("determinism/global-rng", "gone.py", "long since fixed")]

    def test_multiset_matching(self):
        finding = Finding(rule="r/a", severity="error", path="p.py",
                          line=3, col=0, message="dup")
        twin = Finding(rule="r/a", severity="error", path="p.py",
                       line=9, col=0, message="dup")
        from collections import Counter
        kept, unmatched = apply_baseline([finding, twin],
                                         Counter({finding.key(): 1}))
        assert [f.baselined for f in kept] == [True, False]
        assert not unmatched

    def test_corrupt_baseline_is_a_configuration_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("not json", encoding="utf-8")
        with pytest.raises(ConfigurationError):
            load_baseline(path)


# ---------------------------------------------------------------------------
# Findings, JSON schema, parse failures
# ---------------------------------------------------------------------------

class TestFindingsAndReport:
    def test_finding_roundtrip_exact(self):
        finding = Finding(rule="determinism/wall-clock", severity="error",
                          path="core/x.py", line=7, col=4,
                          message="clock read", suggestion="thread it")
        assert Finding.from_dict(finding.to_dict()) == finding
        waived = finding.waive("never feeds results")
        assert Finding.from_dict(waived.to_dict()) == waived
        assert Finding.from_dict(finding.grandfather().to_dict()).baselined

    def test_unknown_severity_rejected(self):
        with pytest.raises(ConfigurationError):
            Finding(rule="r/a", severity="fatal", path="p.py", line=1,
                    col=0, message="m")

    def test_json_schema_shape(self, tmp_path):
        result = lint_tree(tmp_path, _DIRTY,
                           rules=["determinism/global-rng"])
        payload = json.loads(render_json(result))
        assert payload["version"] == 1
        assert payload["rules"] == ["determinism/global-rng"]
        assert payload["summary"]["errors"] == 1
        assert payload["summary"]["exit_code"] == 1
        restored = [Finding.from_dict(item)
                    for item in payload["findings"]]
        assert restored == result.findings

    def test_render_text_mentions_waiver_reason(self, tmp_path):
        result = lint_tree(tmp_path, {"mod.py": """\
            def run(task):
                try:
                    task()
                except Exception:  # repro-lint: waive[errors/broad-except] -- probe
                    return None
            """}, rules=["errors/broad-except"])
        text = render_text(result, verbose=True)
        assert "waived: probe" in text
        assert render_text(result).endswith("(1 waived, 0 baselined)")

    def test_parse_failure_is_a_finding_not_a_crash(self, tmp_path):
        result = lint_tree(tmp_path, {
            "broken.py": "def oops(:\n",
            "fine.py": "import random\nx = random.random()\n",
        })
        rules = active_rules(result)
        assert "lint/parse-error" in rules
        assert "determinism/global-rng" in rules  # other files still audited
        assert result.exit_code == 1

    def test_unknown_rule_is_a_configuration_error(self, tmp_path):
        with pytest.raises(ConfigurationError):
            lint_tree(tmp_path, {"mod.py": "x = 1\n"},
                      rules=["no/such-rule"])


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

class TestCli:
    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert out == rule_names()
        assert len(out) == 8

    def test_dirty_tree_exits_one(self, tmp_path, capsys):
        root = tmp_path / "dirty"
        root.mkdir()
        (root / "mod.py").write_text(
            "import random\nx = random.random()\n", encoding="utf-8")
        assert main(["lint", str(root)]) == 1
        assert "determinism/global-rng" in capsys.readouterr().out

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        root = tmp_path / "dirty"
        root.mkdir()
        (root / "mod.py").write_text(
            "import random\nx = random.random()\n", encoding="utf-8")
        baseline = tmp_path / "baseline.json"
        assert main(["lint", str(root), "--baseline", str(baseline),
                     "--write-baseline"]) == 0
        assert baseline.exists()
        capsys.readouterr()
        assert main(["lint", str(root),
                     "--baseline", str(baseline)]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        root = tmp_path / "clean"
        root.mkdir()
        (root / "mod.py").write_text("x = 1\n", encoding="utf-8")
        assert main(["lint", str(root), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["exit_code"] == 0

    def test_unknown_rule_exits_via_system_exit(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["lint", str(tmp_path), "--rules", "no/such-rule"])

    def test_write_baseline_requires_baseline_path(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["lint", str(tmp_path), "--write-baseline"])

    def test_validate_all_registered_covers_cross_product(self, capsys):
        assert main(["validate", "--all-registered", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        pairs = {(row["protocol"], row["adversary"]) for row in rows}
        assert len(pairs) == len(rows)  # no duplicate pairs
        protocols = {row["protocol"] for row in rows}
        adversaries = {row["adversary"] for row in rows}
        assert len(protocols) == 8
        assert len(adversaries) == 18
        assert len(rows) == 8 * 18
        assert all(row["status"] == "ok" for row in rows)

    def test_validate_all_registered_rejects_request_file(self):
        with pytest.raises(SystemExit):
            main(["validate", "requests.json", "--all-registered"])

    def test_validate_without_input_errors(self):
        with pytest.raises(SystemExit):
            main(["validate"])


# ---------------------------------------------------------------------------
# The self-lint invariant and the set-iteration fix it pinned
# ---------------------------------------------------------------------------

class TestSelfLint:
    def test_src_repro_is_clean(self):
        """The shipped tree passes its own audit (waivers all reasoned)."""
        result = run_lint(REPRO_ROOT, package="repro")
        assert len(result.rules) == 8
        assert result.active == []
        assert result.exit_code == 0
        for finding in result.findings:
            assert finding.waived
            assert finding.waive_reason  # every waiver carries a reason

    def test_self_lint_exercises_every_rule_somewhere(self):
        """Waivers prove the determinism/error rules fire on real code."""
        result = run_lint(REPRO_ROOT, package="repro")
        waived_rules = {finding.rule for finding in result.findings}
        assert "determinism/set-iteration" in waived_rules
        assert "determinism/wall-clock" in waived_rules
        assert "errors/broad-except" in waived_rules

    @needs_numpy
    def test_code_translation_visits_codes_sorted(self):
        """Regression: codec interning order must not depend on set order.

        ``_code_translation`` interns previously unseen values via
        ``VALUE_CODEC.code``; visiting distinct old codes in sorted order
        makes the codes assigned to fresh values a deterministic function
        of the message, not of hash seeding.
        """
        import numpy as np

        from repro.core.npsupport import VALUE_CODEC
        from repro.runtime.messages import NumpyLevelMessage

        old_codes = [VALUE_CODEC.code(f"lint-reg-old-{i}")
                     for i in range(5)]
        codes = np.asarray(old_codes[::-1] + old_codes, dtype=np.int64)
        translation = NumpyLevelMessage._code_translation(
            None, codes,
            lambda value: f"fresh-{value}")
        fresh = [translation[code] for code in sorted(old_codes)]
        assert fresh == sorted(fresh)  # interned in ascending old-code order
