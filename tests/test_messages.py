"""Unit tests for messages and outbox helpers (repro.runtime.messages)."""

import pytest

from repro.runtime.messages import (Message, broadcast, largest_message_entries,
                                    stamp_sender, total_bits, total_entries)


class TestMessage:
    def test_entries_view_is_read_only(self):
        message = Message({(0,): 1}, sender=2, round_number=1)
        entries = message.entries
        with pytest.raises(TypeError):
            entries[(0, 1)] = 0
        assert (0, 1) not in message

    def test_items_iterates_without_copying(self):
        message = Message({(0,): 1, (0, 1): 0}, sender=2, round_number=1)
        assert dict(message.items()) == {(0,): 1, (0, 1): 0}
        assert sorted(message) == [(0,), (0, 1)]

    def test_value_for_known_sequence(self):
        message = Message({(0, 1): 1}, sender=2, round_number=2)
        assert message.value_for((0, 1)) == 1

    def test_value_for_missing_sequence_is_none(self):
        message = Message({(0, 1): 1}, sender=2, round_number=2)
        assert message.value_for((0, 3)) is None

    def test_len_and_contains(self):
        message = Message({(0,): 1, (0, 1): 0}, sender=2, round_number=2)
        assert len(message) == 2
        assert (0,) in message

    def test_equality(self):
        a = Message({(0,): 1}, sender=2, round_number=1)
        b = Message({(0,): 1}, sender=2, round_number=1)
        c = Message({(0,): 0}, sender=2, round_number=1)
        assert a == b
        assert a != c
        assert a != "not a message"

    def test_single_constructor(self):
        message = Message.single((0,), 1, sender=0, round_number=1)
        assert message.entry_count() == 1
        assert message.value_for((0,)) == 1

    def test_replace_values(self):
        message = Message({(0,): 1, (0, 1): 1}, sender=2, round_number=2)
        masked = message.replace_values(0)
        assert set(masked.entries.values()) == {0}
        assert masked.sender == 2

    def test_with_entries_keeps_identity(self):
        message = Message({(0,): 1}, sender=2, round_number=3)
        rewritten = message.with_entries({(0,): 0})
        assert rewritten.sender == 2
        assert rewritten.round_number == 3
        assert rewritten.value_for((0,)) == 0

    def test_size_bits_grows_with_entries_and_depth(self):
        shallow = Message({(0,): 1}, sender=2, round_number=1)
        deep = Message({(0, 1, 2): 1, (0, 1, 3): 0}, sender=2, round_number=3)
        assert deep.size_bits(n=8) > shallow.size_bits(n=8)

    def test_repr_contains_sender_and_round(self):
        message = Message({(0,): 1}, sender=2, round_number=1)
        assert "sender=2" in repr(message)


class TestBroadcastHelpers:
    def test_broadcast_excludes_sender(self):
        outbox = broadcast({(0,): 1}, sender=2, round_number=1,
                           destinations=range(4))
        assert set(outbox) == {0, 1, 3}

    def test_broadcast_shares_one_message_object(self):
        outbox = broadcast({(0,): 1}, sender=2, round_number=1,
                           destinations=range(4))
        assert len({id(message) for message in outbox.values()}) == 1

    def test_total_entries_and_bits(self):
        outbox = broadcast({(0,): 1, (0, 1): 0}, sender=2, round_number=2,
                           destinations=range(4))
        assert total_entries(outbox) == 2 * 3
        assert total_bits(outbox, n=4) > 0

    def test_largest_message_entries(self):
        outbox = broadcast({(0,): 1, (0, 1): 0}, sender=2, round_number=2,
                           destinations=range(4))
        assert largest_message_entries(outbox) == 2
        assert largest_message_entries({}) == 0


class TestStampSender:
    def test_spoofed_sender_is_corrected(self):
        forged = Message({(0,): 1}, sender=5, round_number=1)
        stamped = stamp_sender(forged, true_sender=3)
        assert stamped.sender == 3
        assert stamped.entries == forged.entries

    def test_honest_sender_untouched(self):
        honest = Message({(0,): 1}, sender=3, round_number=1)
        assert stamp_sender(honest, true_sender=3) is honest
