"""Tests for the adversary-search harness (repro.search + the CLI verb).

The load-bearing claims: a search is a pure function of ``(spec,
sweep_seed)``; the under-resilient ``n = 3, t = 1`` cell yields an agreement
violation quickly; a resilient grid (with the beyond-model
transient-corruption family excluded) yields none; the minimizer only
shrinks while the violation persists; and a pinned fixture replays to the
exact pinned outcome.
"""

import json

import pytest

from repro import cli
from repro.api import RunRequest, execute
from repro.search import (OBJECTIVES, SearchSpec, get_objective, load_pinned,
                          minimize_counterexample, objective_names,
                          pin_scenario, pinned_paths, replay_pinned,
                          run_search)
from repro.search.pinning import scenario_name
from repro.search.space import (mutate_viable, sample_viable, viable)
from repro.runtime.errors import ConfigurationError

import random

UNSAFE = SearchSpec(cells=((3, 1),), allow_unsafe=True, budget=200,
                    sweep_seed=0)
SAFE_NO_CORRUPTION = SearchSpec(
    cells=((7, 2),), budget=64, sweep_seed=0,
    adversaries=tuple(n for n in SearchSpec().adversary_pool()
                      if n != "transient-corruption"))

#: The deterministic first hit of ``UNSAFE`` (pinned in
#: tests/pinned_scenarios/); changing the sampler, the seed rule, or the
#: engines shows up here first.
KNOWN_HIT_SEED = 2650671191879346030


class TestObjectives:
    def test_registry_names(self):
        assert list(objective_names()) == sorted(OBJECTIVES)
        assert "agreement_violation" in OBJECTIVES
        assert {"max_rounds", "max_messages", "max_units"} <= set(OBJECTIVES)

    def test_only_safety_objective_flags_violations(self):
        assert get_objective("agreement_violation").is_violation
        assert not get_objective("max_rounds").is_violation

    def test_unknown_objective_is_loud(self):
        with pytest.raises(ConfigurationError, match="objective"):
            get_objective("min_entropy")

    def test_agreement_objective_scores_a_real_violation(self):
        objective = get_objective("agreement_violation")
        report = execute(RunRequest(protocol="exponential", n=3, t=1,
                                    faulty=(2,), adversary="consistent-liar",
                                    initial_value=1, seed=KNOWN_HIT_SEED,
                                    allow_unsafe=True))
        assert objective.violated(report)
        assert objective.score(report) == 2.0  # disagreement outranks
        healthy = execute(RunRequest(protocol="exponential", n=4, t=1,
                                     faulty=(3,),
                                     adversary="consistent-liar",
                                     initial_value=1))
        assert not objective.violated(healthy)
        assert objective.score(healthy) == 0.0


class TestSearchSpec:
    def test_round_trips_through_json(self):
        spec = SearchSpec(objective="max_messages", protocols=("exponential",),
                          cells=((7, 2), (10, 3)), adversaries=("two-faced",),
                          strategy="anneal", budget=32, sweep_seed=9,
                          initial_values=(1,))
        assert SearchSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))) == spec

    def test_rejects_unknown_names_and_empty_grids(self):
        with pytest.raises(ConfigurationError, match="strategy"):
            SearchSpec(strategy="tabu")
        with pytest.raises(ConfigurationError, match="protocol"):
            SearchSpec(protocols=("quantum",))
        with pytest.raises(ConfigurationError, match="adversar"):
            SearchSpec(adversaries=("trickster",))
        with pytest.raises(ConfigurationError, match="budget"):
            SearchSpec(budget=0)
        with pytest.raises(ConfigurationError, match="cell"):
            SearchSpec(cells=())
        with pytest.raises(ConfigurationError, match="SearchSpec field"):
            SearchSpec.from_dict({"budgets": 3})

    def test_empty_adversaries_means_the_whole_registry(self):
        from repro.api import adversary_names
        assert SearchSpec().adversary_pool() == \
            tuple(sorted(adversary_names()))
        assert SearchSpec(adversaries=("silent",)).adversary_pool() == \
            ("silent",)


class TestSampling:
    def test_sampled_candidates_are_viable_and_inside_the_grid(self):
        rng = random.Random(7)
        for _ in range(20):
            candidate = sample_viable(UNSAFE, rng)
            assert candidate is not None
            assert (candidate.n, candidate.t) == (3, 1)
            assert candidate.allow_unsafe
            assert viable(candidate)

    def test_mutation_changes_exactly_reachable_coordinates(self):
        rng = random.Random(3)
        base = sample_viable(SAFE_NO_CORRUPTION, rng)
        for _ in range(10):
            neighbor = mutate_viable(SAFE_NO_CORRUPTION, base, rng)
            assert neighbor is not None and neighbor != base
            assert viable(neighbor)


class TestRunSearch:
    def test_unsafe_cell_yields_a_violation_immediately(self):
        result = run_search(UNSAFE)
        assert result.found and result.stopped_early
        assert result.evaluated < UNSAFE.budget
        hit = result.violations[0]
        assert not hit.report.agreement or not hit.report.validity
        assert hit.request.seed == KNOWN_HIT_SEED
        assert hit.request.adversary == "consistent-liar"
        assert hit.request.initial_value == 1

    def test_search_is_a_pure_function_of_spec_and_seed(self):
        first = run_search(UNSAFE)
        second = run_search(UNSAFE)
        assert [e.request for e in first.violations] == \
            [e.request for e in second.violations]
        assert first.evaluated == second.evaluated
        assert first.best.request == second.best.request

    def test_resilient_grid_stays_clean(self):
        result = run_search(SAFE_NO_CORRUPTION)
        assert not result.found
        assert not result.stopped_early
        assert result.evaluated == SAFE_NO_CORRUPTION.budget

    def test_cost_objective_spends_the_whole_budget(self):
        spec = SearchSpec(objective="max_messages", cells=((7, 2),),
                          strategy="anneal", budget=24, sweep_seed=1,
                          adversaries=("two-faced", "consistent-liar",
                                       "silent"))
        result = run_search(spec)
        assert result.evaluated == spec.budget
        assert result.best is not None and result.best.score > 0
        assert not result.violations

    def test_stop_on_violation_false_collects_every_hit(self):
        spec = SearchSpec(cells=((3, 1),), allow_unsafe=True, budget=48,
                          sweep_seed=0,
                          adversaries=("consistent-liar", "two-faced"))
        greedy = run_search(spec, stop_on_violation=False)
        eager = run_search(spec)
        assert not greedy.stopped_early
        assert greedy.evaluated == spec.budget
        assert len(greedy.violations) >= len(eager.violations) >= 1
        assert greedy.violations[0].request == eager.violations[0].request


class TestMinimize:
    def test_healthy_request_is_rejected(self):
        healthy = RunRequest(protocol="exponential", n=7, t=2, faulty=(5, 6),
                             adversary="consistent-liar", initial_value=1)
        with pytest.raises(ValueError, match="does not violate"):
            minimize_counterexample(healthy)

    def test_minimized_request_still_violates_and_never_grows(self):
        raw = run_search(UNSAFE).violations[0].request
        small, report = minimize_counterexample(raw)
        assert not report.agreement or not report.validity
        assert set(small.faulty or ()) <= set(raw.faulty or ())
        assert set(small.adversary_params) <= set(raw.adversary_params)
        for name, value in small.adversary_params.items():
            assert value <= raw.adversary_params[name]
        assert len(small.domain) <= len(raw.domain)
        # A second pass finds nothing left to remove (fixpoint).
        again, _ = minimize_counterexample(small)
        assert again == small

    def test_shrinks_inflated_integer_params(self):
        # victims=3 breaks agreement at n=7, t=2; an inflated corruption
        # window shrinks back because the violation persists without it.
        inflated = RunRequest(
            protocol="exponential", n=7, t=2, faulty=(2,),
            adversary="transient-corruption",
            adversary_params={"corrupt_rounds": 1, "victims": 3, "flips": 1},
            initial_value=1, seed=364022971)
        small, report = minimize_counterexample(inflated)
        assert not report.agreement
        assert small.adversary_params["victims"] <= 3
        assert small.adversary_params["corrupt_rounds"] == 1
        assert small.adversary_params["flips"] == 1


class TestPinning:
    def _hit(self):
        small, report = minimize_counterexample(
            run_search(UNSAFE).violations[0].request)
        return small, report

    def test_pin_and_replay_round_trip(self, tmp_path):
        request, report = self._hit()
        path = pin_scenario(request, report, str(tmp_path))
        assert pinned_paths(str(tmp_path)) == [path]
        loaded, expect = load_pinned(path)
        assert loaded == request
        assert expect["agreement"] == report.agreement
        replayed, _, mismatches = replay_pinned(path)
        assert mismatches == []
        assert replayed.decisions == report.decisions

    def test_scenario_name_is_filesystem_safe_and_descriptive(self):
        request, _ = self._hit()
        name = scenario_name(request)
        assert name.startswith("exponential-n3t1-")
        assert f"seed{request.seed}" in name
        assert "/" not in name and " " not in name

    def test_replay_detects_drift(self, tmp_path):
        request, report = self._hit()
        path = pin_scenario(request, report, str(tmp_path))
        payload = json.loads(open(path).read())
        payload["expect"]["rounds"] = report.rounds + 5
        with open(path, "w") as handle:
            json.dump(payload, handle)
        _, _, mismatches = replay_pinned(path)
        assert mismatches and "rounds" in mismatches[0]

    def test_load_rejects_foreign_and_broken_files(self, tmp_path):
        bad = tmp_path / "nonsense.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_pinned(str(bad))
        foreign = tmp_path / "foreign.json"
        foreign.write_text('{"kind": "something-else"}')
        with pytest.raises(ConfigurationError, match="pinned scenario"):
            load_pinned(str(foreign))
        assert pinned_paths(str(tmp_path / "missing")) == []


class TestCli:
    def test_search_exit_code_signals_a_find(self, tmp_path, capsys):
        code = cli.main(["search", "--cell", "3,1", "--allow-unsafe",
                         "--budget", "200", "--sweep-seed", "0",
                         "--pin", str(tmp_path)])
        assert code == 3
        out = capsys.readouterr().out
        assert "violation" in out.lower()
        assert len(pinned_paths(str(tmp_path))) == 1

    def test_search_clean_grid_exits_zero(self, capsys):
        code = cli.main(["search", "--cell", "7,2", "--budget", "32",
                         "--exclude", "transient-corruption",
                         "--sweep-seed", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "searched 32 execution(s)" in out
        assert "minimized" not in out and "raw hit" not in out

    def test_search_json_output_is_parseable(self, capsys):
        code = cli.main(["search", "--cell", "3,1", "--allow-unsafe",
                         "--budget", "200", "--sweep-seed", "0", "--json",
                         "--no-minimize"])
        assert code == 3
        payload = json.loads(capsys.readouterr().out)
        assert payload["found"] is True
        assert payload["spec"]["cells"] == [[3, 1]]
        assert payload["violations"][0]["request"]["adversary"] == \
            "consistent-liar"

    def test_search_rejects_unknown_exclusions(self):
        with pytest.raises(SystemExit, match="unknown adversar"):
            cli.main(["search", "--exclude", "no-such-adversary"])

    def test_validate_reports_batched_eligibility(self, tmp_path, capsys):
        requests = [
            RunRequest(protocol="exponential", n=7, t=2, faulty=(5, 6),
                       adversary="crash-recovery",
                       initial_value=1).to_dict(),
            RunRequest(protocol="exponential", n=7, t=2, faulty=(5, 6),
                       adversary="transient-corruption",
                       initial_value=1).to_dict(),
        ]
        path = tmp_path / "requests.json"
        path.write_text(json.dumps(requests))
        code = cli.main(["validate", str(path), "--json"])
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["batched"].startswith("fallback: ")
        assert "round" in rows[0]["batched"]  # the verbatim reason text
        from repro.core.engine import numpy_available
        if numpy_available():
            assert rows[1]["batched"] == "eligible"
        else:
            assert rows[1]["batched"] == "fallback: numpy is not importable"
