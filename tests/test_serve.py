"""Tests for the serving layer (repro.serve): cache, journal, service, HTTP.

The contracts under test, from the inside out:

* the **cache key** is engine-independent — requests differing only in
  engine choice share one entry — and cache correctness is never load-
  bearing: torn entry files read as misses and are deleted;
* the **journal** is written ahead of execution and replays exactly:
  completed entries warm the cache, accepted-without-completion entries
  re-enqueue, torn tails are repaired by compaction, duplicate completions
  are counted loudly;
* the **crash-recovery property**: a chaos-disturbed serve session, killed
  at its fault point and restarted on the same journal and cache
  directory, serves ``outcome_dict()``s byte-identical to a session that
  was never disturbed — and completed requests come from the cache, not
  re-execution;
* the **HTTP frontend** speaks plain HTTP/1.1: admission failures are 400,
  overload is 429 with Retry-After, health endpoints flip under fault and
  drain, sweeps stream as NDJSON.
"""

import http.client
import json
import os
import threading

import pytest

from repro.api import RunRequest, execute
from repro.runtime.chaos import ChaosPolicy, FaultInjection, chaos_scope
from repro.runtime.errors import (CheckpointWriteError, ConfigurationError,
                                  SupervisionExhaustedError)
from repro.serve import (AdmissionError, AgreementService, HttpFrontend,
                         ResultCache, ServeJournal, ServeMetrics,
                         ServiceUnavailableError, request_digest)


def small_request(**overrides):
    fields = dict(protocol="exponential", n=7, t=2, initial_value=1,
                  faulty=(5, 6), adversary="two-faced", seed=5)
    fields.update(overrides)
    return RunRequest(**fields)


def chaos_policy(kind, **kwargs):
    return ChaosPolicy(faults=(FaultInjection(kind=kind, **kwargs),))


class TestRequestDigest:
    def test_engine_choice_does_not_fragment_the_cache(self):
        digests = {request_digest(small_request(engine=engine))
                   for engine in ("auto", "numpy", "fast", "batched")}
        assert len(digests) == 1

    def test_outcome_relevant_fields_do_change_the_key(self):
        base = request_digest(small_request())
        assert request_digest(small_request(seed=6)) != base
        assert request_digest(small_request(initial_value=0)) != base
        assert request_digest(small_request(adversary="benign")) != base

    def test_digest_is_stable_across_processes(self):
        # A content address must not depend on interpreter state.
        assert request_digest(small_request()) == request_digest(
            RunRequest.from_dict(small_request().to_dict()))


class TestResultCache:
    def test_memory_hit_and_miss_counters(self):
        cache = ResultCache()
        assert cache.get("a" * 64) is None
        cache.put("a" * 64, {"decisions": {"0": 1}})
        assert cache.get("a" * 64) == {"decisions": {"0": 1}}
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1,
                                 "write_failures": 0, "evictions": 0}

    def test_peek_does_not_touch_counters(self):
        cache = ResultCache()
        cache.put("a" * 64, {"decisions": {}})
        cache.peek("a" * 64)
        cache.peek("b" * 64)
        assert cache.hits == 0 and cache.misses == 0

    def test_disk_round_trip_survives_a_new_instance(self, tmp_path):
        first = ResultCache(str(tmp_path))
        first.put("a" * 64, {"decisions": {"0": 1}})
        second = ResultCache(str(tmp_path))
        assert second.get("a" * 64) == {"decisions": {"0": 1}}
        assert second.hits == 1

    def test_torn_disk_entry_reads_as_a_miss_and_is_deleted(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        path = os.path.join(str(tmp_path), "f" * 64 + ".json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"decisions": {"0"')  # a crash mid-store
        assert cache.get("f" * 64) is None
        assert not os.path.exists(path)

    def test_misshapen_disk_entry_is_not_an_answer(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        path = os.path.join(str(tmp_path), "e" * 64 + ".json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"not": "an outcome"}, handle)
        assert cache.get("e" * 64) is None
        assert not os.path.exists(path)

    def test_chaos_store_failure_is_best_effort(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        with chaos_scope(chaos_policy("cache-write-fail", times=1)):
            assert cache.put("a" * 64, {"decisions": {"0": 1}}) is False
        assert cache.write_failures == 1
        # The in-memory entry still serves this process...
        assert cache.get("a" * 64) == {"decisions": {"0": 1}}
        # ...and the torn file the chaos left reads as a miss elsewhere.
        assert ResultCache(str(tmp_path)).get("a" * 64) is None
        # The next store (budget spent) lands durably.
        assert cache.put("a" * 64, {"decisions": {"0": 1}}) is True
        assert ResultCache(str(tmp_path)).get("a" * 64) is not None


class TestCacheEviction:
    def test_cap_is_enforced_lru_first(self):
        cache = ResultCache(max_entries=2)
        cache.put("a" * 64, {"decisions": {"0": 1}})
        cache.put("b" * 64, {"decisions": {"0": 2}})
        # Touch "a" so "b" becomes the least recently used entry.
        assert cache.get("a" * 64) is not None
        cache.put("c" * 64, {"decisions": {"0": 3}})
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.peek("b" * 64) is None
        assert cache.peek("a" * 64) is not None
        assert cache.peek("c" * 64) is not None

    def test_eviction_unlinks_the_disk_entry(self, tmp_path):
        cache = ResultCache(str(tmp_path), max_entries=1)
        cache.put("a" * 64, {"decisions": {"0": 1}})
        a_path = os.path.join(str(tmp_path), "a" * 64 + ".json")
        assert os.path.exists(a_path)
        cache.put("b" * 64, {"decisions": {"0": 2}})
        # The evicted entry is gone from memory AND disk: a capped cache
        # must not resurrect past its cap on the next restart.
        assert not os.path.exists(a_path)
        restarted = ResultCache(str(tmp_path), max_entries=1)
        assert restarted.get("a" * 64) is None
        assert restarted.get("b" * 64) is not None

    def test_disk_fallthrough_also_respects_the_cap(self, tmp_path):
        writer = ResultCache(str(tmp_path))
        for letter in "abc":
            writer.put(letter * 64, {"decisions": {"0": 1}})
        capped = ResultCache(str(tmp_path), max_entries=1)
        for letter in "abc":
            assert capped.get(letter * 64) is not None
        assert len(capped) == 1
        assert capped.evictions == 2

    def test_evictions_surface_in_stats(self):
        cache = ResultCache(max_entries=1)
        cache.put("a" * 64, {"decisions": {}})
        cache.put("b" * 64, {"decisions": {}})
        assert cache.stats()["evictions"] == 1
        assert cache.stats()["entries"] == 1

    def test_nonpositive_cap_is_refused(self):
        with pytest.raises(ConfigurationError):
            ResultCache(max_entries=0)

    def test_uncapped_cache_never_evicts(self):
        cache = ResultCache()
        for index in range(100):
            cache.put(f"{index:064d}", {"decisions": {}})
        assert len(cache) == 100 and cache.evictions == 0


class TestServeJournal:
    def test_accept_complete_replay_round_trip(self, tmp_path):
        path = str(tmp_path / "serve.jsonl")
        journal = ServeJournal(path)
        journal.open()
        request = small_request()
        journal.accepted("d1", request)
        journal.accepted("d2", small_request(seed=6))
        journal.completed("d1", {"decisions": {"0": 1}})
        journal.close()
        replay = ServeJournal(path).replay()
        assert replay.completed == {"d1": {"decisions": {"0": 1}}}
        assert [(digest, req.seed) for digest, req in replay.pending] == [
            ("d2", 6)]
        assert replay.summary() == {"completed": 1, "pending": 1,
                                    "duplicates": 0, "torn_tail": False}

    def test_torn_tail_is_tolerated_and_compacted_away(self, tmp_path):
        path = str(tmp_path / "serve.jsonl")
        journal = ServeJournal(path)
        journal.open()
        journal.accepted("d1", small_request())
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "completed", "id": "d1", "outc')
        replay = ServeJournal(path).replay()
        assert replay.torn_tail
        assert [d for d, _ in replay.pending] == ["d1"]
        fresh = ServeJournal(path)
        fresh.compact(replay)
        after = ServeJournal(path).replay()
        assert not after.torn_tail
        assert [d for d, _ in after.pending] == ["d1"]

    def test_duplicate_completions_are_counted_not_masked(self, tmp_path):
        path = str(tmp_path / "serve.jsonl")
        journal = ServeJournal(path)
        journal.open()
        journal.accepted("d1", small_request())
        journal.completed("d1", {"decisions": {"0": 0}})
        journal.completed("d1", {"decisions": {"0": 1}})
        journal.close()
        replay = ServeJournal(path).replay()
        assert replay.duplicates == 1
        assert replay.completed["d1"] == {"decisions": {"0": 1}}  # last wins

    def test_garbage_before_the_end_is_corruption(self, tmp_path):
        path = str(tmp_path / "serve.jsonl")
        journal = ServeJournal(path)
        journal.open()
        journal.accepted("d1", small_request())
        journal.close()
        content = open(path, encoding="utf-8").read()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(content.splitlines()[0] + "\n")
            handle.write("not json {{{\n")
            handle.write(content.splitlines()[1] + "\n")
        with pytest.raises(ConfigurationError, match="before the end"):
            ServeJournal(path).replay()

    def test_wrong_kind_header_is_rejected(self, tmp_path):
        path = str(tmp_path / "other.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"kind": "repro-sweep-checkpoint", "version": 1}\n')
        with pytest.raises(ConfigurationError, match="not a serve journal"):
            ServeJournal(path).replay()

    def test_chaos_torn_append_is_fail_stop(self, tmp_path):
        path = str(tmp_path / "serve.jsonl")
        journal = ServeJournal(path)
        journal.open()
        journal.accepted("d1", small_request())
        with chaos_scope(chaos_policy("journal-torn-write", times=1)):
            with pytest.raises(CheckpointWriteError, match="append failed"):
                journal.completed("d1", {"decisions": {"0": 1}})
        journal.close()
        # The partial line is on disk — exactly a kill -9 mid-append — and
        # replay treats it as the crash tail: d1 is still pending.
        replay = ServeJournal(path).replay()
        assert replay.torn_tail
        assert [d for d, _ in replay.pending] == ["d1"]

    def test_compact_refuses_an_open_journal(self, tmp_path):
        journal = ServeJournal(str(tmp_path / "serve.jsonl"))
        journal.open()
        with pytest.raises(ConfigurationError, match="before opening"):
            journal.compact()


class TestAgreementService:
    def test_admission_rejects_before_any_queue_or_journal_state(self,
                                                                 tmp_path):
        journal = ServeJournal(str(tmp_path / "serve.jsonl"))
        service = AgreementService(journal=journal)
        service.start()
        with pytest.raises(AdmissionError, match="unknown protocol"):
            service.admit(small_request(protocol="quantum"))
        service.close()
        replay = ServeJournal(journal.path).replay()
        assert replay.summary()["pending"] == 0  # nothing was journaled
        assert service.metrics.snapshot()["admission_rejects_total"] == 1

    def test_handle_executes_then_serves_from_cache(self):
        service = AgreementService()
        first = service.handle(small_request())
        second = service.handle(small_request())
        assert not first.cached and second.cached
        assert second.outcome == first.outcome
        assert first.outcome == execute(small_request()).outcome_dict()
        snap = service.metrics.snapshot(cache_stats=service.cache.stats())
        assert snap["executions_total"] == 1
        assert snap["requests_total"] == 2
        assert snap["cache"]["hits"] == 1

    def test_engine_variants_share_one_cache_entry(self):
        service = AgreementService()
        first = service.handle(small_request(engine="fast"))
        second = service.handle(small_request(engine="numpy"))
        assert second.cached
        assert second.outcome == first.outcome

    def test_worker_death_chaos_is_self_healed_by_retry(self):
        service = AgreementService()
        with chaos_scope(chaos_policy("serve-worker-death", times=1)):
            result = service.handle(small_request())
        assert not result.cached
        assert result.outcome == execute(small_request()).outcome_dict()
        events = [e["event"] for e in result.resilience]
        assert "retry" in events and "completed" in events
        snap = service.metrics.snapshot()
        assert snap["resilience_events"].get("retry:serve-worker") == 1

    def test_worker_death_beyond_the_budget_exhausts_loudly(self):
        service = AgreementService()
        with chaos_scope(chaos_policy("serve-worker-death", times=10)):
            with pytest.raises(SupervisionExhaustedError):
                service.handle(small_request())
        assert service.metrics.snapshot()["execution_failures_total"] == 1

    def test_journal_fault_stops_the_service(self, tmp_path):
        journal = ServeJournal(str(tmp_path / "serve.jsonl"))
        service = AgreementService(journal=journal)
        service.start()
        request = small_request()
        with chaos_scope(chaos_policy("journal-torn-write", times=1)):
            with pytest.raises(CheckpointWriteError):
                service.accept(service.admit(request), request)
        # Fail-stop: the faulted service refuses further admissions.
        with pytest.raises(ServiceUnavailableError, match="faulted"):
            service.admit(request)
        service.close()

    def test_run_pending_executes_recovered_work_in_order(self, tmp_path):
        path = str(tmp_path / "serve.jsonl")
        journal = ServeJournal(path)
        journal.open()
        first, second = small_request(seed=1), small_request(seed=2)
        journal.accepted(request_digest(first), first)
        journal.accepted(request_digest(second), second)
        journal.close()
        service = AgreementService(journal=ServeJournal(path))
        recovery = service.start()
        assert recovery["pending"] == 2
        results = service.run_pending()
        assert [r.outcome for r in results] == [
            execute(first).outcome_dict(), execute(second).outcome_dict()]
        service.close()
        assert ServeJournal(path).replay().summary() == {
            "completed": 2, "pending": 0, "duplicates": 0,
            "torn_tail": False}


class TestCrashRecoveryProperty:
    """The headline property: chaos + restart == never disturbed."""

    REQUESTS = None  # built lazily; class-level to share across tests

    @classmethod
    def requests(cls):
        if cls.REQUESTS is None:
            cls.REQUESTS = [small_request(seed=seed) for seed in range(4)]
        return cls.REQUESTS

    def undisturbed_outcomes(self):
        return {request_digest(r): execute(r).outcome_dict()
                for r in self.requests()}

    def test_journal_crash_then_restart_serves_identical_outcomes(
            self, tmp_path):
        path = str(tmp_path / "serve.jsonl")
        cache_dir = str(tmp_path / "cache")
        service = AgreementService(cache=ResultCache(cache_dir),
                                   journal=ServeJournal(path))
        service.start()
        served = {}
        # The 5th journal append dies torn: two requests complete (2 writes
        # each: accepted + completed), the third is accepted and then the
        # process "dies" mid-completion-append.
        with chaos_scope(chaos_policy("journal-torn-write", times=1,
                                      index=5)):
            for request in self.requests():
                try:
                    result = service.handle(request)
                    served[result.digest] = result.outcome
                except CheckpointWriteError:
                    break  # the simulated kill -9 point
        assert service.fault is not None
        service.close()  # the OS closing fds of a dead process

        # Restart on the same journal and cache directory.
        revived = AgreementService(cache=ResultCache(cache_dir),
                                   journal=ServeJournal(path))
        recovery = revived.start()
        assert recovery["torn_tail"]
        # The interrupted request was journaled as accepted, so it is
        # pending; the two completed ones were warmed into the cache.
        assert recovery["completed"] == 2
        assert recovery["pending"] == 1
        revived.run_pending()
        # Every request — served pre-crash, recovered, or fresh — now
        # returns outcomes byte-identical to a never-disturbed session.
        expected = self.undisturbed_outcomes()
        for request in self.requests():
            result = revived.handle(request)
            digest = request_digest(request)
            assert json.dumps(result.outcome, sort_keys=True) == json.dumps(
                expected[digest], sort_keys=True)
        # And what was served before the crash matches too.
        for digest, outcome in served.items():
            assert outcome == expected[digest]
        revived.close()

    def test_completed_requests_recover_as_cache_hits_not_reexecution(
            self, tmp_path):
        path = str(tmp_path / "serve.jsonl")
        service = AgreementService(journal=ServeJournal(path))
        service.start()
        request = self.requests()[0]
        service.handle(request)
        service.close()

        revived = AgreementService(journal=ServeJournal(path))
        revived.start()
        result = revived.handle(request)
        assert result.cached
        assert revived.cache.hits == 1
        snap = revived.metrics.snapshot()
        assert snap["executions_total"] == 0  # no re-execution happened
        revived.close()

    def test_cache_write_chaos_never_corrupts_what_is_served(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        service = AgreementService(cache=ResultCache(cache_dir))
        with chaos_scope(chaos_policy("cache-write-fail", times=2)):
            outcomes = [service.handle(r).outcome for r in self.requests()]
        assert service.cache.write_failures == 2
        expected = self.undisturbed_outcomes()
        for request, outcome in zip(self.requests(), outcomes):
            assert outcome == expected[request_digest(request)]
        # A fresh cache over the same directory never sees torn entries as
        # answers: every surviving disk entry equals the true outcome.
        fresh = ResultCache(cache_dir)
        for request in self.requests():
            digest = request_digest(request)
            entry = fresh.peek(digest)
            assert entry is None or entry == expected[digest]


def _http(port, method, path, body=None, timeout=60):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    conn.request(method, path,
                 body=None if body is None else json.dumps(body))
    response = conn.getresponse()
    payload = response.read()
    headers = dict(response.getheaders())
    conn.close()
    return response.status, payload, headers


@pytest.fixture()
def frontend(tmp_path):
    """A live server on an OS-assigned port, torn down after the test."""
    service = AgreementService(
        cache=ResultCache(str(tmp_path / "cache")),
        journal=ServeJournal(str(tmp_path / "serve.jsonl")))
    frontend = HttpFrontend(service, port=0, max_queue=8, workers=2,
                            drain_deadline=5.0)
    thread = threading.Thread(target=frontend.run, daemon=True)
    thread.start()
    assert frontend.ready.wait(15), frontend._run_error
    yield frontend
    frontend.stop()
    thread.join(20)


class TestHttpFrontend:
    def test_health_and_readiness(self, frontend):
        status, body, _ = _http(frontend.port, "GET", "/healthz")
        assert status == 200 and json.loads(body)["status"] == "ok"
        status, body, _ = _http(frontend.port, "GET", "/readyz")
        assert status == 200 and json.loads(body)["status"] == "ready"

    def test_run_cold_then_cached(self, frontend):
        payload = small_request().to_dict()
        status, body, _ = _http(frontend.port, "POST", "/run", payload)
        first = json.loads(body)
        assert status == 200 and not first["cached"]
        status, body, _ = _http(frontend.port, "POST", "/run", payload)
        second = json.loads(body)
        assert status == 200 and second["cached"]
        assert second["outcome"] == first["outcome"]
        assert second["id"] == first["id"] == request_digest(small_request())

    def test_admission_failure_is_400_with_the_planner_message(self,
                                                               frontend):
        bad = dict(small_request().to_dict(), protocol="quantum")
        status, body, _ = _http(frontend.port, "POST", "/run", bad)
        assert status == 400
        assert "unknown protocol" in json.loads(body)["error"]

    def test_non_json_body_is_400(self, frontend):
        conn = http.client.HTTPConnection("127.0.0.1", frontend.port,
                                          timeout=30)
        conn.request("POST", "/run", body=b"not json")
        response = conn.getresponse()
        assert response.status == 400
        conn.close()

    def test_unknown_route_404_wrong_method_405(self, frontend):
        assert _http(frontend.port, "GET", "/nope")[0] == 404
        assert _http(frontend.port, "GET", "/run")[0] == 405

    def test_sweep_streams_ndjson_in_completion_order(self, frontend):
        requests = [small_request(seed=seed).to_dict() for seed in (7, 8)]
        status, body, headers = _http(frontend.port, "POST", "/sweep",
                                      {"requests": requests})
        assert status == 200
        assert headers["Content-Type"].startswith("application/x-ndjson")
        lines = [json.loads(line)
                 for line in body.decode("utf-8").strip().splitlines()]
        summary = lines[-1]
        assert summary == {"event": "done", "total": 2, "cached": 0,
                           "executed": 2}
        outcomes = {entry["index"]: entry["outcome"] for entry in lines[:-1]}
        assert outcomes[0] == execute(small_request(seed=7)).outcome_dict()
        assert outcomes[1] == execute(small_request(seed=8)).outcome_dict()

    def test_sweep_serves_known_entries_from_cache(self, frontend):
        request = small_request(seed=9).to_dict()
        _http(frontend.port, "POST", "/run", request)
        status, body, _ = _http(frontend.port, "POST", "/sweep", [request])
        lines = [json.loads(line)
                 for line in body.decode("utf-8").strip().splitlines()]
        assert lines[0]["cached"] is True
        assert lines[-1]["cached"] == 1 and lines[-1]["executed"] == 0

    def test_sweep_rejecting_one_bad_request_names_its_index(self, frontend):
        requests = [small_request().to_dict(),
                    dict(small_request().to_dict(), protocol="quantum")]
        status, body, _ = _http(frontend.port, "POST", "/sweep",
                                {"requests": requests})
        assert status == 400
        assert json.loads(body)["error"].startswith("request 1:")

    def test_oversized_sweep_is_429_with_retry_after(self, frontend):
        # 9 uncached requests against a queue bound of 8: refused up front,
        # before anything is journaled or enqueued.
        requests = [small_request(seed=100 + i).to_dict() for i in range(9)]
        status, body, headers = _http(frontend.port, "POST", "/sweep",
                                      {"requests": requests})
        assert status == 429
        assert int(headers["Retry-After"]) >= 1
        assert "queue" in json.loads(body)["error"]
        snap_status, snap_body, _ = _http(frontend.port, "GET",
                                          "/metrics?format=json")
        assert json.loads(snap_body)["backpressure_rejects_total"] == 1

    def test_metrics_text_and_json_agree(self, frontend):
        _http(frontend.port, "POST", "/run", small_request().to_dict())
        status, body, _ = _http(frontend.port, "GET", "/metrics?format=json")
        snap = json.loads(body)
        assert snap["executions_total"] == 1
        assert snap["queue_capacity"] == 8
        assert "cache" in snap and "engine_latency" in snap
        status, text, headers = _http(frontend.port, "GET", "/metrics")
        assert headers["Content-Type"].startswith("text/plain")
        assert "repro_serve_executions_total 1" in text.decode("utf-8")

    def test_shutdown_drains_and_flips_readyz(self, tmp_path):
        service = AgreementService(
            journal=ServeJournal(str(tmp_path / "serve.jsonl")))
        frontend = HttpFrontend(service, port=0, max_queue=4,
                                drain_deadline=5.0)
        thread = threading.Thread(target=frontend.run, daemon=True)
        thread.start()
        assert frontend.ready.wait(15)
        _http(frontend.port, "POST", "/run", small_request().to_dict())
        frontend.stop()
        thread.join(20)
        assert not thread.is_alive()
        # A clean shutdown compacted the journal: one completed line.
        replay = ServeJournal(str(tmp_path / "serve.jsonl")).replay()
        assert replay.summary() == {"completed": 1, "pending": 0,
                                    "duplicates": 0, "torn_tail": False}


class TestHttpRecovery:
    def test_restart_on_the_same_journal_serves_cache_hits(self, tmp_path):
        journal_path = str(tmp_path / "serve.jsonl")
        cache_dir = str(tmp_path / "cache")
        payload = small_request().to_dict()

        def boot():
            service = AgreementService(cache=ResultCache(cache_dir),
                                       journal=ServeJournal(journal_path))
            frontend = HttpFrontend(service, port=0, max_queue=8,
                                    drain_deadline=5.0)
            thread = threading.Thread(target=frontend.run, daemon=True)
            thread.start()
            assert frontend.ready.wait(15), frontend._run_error
            return frontend, thread

        frontend, thread = boot()
        status, body, _ = _http(frontend.port, "POST", "/run", payload)
        first = json.loads(body)
        frontend.stop()
        thread.join(20)

        frontend, thread = boot()
        status, body, _ = _http(frontend.port, "POST", "/run", payload)
        second = json.loads(body)
        frontend.stop()
        thread.join(20)
        assert second["cached"] and second["outcome"] == first["outcome"]

    def test_pending_journal_work_executes_on_boot(self, tmp_path):
        journal_path = str(tmp_path / "serve.jsonl")
        request = small_request()
        journal = ServeJournal(journal_path)
        journal.open()
        journal.accepted(request_digest(request), request)
        journal.close()

        service = AgreementService(journal=ServeJournal(journal_path))
        frontend = HttpFrontend(service, port=0, max_queue=8,
                                drain_deadline=10.0)
        thread = threading.Thread(target=frontend.run, daemon=True)
        thread.start()
        assert frontend.ready.wait(15), frontend._run_error
        # The recovered job runs on the worker pool; once it completes, the
        # same request over HTTP is a pure cache hit.
        deadline = 30.0
        import time
        end = time.monotonic() + deadline
        result = None
        while time.monotonic() < end:
            status, body, _ = _http(frontend.port, "POST", "/run",
                                    request.to_dict())
            result = json.loads(body)
            if result.get("cached"):
                break
            time.sleep(0.1)
        frontend.stop()
        thread.join(20)
        assert result is not None
        assert result["outcome"] == execute(request).outcome_dict()
        replay = ServeJournal(journal_path).replay()
        assert replay.summary()["pending"] == 0
