"""Tests for the adversary strategies and the shadow machinery."""

import pytest

from repro.adversary import (AdversaryContext, BenignAdversary, CrashAdversary,
                             ConsistentLiarAdversary, EchoSuppressorAdversary,
                             RandomLiarAdversary, SilentAdversary,
                             StaggeredCrashAdversary, StealthPathAdversary,
                             TwoFacedAdversary, TwoFacedSourceAdversary,
                             adversary_registry, another_value,
                             standard_adversaries)
from repro.core.exponential import ExponentialSpec
from repro.core.protocol import ProtocolConfig
from repro.runtime.errors import AdversaryError, SimulationError


def bind(adversary, n=7, t=2, faulty=(5, 6), seed=0):
    config = ProtocolConfig(n=n, t=t, initial_value=1)
    context = AdversaryContext(config=config, spec=ExponentialSpec(),
                               faulty=frozenset(faulty), seed=seed)
    adversary.bind(context)
    return adversary, config


class TestContext:
    def test_correct_set_is_complement(self):
        adversary, config = bind(BenignAdversary())
        assert adversary.context.correct == frozenset(range(5))

    def test_source_is_faulty_flag(self):
        adversary, _ = bind(BenignAdversary(), faulty=(0, 6))
        assert adversary.context.source_is_faulty

    def test_unbound_adversary_rejected(self):
        with pytest.raises(AdversaryError):
            BenignAdversary().round_messages(1, {})

    def test_rebinding_a_bound_adversary_raises(self):
        """Stale-context reuse must fail loudly, not silently rebind.

        Shadow machines, rng position, and cached node-id tables all belong
        to one execution; a second bind() would leak them into the next run.
        """
        adversary, config = bind(BenignAdversary())
        stale_context = adversary.context
        with pytest.raises(SimulationError):
            adversary.bind(AdversaryContext(config=config,
                                            spec=ExponentialSpec(),
                                            faulty=frozenset({1, 2}),
                                            seed=5))
        # The original binding is untouched by the failed rebind.
        assert adversary.context is stale_context

    def test_fresh_instances_bind_independently(self):
        bind(BenignAdversary())
        bind(BenignAdversary(), faulty=(1, 2))


class TestShadowMechanics:
    def test_benign_round_one_only_source_speaks(self):
        adversary, _ = bind(BenignAdversary(), faulty=(0, 6))
        messages = adversary.round_messages(1, {})
        assert len(messages[0]) == 6          # the faulty source still broadcasts
        assert messages[6] == {}

    def test_benign_faulty_relay_mirrors_correct_protocol(self):
        adversary, _ = bind(BenignAdversary(), faulty=(5, 6))
        assert adversary.round_messages(1, {}) == {5: {}, 6: {}}

    def test_silent_adversary_sends_nothing_to_correct_processors(self):
        adversary, _ = bind(SilentAdversary(), faulty=(0, 6))
        messages = adversary.round_messages(1, {})
        # Traffic between faulty processors is internal to the adversary; what
        # matters is that no correct processor receives anything.
        correct = adversary.context.correct
        assert all(dest not in correct for dest in messages[0])
        assert all(dest not in correct for dest in messages[6])

    def test_observe_delivery_feeds_shadows(self):
        adversary, config = bind(BenignAdversary(), faulty=(5, 6))
        adversary.round_messages(1, {})
        from repro.runtime.messages import Message
        adversary.observe_delivery(1, {5: {0: Message({(0,): 1}, 0, 1)},
                                       6: {0: Message({(0,): 1}, 0, 1)}})
        outbox = adversary.round_messages(2, {})
        # After hearing the source, the benign shadows relay its value.
        assert outbox[5][1].value_for((0,)) == 1


class TestCrashFamilies:
    def test_crash_round_schedule(self):
        adversary, _ = bind(CrashAdversary(crash_round={5: 2, 6: 3}), faulty=(5, 6))
        assert adversary.crash_round_of(5) == 2
        assert adversary.crash_round_of(6) == 3

    def test_suppression_before_and_after_crash(self):
        adversary, _ = bind(CrashAdversary(crash_round=2, partial_deliveries=1),
                            faulty=(5, 6))
        assert not adversary.suppress(1, 5, 1)
        assert adversary.suppress(3, 5, 1)
        # crash round: only the first correct destination still gets the message
        assert not adversary.suppress(2, 5, 0)
        assert adversary.suppress(2, 5, 4)

    def test_staggered_crash_spreads_rounds(self):
        adversary, _ = bind(StaggeredCrashAdversary(), faulty=(4, 5, 6), t=3, n=10)
        rounds = {adversary.crash_round_of(pid) for pid in (4, 5, 6)}
        assert len(rounds) == 3


class TestLiars:
    def test_another_value_differs(self):
        assert another_value(0, (0, 1)) == 1
        assert another_value(1, (0, 1)) == 0
        assert another_value(0, (0, 1, 2)) == 1  # first differing element

    def test_another_value_raises_on_degenerate_domain(self):
        # A single-element domain admits no lie; silently returning the
        # original value would make every lying adversary benign, so the
        # helper raises instead (ProtocolConfig requires |V| >= 2, making
        # this unreachable from simulations).
        with pytest.raises(ValueError):
            another_value(2, (2,))
        with pytest.raises(ValueError):
            another_value(0, ())

    def test_slot_wise_rewrite_mirrors_another_value_contract(self):
        # The LevelMessage fast path applies another_value through
        # map_values; the degenerate-domain raise must propagate identically.
        from repro.core.sequences import sequence_index
        from repro.runtime.messages import LevelMessage
        index = sequence_index(0, tuple(range(4)))
        message = LevelMessage(index, 1, [7], sender=0, round_number=1)
        flipped = message.map_values(lambda v: another_value(v, (7, 8)))
        assert flipped.level_values() == [8]
        with pytest.raises(ValueError):
            message.map_values(lambda v: another_value(v, (7,)))

    def test_consistent_liar_flips_everything(self):
        adversary, _ = bind(ConsistentLiarAdversary(), faulty=(0, 6))
        messages = adversary.round_messages(1, {})
        correct = adversary.context.correct
        assert all(m.value_for((0,)) == 0 for dest, m in messages[0].items()
                   if dest in correct)

    def test_two_faced_depends_on_destination_parity(self):
        adversary, _ = bind(TwoFacedAdversary(), faulty=(0, 6))
        messages = adversary.round_messages(1, {})
        assert messages[0][2].value_for((0,)) == 1
        assert messages[0][1].value_for((0,)) == 0

    def test_two_faced_source_only_tampers_the_source_round_one(self):
        adversary, _ = bind(TwoFacedSourceAdversary(), faulty=(0, 6))
        messages = adversary.round_messages(1, {})
        assert messages[0][1].value_for((0,)) == 0
        assert messages[0][2].value_for((0,)) == 1

    def test_echo_suppressor_zeroes_values(self):
        adversary, _ = bind(EchoSuppressorAdversary(), faulty=(0, 6))
        messages = adversary.round_messages(1, {})
        correct = adversary.context.correct
        assert all(m.value_for((0,)) == 0 for dest, m in messages[0].items()
                   if dest in correct)

    def test_random_liar_stays_in_domain(self):
        adversary, config = bind(RandomLiarAdversary(), faulty=(0, 6))
        messages = adversary.round_messages(1, {})
        assert all(m.value_for((0,)) in config.domain
                   for m in messages[0].values())

    def test_stealth_only_lies_on_all_faulty_paths(self):
        adversary, _ = bind(StealthPathAdversary(), faulty=(0, 6))
        messages = adversary.round_messages(1, {})
        # The sequence (0,) consists solely of the faulty source, so odd
        # destinations see the flipped value while even ones see the truth.
        assert messages[0][1].value_for((0,)) == 0
        assert messages[0][2].value_for((0,)) == 1


class TestRegistry:
    def test_registry_builds_every_strategy(self):
        registry = adversary_registry()
        assert len(registry) >= 12
        for factory in registry.values():
            assert factory() is not None

    def test_standard_adversaries_are_fresh_instances(self):
        first = standard_adversaries()
        second = standard_adversaries()
        assert all(a is not b for a, b in zip(first, second))
