"""Unit tests for the Fault Discovery Rules and the FaultTracker."""

import pytest

from repro.core.fault_discovery import (FaultTracker, discover_at_level,
                                        discover_during_conversion,
                                        majority_among_children,
                                        node_triggers_discovery)
from repro.core.resolve import resolve_all
from repro.core.tree import InfoGatheringTree


def two_level_tree(n, child_value):
    tree = InfoGatheringTree(source=0, processors=range(n))
    tree.set_root(0)
    tree.grow_level(2, child_value)
    return tree


class TestMajorityAmongChildren:
    def test_majority_present(self):
        value, counter = majority_among_children([1, 1, 1, 0])
        assert value == 1
        assert counter[1] == 3

    def test_no_majority(self):
        value, _ = majority_among_children([1, 1, 0, 0])
        assert value is None

    def test_empty(self):
        value, _ = majority_among_children([])
        assert value is None


class TestNodeTriggersDiscovery:
    def test_no_majority_triggers(self):
        child_values = {1: 0, 2: 1, 3: 0, 4: 1}
        assert node_triggers_discovery(child_values, suspects=set(), t=2)

    def test_small_deviation_does_not_trigger(self):
        child_values = {1: 1, 2: 1, 3: 1, 4: 1, 5: 0, 6: 0}
        assert not node_triggers_discovery(child_values, suspects=set(), t=2)

    def test_deviation_beyond_budget_triggers(self):
        child_values = {1: 1, 2: 1, 3: 1, 4: 1, 5: 0, 6: 0, 7: 0}
        assert node_triggers_discovery(child_values, suspects=set(), t=2)

    def test_suspect_deviations_are_not_counted(self):
        # Three deviating children but two of them are already suspects, and the
        # budget shrinks to t − |L| = 1, so exactly one unlisted deviation: no trigger.
        child_values = {1: 1, 2: 1, 3: 1, 4: 1, 5: 0, 6: 0, 7: 0}
        assert not node_triggers_discovery(child_values, suspects={5, 6}, t=3)

    def test_budget_shrinks_with_suspects(self):
        child_values = {1: 1, 2: 1, 3: 1, 4: 1, 5: 0}
        # budget t − |L| = 2 − 2 = 0, one unlisted deviation → trigger.
        assert node_triggers_discovery(child_values, suspects={8, 9}, t=2)


class TestDiscoverAtLevel:
    def test_consistent_children_discover_nothing(self):
        tree = two_level_tree(7, lambda parent, child: 1)
        assert discover_at_level(tree, 2, suspects=set(), t=2) == set()

    def test_split_children_discover_the_parent(self):
        # The root's corresponding processor is the source (0): an even split
        # among its children has no majority → the source is discovered.
        tree = two_level_tree(7, lambda parent, child: child % 2)
        assert discover_at_level(tree, 2, suspects=set(), t=2) == {0}

    def test_level_one_discovers_nothing(self):
        tree = InfoGatheringTree(source=0, processors=range(5))
        tree.set_root(1)
        assert discover_at_level(tree, 1, suspects=set(), t=1) == set()

    def test_already_suspected_parent_not_rediscovered(self):
        tree = two_level_tree(7, lambda parent, child: child % 2)
        assert discover_at_level(tree, 2, suspects={0}, t=2) == set()

    def test_discovery_at_third_level_names_last_label(self):
        tree = InfoGatheringTree(source=0, processors=range(7))
        tree.set_root(1)
        tree.grow_level(2, lambda parent, child: 1)
        # Children of node (0, 3) disagree wildly (no majority value at all);
        # every other node is unanimous.
        def leaf(parent, child):
            if parent == (0, 3):
                return child
            return 1
        tree.grow_level(3, leaf)
        assert discover_at_level(tree, 3, suspects=set(), t=2) == {3}


class TestDiscoverDuringConversion:
    def test_consistent_tree_discovers_nothing(self):
        tree = InfoGatheringTree(source=0, processors=range(7))
        tree.set_root(1)
        tree.grow_level(2, lambda parent, child: 1)
        tree.grow_level(3, lambda parent, child: 1)
        converted = resolve_all(tree, "resolve_prime", t=2)
        assert discover_during_conversion(tree, converted, set(), t=2) == set()

    def test_split_converted_children_discover_parent(self):
        tree = InfoGatheringTree(source=0, processors=range(7))
        tree.set_root(1)
        tree.grow_level(2, lambda parent, child: 1)

        def leaf(parent, child):
            if parent == (0, 5):
                return child
            return 1

        tree.grow_level(3, leaf)
        converted = resolve_all(tree, "resolve_prime", t=2)
        discovered = discover_during_conversion(tree, converted, set(), t=2)
        assert 5 in discovered


class TestFaultTracker:
    def test_add_and_membership(self):
        tracker = FaultTracker(owner=1, t=3)
        assert tracker.add(5, round_number=2)
        assert 5 in tracker
        assert len(tracker) == 1

    def test_add_is_idempotent(self):
        tracker = FaultTracker(owner=1, t=3)
        tracker.add(5, 2)
        assert not tracker.add(5, 4)
        assert tracker.discovery_round(5) == 2

    def test_add_all_returns_only_new(self):
        tracker = FaultTracker(owner=1, t=3)
        tracker.add(5, 2)
        added = tracker.add_all([5, 6, 7], 3)
        assert added == [6, 7]

    def test_discovered_by_round(self):
        tracker = FaultTracker(owner=1, t=3)
        tracker.add(5, 2)
        tracker.add(6, 4)
        assert tracker.discovered_by_round(3) == {5}
        assert tracker.discovered_by_round(4) == {5, 6}

    def test_history_and_suspects_are_copies(self):
        tracker = FaultTracker(owner=1, t=3)
        tracker.add(5, 2)
        suspects = tracker.suspects
        suspects.add(99)
        assert 99 not in tracker
        history = tracker.history()
        history[42] = 1
        assert 42 not in tracker
