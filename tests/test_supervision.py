"""Unit tests for the supervision layer (repro.runtime.supervision).

The supervisor's contract: a supervised run is a **pure function** of
``(request, seed)`` — backoff delays come from a cryptographic hash, never
wall clock or a shared RNG — each ladder rung gets a bounded retry budget
before the ladder downgrades, and every recovery step is recorded as a
structured audit event.  An undisturbed run carries no trail at all.
"""

import pytest

from repro.api import (RegistryError, RunRequest, build_executor, execute,
                       execute_resilient, executor_registry)
from repro.api.executors import SupervisedExecutor
from repro.runtime.errors import (ConfigurationError, FabricError,
                                  SupervisionExhaustedError, WorkerDiedError)
from repro.runtime.supervision import (DEFAULT_LADDER, RetryPolicy,
                                       RungUnavailable, Supervisor,
                                       backoff_fraction, checkpoint_retry_event,
                                       completed_event, downgrade_event,
                                       pool_retry_record, retry_event,
                                       skip_event)


def small_request(**overrides):
    fields = dict(protocol="exponential", n=7, t=2, initial_value=1,
                  faulty=(1, 2), adversary="two-faced", seed=11)
    fields.update(overrides)
    return RunRequest(**fields)


class TestBackoff:
    def test_fraction_is_deterministic_and_bounded(self):
        for key in ("", "a", "42:3:sharded"):
            for attempt in range(1, 5):
                value = backoff_fraction(key, attempt)
                assert value == backoff_fraction(key, attempt)
                assert 0.0 <= value < 1.0

    def test_fraction_varies_with_key_and_attempt(self):
        values = {backoff_fraction(key, attempt)
                  for key in ("a", "b") for attempt in (1, 2, 3)}
        assert len(values) == 6

    def test_delay_is_pure_and_grows_exponentially(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.1,
                             backoff_factor=2.0, max_delay=100.0, jitter=0.0)
        assert policy.delay("k", 1) == pytest.approx(0.1)
        assert policy.delay("k", 2) == pytest.approx(0.2)
        assert policy.delay("k", 3) == pytest.approx(0.4)
        assert policy.delay("k", 3) == policy.delay("k", 3)

    def test_delay_caps_at_max_delay(self):
        policy = RetryPolicy(base_delay=1.0, backoff_factor=10.0,
                             max_delay=2.0, jitter=0.0)
        assert policy.delay("k", 3) == pytest.approx(2.0)

    def test_jitter_stretches_at_most_the_jitter_fraction(self):
        policy = RetryPolicy(base_delay=1.0, backoff_factor=1.0, jitter=0.25)
        delay = policy.delay("k", 1)
        assert 1.0 <= delay <= 1.25

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one attempt"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="negative"):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError, match="1-based"):
            RetryPolicy().delay("k", 0)


class TestEventVocabulary:
    def test_retry_event_shape(self):
        event = retry_event("sharded", 1, WorkerDiedError("pipe gone"), 0.05)
        assert event == {"event": "retry", "stage": "sharded", "attempt": 1,
                        "delay": 0.05, "error": "WorkerDiedError",
                        "detail": "pipe gone"}

    def test_downgrade_skip_completed(self):
        down = downgrade_event("sharded", "batched", OSError("enospc"))
        assert (down["event"], down["from"], down["to"]) == (
            "downgrade", "sharded", "batched")
        assert skip_event("sharded", "no numpy") == {
            "event": "skip", "stage": "sharded", "reason": "no numpy"}
        assert completed_event("pool", 2) == {
            "event": "completed", "stage": "pool", "attempt": 2}

    def test_pool_and_checkpoint_records_share_the_vocabulary(self):
        pool = pool_retry_record(2, OSError("x"), "serial")
        assert (pool["event"], pool["stage"], pool["fallback"]) == (
            "retry", "pool", "serial")
        ckpt = checkpoint_retry_event(1, OSError("x"), 0.01)
        assert (ckpt["event"], ckpt["stage"]) == ("retry", "checkpoint")

    def test_long_error_detail_is_truncated(self):
        event = retry_event("pool", 1, OSError("x" * 500), 0.0)
        assert len(event["detail"]) == 200


class TestSupervisor:
    def test_first_rung_success_has_empty_trail(self):
        result, trail = Supervisor([("only", lambda: 42)]).run()
        assert result == 42
        assert trail == []

    def test_retry_then_success_is_audited(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise WorkerDiedError("boom")
            return "ok"

        slept = []
        supervisor = Supervisor([("stage", flaky)],
                                retry=RetryPolicy(max_attempts=3,
                                                  base_delay=0.01),
                                key="k", sleep=slept.append)
        result, trail = supervisor.run()
        assert result == "ok"
        events = [e["event"] for e in trail]
        assert events == ["retry", "retry", "completed"]
        assert trail[-1]["attempt"] == 3
        # The sleeps are exactly the policy's deterministic delays.
        policy = RetryPolicy(max_attempts=3, base_delay=0.01)
        assert slept == [policy.delay("k:stage", 1), policy.delay("k:stage", 2)]

    def test_exhausted_rung_downgrades_to_the_next(self):
        def dead():
            raise WorkerDiedError("always")

        result, trail = Supervisor(
            [("sharded", dead), ("serial", lambda: "fallback")],
            retry=RetryPolicy(max_attempts=2, base_delay=0.0),
            sleep=lambda _: None).run()
        assert result == "fallback"
        events = [(e["event"], e.get("stage", e.get("from"))) for e in trail]
        assert events == [("retry", "sharded"), ("downgrade", "sharded"),
                          ("completed", "serial")]
        assert trail[1]["to"] == "serial"

    def test_unavailable_rung_is_skipped_without_retries(self):
        calls = []

        def unavailable():
            calls.append(1)
            raise RungUnavailable("not batched-eligible")

        result, trail = Supervisor(
            [("sharded", unavailable), ("serial", lambda: "ok")],
            sleep=lambda _: None).run()
        assert result == "ok"
        assert len(calls) == 1  # skips never burn the retry budget
        # A skip alone is an environment property, not a recovery: the run
        # is undisturbed and reports no trail (numpy-less environments stay
        # metadata-free).
        assert trail == []

    def test_skips_are_preserved_when_a_recovery_also_happened(self):
        attempts = []

        def unavailable():
            raise RungUnavailable("no numpy")

        def flaky():
            attempts.append(1)
            if len(attempts) < 2:
                raise WorkerDiedError("boom")
            return "ok"

        result, trail = Supervisor(
            [("sharded", unavailable), ("batched", flaky)],
            retry=RetryPolicy(max_attempts=2, base_delay=0.0),
            sleep=lambda _: None).run()
        assert result == "ok"
        assert [e["event"] for e in trail] == ["skip", "retry", "completed"]
        assert trail[0] == {"event": "skip", "stage": "sharded",
                            "reason": "no numpy"}

    def test_unrecoverable_error_propagates_immediately(self):
        def broken_config():
            raise ConfigurationError("bad request")

        with pytest.raises(ConfigurationError, match="bad request"):
            Supervisor([("a", broken_config), ("b", lambda: "never")],
                       sleep=lambda _: None).run()

    def test_every_rung_failing_raises_the_named_exhaustion_error(self):
        def dead():
            raise WorkerDiedError("gone")

        supervisor = Supervisor([("a", dead), ("b", dead)],
                                retry=RetryPolicy(max_attempts=1),
                                sleep=lambda _: None)
        with pytest.raises(SupervisionExhaustedError, match="every rung"):
            supervisor.run()
        try:
            supervisor.run()
        except SupervisionExhaustedError as exc:
            assert isinstance(exc, FabricError)
            assert isinstance(exc.__cause__, WorkerDiedError)

    def test_needs_at_least_one_rung(self):
        with pytest.raises(ValueError, match="at least one rung"):
            Supervisor([])

    def test_every_rung_unavailable_exhausts_without_hanging(self):
        """All-skip ladders terminate with the named error, never a hang."""
        calls = []

        def unavailable(stage):
            def thunk():
                calls.append(stage)
                raise RungUnavailable(f"{stage} does not apply")
            return thunk

        slept = []
        supervisor = Supervisor(
            [("sharded", unavailable("sharded")),
             ("batched", unavailable("batched"))],
            retry=RetryPolicy(max_attempts=3, base_delay=1.0),
            sleep=slept.append)
        with pytest.raises(SupervisionExhaustedError, match="every rung"):
            supervisor.run()
        # Each unavailable rung is probed exactly once: skips never burn
        # the retry budget, so nothing backed off and nothing slept.
        assert calls == ["sharded", "batched"]
        assert slept == []

    def test_max_attempts_one_downgrades_after_a_single_failure(self):
        attempts = []

        def dead():
            attempts.append(1)
            raise WorkerDiedError("gone")

        slept = []
        result, trail = Supervisor(
            [("pool", dead), ("serial", lambda: "ok")],
            retry=RetryPolicy(max_attempts=1),
            sleep=slept.append).run()
        assert result == "ok"
        assert len(attempts) == 1
        assert slept == []  # one attempt per rung leaves no room to back off
        assert [e["event"] for e in trail] == ["downgrade", "completed"]

    def test_max_attempts_one_with_every_rung_dead_exhausts(self):
        def dead():
            raise WorkerDiedError("gone")

        supervisor = Supervisor([("pool", dead)],
                                retry=RetryPolicy(max_attempts=1),
                                sleep=lambda _: None)
        with pytest.raises(SupervisionExhaustedError):
            supervisor.run()

    def test_mixed_skip_and_failure_ladder_exhausts_with_both_audited(self):
        def unavailable():
            raise RungUnavailable("no numpy")

        def dead():
            raise WorkerDiedError("gone")

        supervisor = Supervisor([("sharded", unavailable), ("pool", dead)],
                                retry=RetryPolicy(max_attempts=1),
                                sleep=lambda _: None)
        try:
            supervisor.run()
        except SupervisionExhaustedError as exc:
            assert "sharded" in str(exc) and "pool" in str(exc)
        else:  # pragma: no cover - the raise is the point
            raise AssertionError("expected SupervisionExhaustedError")


class TestSupervisedExecutor:
    def test_registered_with_schema(self):
        entry = executor_registry()["supervised"]
        assert {"ladder", "max_attempts", "base_delay", "deadline",
                "shards", "chaos"} <= set(entry.schema)

    def test_build_by_name_promotes_integral_floats(self):
        # JSON has one number type: deadline=5 (an int literal) must build.
        executor = build_executor("supervised", {"deadline": 5,
                                                 "max_attempts": 2})
        assert isinstance(executor, SupervisedExecutor)
        assert executor.deadline == 5.0
        assert executor.retry.max_attempts == 2

    def test_rejects_unknown_ladder_rungs(self):
        with pytest.raises(ConfigurationError, match="unknown ladder rung"):
            SupervisedExecutor(ladder=["sharded", "gpu"])
        with pytest.raises(ConfigurationError, match="at least one rung"):
            SupervisedExecutor(ladder=[])

    def test_rejects_bad_deadline_and_shards(self):
        with pytest.raises(ConfigurationError, match="positive seconds"):
            SupervisedExecutor(deadline=0.0)
        with pytest.raises(ConfigurationError, match="at least one shard"):
            SupervisedExecutor(shards=0)

    def test_empty_ladder_rejected_whatever_the_retry_budget(self):
        # max_attempts=1 must not sneak an empty ladder past validation:
        # the ladder check runs first and wins.
        with pytest.raises(ConfigurationError, match="at least one rung"):
            SupervisedExecutor(ladder=[], max_attempts=1)

    def test_deadline_zero_rejected_through_the_registry_too(self):
        with pytest.raises((RegistryError, ConfigurationError),
                           match="positive seconds"):
            build_executor("supervised", {"deadline": 0})

    def test_default_ladder(self):
        assert SupervisedExecutor().ladder == DEFAULT_LADDER
        assert DEFAULT_LADDER == ("sharded", "batched", "pool", "serial")

    def test_undisturbed_run_matches_execute_with_no_metadata(self):
        request = small_request()
        baseline = execute(request)
        supervised = execute_resilient(request, deadline=30.0)
        assert supervised.metadata == {}
        assert supervised.outcome_dict() == baseline.outcome_dict()

    def test_serial_only_ladder_matches_execute(self):
        request = small_request()
        baseline = execute(request)
        supervised = execute_resilient(request, ladder=["serial"])
        assert supervised.outcome_dict() == baseline.outcome_dict()

    def test_outcome_dict_drops_only_execution_side_fields(self):
        report = execute(small_request())
        outcome = report.outcome_dict()
        full = report.to_dict()
        assert "engine" not in outcome
        assert "engine_resolved" not in outcome
        assert "metadata" not in outcome
        for key, value in outcome.items():
            assert full[key] == value
        assert set(full) - set(outcome) <= {"engine", "engine_resolved",
                                            "metadata"}
