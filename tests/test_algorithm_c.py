"""Tests for Algorithm C (Theorem 4): resilience, structure, and agreement."""

import pytest

from tests.helpers import assert_battery_correct, run_battery

from repro.core.algorithm_c import (AlgorithmCProcessor, AlgorithmCSpec,
                                    algorithm_c_max_message_entries,
                                    algorithm_c_resilience, algorithm_c_rounds)
from repro.core.fault_discovery import FaultTracker
from repro.core.protocol import ProtocolConfig
from repro.runtime.errors import ConfigurationError
from repro.runtime.messages import Message


class TestResilience:
    def test_resilience_grows_like_sqrt_n_over_2(self):
        assert algorithm_c_resilience(14) == 2
        assert algorithm_c_resilience(20) == 3
        assert algorithm_c_resilience(32) == 4
        assert algorithm_c_resilience(50) == 5

    def test_resilience_is_monotone_in_n(self):
        values = [algorithm_c_resilience(n) for n in range(8, 80)]
        assert all(later >= earlier for earlier, later in zip(values, values[1:]))

    def test_resilience_satisfies_proof_conditions(self):
        for n in range(10, 120, 7):
            t = algorithm_c_resilience(n)
            if t < 1:
                continue
            assert (n - t - (t - 1) ** 2) * 2 > n
            assert (n - 2 * t) * 2 > n

    def test_rounds_and_message_bounds(self):
        assert algorithm_c_rounds(3) == 4
        assert algorithm_c_max_message_entries(20) == 20


class TestSpec:
    def test_spec_rejects_too_many_faults(self):
        with pytest.raises(ConfigurationError):
            AlgorithmCSpec().validate(ProtocolConfig(n=20, t=4))

    def test_spec_total_rounds(self):
        assert AlgorithmCSpec().total_rounds(ProtocolConfig(n=20, t=3)) == 4

    def test_processor_requires_two_rounds(self):
        config = ProtocolConfig(n=20, t=3)
        with pytest.raises(ConfigurationError):
            AlgorithmCProcessor(1, config, last_round=1)

    def test_embedded_start_requires_initial_root(self):
        config = ProtocolConfig(n=20, t=3)
        with pytest.raises(ConfigurationError):
            AlgorithmCProcessor(1, config, first_round=2, last_round=3)

    def test_invalid_first_round_rejected(self):
        config = ProtocolConfig(n=20, t=3)
        with pytest.raises(ConfigurationError):
            AlgorithmCProcessor(1, config, first_round=3)


class TestStructure:
    def test_round_three_messages_carry_n_entries(self):
        # t = 2 so that round 2 is not the final round (the final round's
        # conversion collapses the tree back to its root).
        config = ProtocolConfig(n=8, t=2, initial_value=1)
        processor = AlgorithmCProcessor(1, config)
        processor.outgoing(1)
        processor.incoming(1, {0: Message({(0,): 1}, 0, 1)})
        outbox = processor.outgoing(2)
        assert all(message.entry_count() == 1 for message in outbox.values())
        inbox = {pid: Message({(0,): 1}, pid, 2) for pid in range(2, 8)}
        processor.incoming(2, inbox)
        assert processor.tree.level_size(2) == 8

    def test_embedded_processor_starts_with_supplied_preference(self):
        config = ProtocolConfig(n=20, t=3, initial_value=1)
        tracker = FaultTracker(owner=1, t=3)
        tracker.add(19, 1)
        processor = AlgorithmCProcessor(1, config, first_round=2, last_round=3,
                                        initial_root=1, tracker=tracker)
        assert processor.tree.root_value() == 1
        assert 19 in processor.tracker

    def test_tree_never_exceeds_three_levels(self):
        config = ProtocolConfig(n=6, t=1, initial_value=1)
        processor = AlgorithmCProcessor(1, config)
        processor.outgoing(1)
        processor.incoming(1, {0: Message({(0,): 1}, 0, 1)})
        processor.outgoing(2)
        processor.incoming(2, {pid: Message({(0,): 1}, pid, 2)
                               for pid in range(2, 6)})
        assert processor.tree.num_levels <= 3


class TestAgreement:
    def test_standard_battery_n14_t2(self):
        assert_battery_correct(AlgorithmCSpec, n=14, t=2)

    def test_standard_battery_n20_t3(self):
        assert_battery_correct(AlgorithmCSpec, n=20, t=3)

    def test_initial_value_zero(self):
        assert_battery_correct(AlgorithmCSpec, n=14, t=2, initial_value=0)

    def test_round_and_message_bounds_hold(self):
        for scenario, result in run_battery(AlgorithmCSpec, n=20, t=3):
            assert result.rounds == algorithm_c_rounds(3)
            assert (result.metrics.max_message_entries()
                    <= algorithm_c_max_message_entries(20))

    def test_single_fault_battery(self):
        assert_battery_correct(AlgorithmCSpec, n=10, t=1)
