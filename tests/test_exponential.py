"""Tests for the Exponential Algorithm (Section 3): agreement, validity,
round/message bounds, and the lemma-level properties its proof rests on."""

import pytest

from tests.helpers import assert_battery_correct, run_battery

from repro.adversary import (BenignAdversary, EquivocatingSourceWithAlliesAdversary,
                             SilentAdversary, StealthPathAdversary,
                             TwoFacedSourceAdversary)
from repro.core.exponential import (ExponentialSpec, exponential_max_message_entries,
                                    exponential_resilience, exponential_rounds,
                                    exponential_schedule)
from repro.core.protocol import ProtocolConfig
from repro.core.shifting import ShiftingEIGProcessor
from repro.experiments.workloads import standard_scenarios
from repro.runtime.simulation import choose_faulty, run_agreement


class TestBounds:
    def test_resilience_formula(self):
        assert exponential_resilience(4) == 1
        assert exponential_resilience(7) == 2
        assert exponential_resilience(10) == 3

    def test_rounds_formula(self):
        assert exponential_rounds(1) == 2
        assert exponential_rounds(3) == 4

    def test_max_message_entries_growth(self):
        assert exponential_max_message_entries(7, 1) == 1
        assert exponential_max_message_entries(7, 2) == 6
        assert exponential_max_message_entries(7, 3) == 30

    def test_schedule_is_one_segment(self):
        schedule = exponential_schedule(3)
        assert schedule.total_rounds == 4
        assert len(schedule.segments) == 1


class TestAgreementBattery:
    def test_n7_t2_standard_battery(self):
        assert_battery_correct(ExponentialSpec, n=7, t=2) >= 10

    def test_n4_t1_standard_battery(self):
        assert_battery_correct(ExponentialSpec, n=4, t=1)

    def test_resolve_prime_variant_battery(self):
        assert_battery_correct(lambda: ExponentialSpec("resolve_prime"), n=7, t=2)

    def test_initial_value_zero(self):
        assert_battery_correct(ExponentialSpec, n=7, t=2, initial_value=0)

    def test_rounds_match_theorem(self):
        for scenario, result in run_battery(ExponentialSpec, n=7, t=2):
            assert result.rounds == exponential_rounds(2)

    def test_message_bound_matches_theorem(self):
        for scenario, result in run_battery(ExponentialSpec, n=7, t=2):
            assert (result.metrics.max_message_entries()
                    <= exponential_max_message_entries(7, 2))


class TestValidityFastPath:
    def test_correct_source_decides_in_round_one(self):
        config = ProtocolConfig(n=7, t=2, initial_value=1)
        result = run_agreement(ExponentialSpec(), config,
                               faulty=choose_faulty(7, 2),
                               adversary=StealthPathAdversary())
        assert result.decisions[0] == 1

    def test_silent_source_yields_default(self):
        config = ProtocolConfig(n=7, t=2, initial_value=1)
        result = run_agreement(ExponentialSpec(), config,
                               faulty=choose_faulty(7, 2, source_faulty=True),
                               adversary=SilentAdversary())
        assert result.agreement
        assert result.decision_value == 0


class TestLemmaProperties:
    """Executable versions of the Correctness, Persistence and Hidden Fault
    properties, checked on the trees produced by real executions."""

    def _final_processors(self, adversary, faulty, n=7, t=2, initial_value=1):
        """Run one execution and return the correct processors' protocol objects."""
        config = ProtocolConfig(n=n, t=t, initial_value=initial_value)
        spec = ExponentialSpec()
        spec.validate(config)
        correct = [p for p in config.processors if p not in faulty]
        processors = {pid: spec.build(pid, config) for pid in correct}
        from repro.adversary.base import AdversaryContext
        from repro.runtime.metrics import RunMetrics
        from repro.runtime.network import SynchronousNetwork
        adversary.bind(AdversaryContext(config=config, spec=ExponentialSpec(),
                                        faulty=frozenset(faulty), seed=0))
        network = SynchronousNetwork(config.processors, RunMetrics())
        total = exponential_rounds(t)
        for round_number in range(1, total + 1):
            outboxes = {pid: processors[pid].outgoing(round_number)
                        for pid in correct}
            outboxes.update(adversary.round_messages(round_number, outboxes))
            inboxes = network.deliver(round_number, outboxes, count_senders=correct)
            for pid in correct:
                processors[pid].incoming(round_number, inboxes.get(pid, {}))
            adversary.observe_delivery(
                round_number, {pid: inboxes.get(pid, {}) for pid in faulty})
        return config, processors

    def test_no_correct_processor_is_ever_suspected(self):
        faulty = frozenset({5, 6})
        _, processors = self._final_processors(
            EquivocatingSourceWithAlliesAdversary(), faulty)
        for pid, proc in processors.items():
            if pid == 0:
                continue
            assert set(proc.discovered_faults()) <= faulty

    def test_agreement_on_decisions(self):
        faulty = frozenset({0, 6})
        _, processors = self._final_processors(TwoFacedSourceAdversary(), faulty)
        decisions = {proc.decision() for pid, proc in processors.items()}
        assert len(decisions) == 1

    def test_benign_execution_discovers_nothing(self):
        faulty = frozenset({5, 6})
        _, processors = self._final_processors(BenignAdversary(), faulty)
        for pid, proc in processors.items():
            if pid == 0:
                continue
            assert proc.discovered_faults() == ()

    def test_preferred_value_equals_decision_after_last_round(self):
        faulty = frozenset({5, 6})
        _, processors = self._final_processors(TwoFacedSourceAdversary(), faulty)
        for pid, proc in processors.items():
            if pid == 0:
                continue
            assert proc.preferred_value() == proc.decision()


class TestSourceBehaviour:
    def test_source_sends_only_in_round_one(self):
        config = ProtocolConfig(n=7, t=2, initial_value=1)
        source = ShiftingEIGProcessor(0, config, exponential_schedule(2))
        assert len(source.outgoing(1)) == 6
        source.incoming(1, {})
        assert source.outgoing(2) == {}
        assert source.decision() == 1

    def test_non_source_sends_nothing_in_round_one(self):
        config = ProtocolConfig(n=7, t=2, initial_value=1)
        processor = ShiftingEIGProcessor(3, config, exponential_schedule(2))
        assert processor.outgoing(1) == {}

    def test_round_two_message_is_single_entry(self):
        config = ProtocolConfig(n=7, t=2, initial_value=1)
        from repro.runtime.messages import Message
        processor = ShiftingEIGProcessor(3, config, exponential_schedule(2))
        processor.outgoing(1)
        processor.incoming(1, {0: Message({(0,): 1}, 0, 1)})
        outbox = processor.outgoing(2)
        assert all(message.entry_count() == 1 for message in outbox.values())
