"""Shared helpers for protocol-level tests (importable as ``tests.helpers``)."""

from __future__ import annotations

from repro.core.protocol import ProtocolConfig
from repro.experiments.workloads import standard_scenarios
from repro.runtime.simulation import run_agreement


def run_battery(spec_factory, n: int, t: int, initial_value=1, scenarios=None):
    """Run a protocol under the standard scenario battery and yield results.

    ``spec_factory`` is called once per scenario so protocols with per-run
    state on the spec (e.g. Dolev–Strong's signature ledger) stay isolated.
    """
    config = ProtocolConfig(n=n, t=t, initial_value=initial_value)
    scenario_list = scenarios if scenarios is not None else standard_scenarios(n, t)
    for scenario in scenario_list:
        result = run_agreement(spec_factory(), config, scenario.faulty,
                               scenario.adversary())
        yield scenario, result


def assert_battery_correct(spec_factory, n: int, t: int, initial_value=1,
                           scenarios=None) -> int:
    """Assert agreement + validity + discovery soundness for every scenario.

    Returns the number of scenarios exercised so callers can sanity-check the
    battery was not empty.
    """
    count = 0
    for scenario, result in run_battery(spec_factory, n, t, initial_value,
                                        scenarios):
        assert result.agreement, (
            f"agreement violated under {scenario.name}: {result.decisions}")
        if result.validity is not None:
            assert result.validity, (
                f"validity violated under {scenario.name}: {result.decisions}")
        assert result.soundness_of_discovery(), (
            f"a correct processor was incriminated under {scenario.name}")
        count += 1
    assert count > 0
    return count
