"""The paper's lemmas, checked on trees produced by real adversarial executions."""

import pytest

from repro.adversary import (AdversaryContext, EquivocatingSourceWithAlliesAdversary,
                             StealthPathAdversary, TwoFacedSourceAdversary)
from repro.analysis.lemmas import (common_nodes, correctness_lemma_holds,
                                   frontier_lemma_holds, has_common_frontier,
                                   hidden_fault_lemma_holds,
                                   persistence_lemma_holds)
from repro.core.exponential import ExponentialSpec, exponential_rounds
from repro.core.protocol import ProtocolConfig
from repro.runtime.metrics import RunMetrics
from repro.runtime.network import SynchronousNetwork


def final_trees(adversary, faulty, n=7, t=2, initial_value=1, rounds=None):
    """Drive one execution and return the correct non-source processors' trees,
    suspect lists, and the configuration (before data conversion)."""
    config = ProtocolConfig(n=n, t=t, initial_value=initial_value)
    spec = ExponentialSpec()
    correct = [p for p in config.processors if p not in faulty]
    processors = {pid: spec.build(pid, config) for pid in correct}
    adversary.bind(AdversaryContext(config=config, spec=ExponentialSpec(),
                                    faulty=frozenset(faulty), seed=0))
    network = SynchronousNetwork(config.processors, RunMetrics())
    total = rounds if rounds is not None else exponential_rounds(t)
    for round_number in range(1, total + 1):
        outboxes = {pid: processors[pid].outgoing(round_number) for pid in correct}
        outboxes.update(adversary.round_messages(round_number, outboxes))
        inboxes = network.deliver(round_number, outboxes, count_senders=correct)
        for pid in correct:
            processors[pid].incoming(round_number, inboxes.get(pid, {}))
        adversary.observe_delivery(round_number,
                                   {pid: inboxes.get(pid, {}) for pid in faulty})
    observers = {pid: proc for pid, proc in processors.items()
                 if pid != config.source}
    trees = {pid: proc.tree for pid, proc in observers.items()}
    suspects = {pid: proc.tracker.suspects for pid, proc in observers.items()}
    return config, trees, suspects


SCENARIOS = [
    ("faulty-relays-two-faced", TwoFacedSourceAdversary, frozenset({5, 6})),
    ("faulty-source-allies", EquivocatingSourceWithAlliesAdversary, frozenset({0, 6})),
    ("faulty-source-stealth", StealthPathAdversary, frozenset({0, 6})),
]


class TestLemmasOnRealExecutions:
    """The trees here come from executions interrupted just before the final
    conversion (the schedule is a single t-round segment, so the last
    information-gathering round is the last round of the run)."""

    @pytest.mark.parametrize("name,adversary_factory,faulty", SCENARIOS)
    @pytest.mark.parametrize("conversion", ["resolve", "resolve_prime"])
    def test_correctness_lemma(self, name, adversary_factory, faulty, conversion):
        config, trees, _ = final_trees(adversary_factory(), faulty, rounds=2)
        correct = [p for p in config.processors if p not in faulty]
        assert correctness_lemma_holds(trees, correct, conversion, config.t)

    @pytest.mark.parametrize("name,adversary_factory,faulty", SCENARIOS)
    @pytest.mark.parametrize("conversion", ["resolve", "resolve_prime"])
    def test_frontier_lemma_and_agreement_on_the_root(self, name, adversary_factory,
                                                      faulty, conversion):
        config, trees, _ = final_trees(adversary_factory(), faulty, rounds=3)
        # After t + 1 rounds every path holds a correct processor, so the full
        # tree must have a common frontier, and then the root must be common.
        assert has_common_frontier(trees, conversion, config.t)
        assert frontier_lemma_holds(trees, conversion, config.t)
        assert (0,) in common_nodes(trees, conversion, config.t)

    @pytest.mark.parametrize("conversion", ["resolve", "resolve_prime"])
    def test_persistence_lemma_with_correct_source(self, conversion):
        # A correct source means every correct processor prefers its value from
        # round 1 on, so conversion at any later point must return that value.
        config, trees, _ = final_trees(StealthPathAdversary(), frozenset({5, 6}),
                                       rounds=3)
        assert persistence_lemma_holds(trees, conversion, config.t) is True

    def test_persistence_lemma_vacuous_when_preferences_split(self):
        config, trees, _ = final_trees(TwoFacedSourceAdversary(), frozenset({0, 6}),
                                       rounds=2)
        roots = {tree.root_value() for tree in trees.values()}
        if len(roots) > 1:
            assert persistence_lemma_holds(trees, "resolve", config.t) is None

    @pytest.mark.parametrize("name,adversary_factory,faulty", SCENARIOS)
    def test_hidden_fault_lemma(self, name, adversary_factory, faulty):
        config, trees, suspects = final_trees(adversary_factory(), faulty, rounds=3)
        correct = [p for p in config.processors if p not in faulty]
        assert hidden_fault_lemma_holds(trees, suspects, faulty, correct, config.t)
