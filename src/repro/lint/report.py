"""Reporters: one :class:`LintResult`, rendered as text or JSON.

The text form is for humans at a terminal — findings grouped by file with
the offending source line quoted, then a one-line summary.  The JSON form
is a stable schema for CI artifacts and the benchmark harness: the same
``Finding.to_dict`` payloads the baseline machinery consumes, plus the
rule list and summary counts, so two reports diff meaningfully.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .engine import LintResult
from .findings import Finding

REPORT_VERSION = 1


def _suppression_tag(finding: Finding) -> str:
    if finding.waived:
        return f"  [waived: {finding.waive_reason}]"
    if finding.baselined:
        return "  [baselined]"
    return ""


def render_text(result: LintResult, verbose: bool = False) -> str:
    """The human-readable report; suppressed findings only with *verbose*."""
    lines: List[str] = []
    shown = result.findings if verbose else result.active
    current_path = None
    for finding in shown:
        if finding.path != current_path:
            if current_path is not None:
                lines.append("")
            lines.append(f"{finding.path}:")
            current_path = finding.path
        lines.append(
            f"  {finding.line}:{finding.col}  {finding.severity}  "
            f"{finding.rule}{_suppression_tag(finding)}")
        lines.append(f"      {finding.message}")
        if finding.suggestion:
            lines.append(f"      fix: {finding.suggestion}")
    if shown:
        lines.append("")
    for key in result.stale_baseline:
        rule, path, _ = key
        lines.append(f"stale baseline entry: {rule} @ {path} "
                     f"(finding fixed — regenerate the baseline)")
    counts = result.counts
    lines.append(
        f"{result.modules_checked} modules, {len(result.rules)} rules: "
        f"{counts['error']} errors, {counts['warning']} warnings "
        f"({counts['waived']} waived, {counts['baselined']} baselined)")
    return "\n".join(lines)


def to_json(result: LintResult) -> Dict[str, Any]:
    """The machine-readable report as a plain dict (see module docstring)."""
    counts = result.counts
    return {
        "version": REPORT_VERSION,
        "root": str(result.root),
        "rules": list(result.rules),
        "modules_checked": result.modules_checked,
        "findings": [finding.to_dict() for finding in result.findings],
        "stale_baseline": [
            {"rule": rule, "path": path, "message": message}
            for rule, path, message in result.stale_baseline
        ],
        "summary": {
            "errors": counts["error"],
            "warnings": counts["warning"],
            "waived": counts["waived"],
            "baselined": counts["baselined"],
            "exit_code": result.exit_code,
        },
    }


def render_json(result: LintResult) -> str:
    return json.dumps(to_json(result), indent=2)
