"""The structured result vocabulary of the linter: :class:`Finding`.

Every analyzer emits findings in one shape — rule id, severity, location,
message, optional suggested fix — so the engine can apply waivers and the
baseline uniformly and the reporters can render text or JSON without
knowing which rule produced what.  Findings round-trip through
``to_dict``/``from_dict`` exactly (the same contract every other
serializable object in this package honours), which is what lets a CI job
diff two JSON lint reports or commit one as a baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Tuple

from ..runtime.errors import ConfigurationError

#: Finding severities, most severe first.  Both gate the exit code — the
#: split is informational (an ``error`` names a broken invariant, a
#: ``warning`` a site that needs a human-written justification).
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule hit at one source location."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    suggestion: str = ""
    #: Set by the engine when an inline waiver suppressed this finding.
    waived: bool = False
    waive_reason: str = ""
    #: Set by the engine when the committed baseline grandfathered it.
    baselined: bool = False

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ConfigurationError(
                f"unknown finding severity {self.severity!r}; expected one "
                f"of {SEVERITIES}")

    @property
    def suppressed(self) -> bool:
        """Whether this finding counts against the exit code."""
        return self.waived or self.baselined

    def key(self) -> Tuple[str, str, str]:
        """The identity the baseline matches on: rule, file, message.

        The line number is deliberately excluded so that unrelated edits
        above a grandfathered site do not invalidate the baseline entry.
        """
        return (self.rule, self.path, self.message)

    def waive(self, reason: str) -> "Finding":
        return replace(self, waived=True, waive_reason=reason)

    def grandfather(self) -> "Finding":
        return replace(self, baselined=True)

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suggestion": self.suggestion,
        }
        # Suppression state is serialized only when set, so a clean report
        # stays minimal and byte-stable.
        if self.waived:
            data["waived"] = True
            data["waive_reason"] = self.waive_reason
        if self.baselined:
            data["baselined"] = True
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Finding":
        return cls(
            rule=data["rule"],
            severity=data["severity"],
            path=data["path"],
            line=data["line"],
            col=data["col"],
            message=data["message"],
            suggestion=data.get("suggestion", ""),
            waived=data.get("waived", False),
            waive_reason=data.get("waive_reason", ""),
            baselined=data.get("baselined", False),
        )
