"""Contract rules: registry schemas match constructors, to/from_dict parity.

These rules encode cross-module knowledge rather than style:

* ``contract/registry-schema-sync`` — every
  :class:`~repro.api.registries.RegistryEntry` declares a ``ParamSpec``
  schema the façade validates against **before** instantiating the
  factory.  A schema that drifts from the factory's ``__init__``
  (renamed parameter, changed default, new required argument) turns a
  precise ``RegistryError`` into a ``TypeError`` deep inside a
  constructor — or worse, silently changes recorded defaults.  The rule
  statically joins three shapes: literal ``RegistryEntry(...)`` calls
  (the protocol table), the ``*_SCHEMAS`` dict of declared adversary
  parameters, and the name→class dict returned by
  ``adversary_registry()`` — then checks each resolved factory class's
  effective ``__init__`` against its declared schema.

* ``contract/roundtrip-parity`` — every class shipping both ``to_dict``
  and ``from_dict`` must emit (in ``to_dict``) at least every literal key
  ``from_dict`` consumes; a key consumed but never emitted means a value
  that cannot survive its own wire format.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..findings import Finding
from ..symbols import ClassInfo, ModuleInfo, Project
from .base import Rule, literal_or_none


# ---------------------------------------------------------------------------
# contract/registry-schema-sync
# ---------------------------------------------------------------------------

@dataclass
class DeclaredParam:
    """One ``ParamSpec(...)`` as written in source."""

    name: str
    required: bool
    has_default: bool
    default_literal: bool
    default: object
    node: ast.AST


def _paramspec_from_call(call: ast.Call) -> Optional[DeclaredParam]:
    """Parse a ``ParamSpec(name, kind, default=..., required=...)`` call."""
    if not call.args or not isinstance(call.args[0], ast.Constant) \
            or not isinstance(call.args[0].value, str):
        return None
    name = call.args[0].value
    default_node: Optional[ast.expr] = None
    required = False
    if len(call.args) >= 3:
        default_node = call.args[2]
    if len(call.args) >= 4:
        ok, value = literal_or_none(call.args[3])
        required = bool(value) if ok else False
    for keyword in call.keywords:
        if keyword.arg == "default":
            default_node = keyword.value
        elif keyword.arg == "required":
            ok, value = literal_or_none(keyword.value)
            required = bool(value) if ok else False
    has_default = default_node is not None
    literal, value = literal_or_none(default_node)
    return DeclaredParam(name=name, required=required,
                         has_default=has_default, default_literal=literal,
                         default=value, node=call)


def _is_paramspec_call(module: ModuleInfo, node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    dotted = module.resolve(node.func)
    if dotted is not None:
        return dotted.rpartition(".")[2] == "ParamSpec"
    return isinstance(node.func, ast.Name) and node.func.id == "ParamSpec"


def _module_constants(module: ModuleInfo) -> Dict[str, ast.expr]:
    """Module-level ``NAME = <expr>`` assignments (for shared ParamSpecs)."""
    constants: Dict[str, ast.expr] = {}
    for stmt in module.tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            constants[stmt.targets[0].id] = stmt.value
    return constants


def _params_from_tuple(module: ModuleInfo, node: ast.expr,
                       constants: Dict[str, ast.expr]
                       ) -> Optional[List[DeclaredParam]]:
    """The DeclaredParams of a ``params=(...)`` tuple, or None if dynamic."""
    if isinstance(node, ast.Name) and node.id in constants:
        node = constants[node.id]
    elements: List[ast.expr]
    if isinstance(node, ast.Tuple):
        elements = list(node.elts)
    elif _is_paramspec_call(module, node):
        elements = [node]
    else:
        return None
    declared: List[DeclaredParam] = []
    for element in elements:
        if isinstance(element, ast.Name) and element.id in constants:
            element = constants[element.id]
        if not _is_paramspec_call(module, element):
            return None
        parsed = _paramspec_from_call(element)
        if parsed is None:
            return None
        declared.append(parsed)
    return declared


class RegistrySchemaSyncRule(Rule):
    id = "contract/registry-schema-sync"
    severity = "error"
    doc = ("every RegistryEntry's declared ParamSpec schema must match its "
           "factory __init__: names, defaults, and required parameters")

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.iter_modules():
            constants = _module_constants(module)
            yield from self._check_literal_entries(project, module,
                                                   constants)
            yield from self._check_registry_join(project, module, constants)

    # -- literal RegistryEntry(...) calls (the protocol table) --------------
    def _check_literal_entries(self, project: Project, module: ModuleInfo,
                               constants: Dict[str, ast.expr]
                               ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = module.resolve(node.func)
            is_entry = (dotted or "").rpartition(".")[2] == "RegistryEntry" \
                or (isinstance(node.func, ast.Name)
                    and node.func.id == "RegistryEntry")
            if not is_entry:
                continue
            if not node.args or not isinstance(node.args[0], ast.Constant) \
                    or not isinstance(node.args[0].value, str):
                continue  # dynamic entries are covered by the join below
            entry_name = node.args[0].value
            factory_node = node.args[1] if len(node.args) > 1 else None
            for keyword in node.keywords:
                if keyword.arg == "factory":
                    factory_node = keyword.value
            if factory_node is None:
                continue
            factory = module.resolve(factory_node)
            if factory is None and isinstance(factory_node, ast.Name):
                factory = f"{module.name}.{factory_node.id}"
            cls_info = project.find_class(factory) if factory else None
            if cls_info is None:
                continue  # external factory: not statically checkable
            params_node: Optional[ast.expr] = None
            for keyword in node.keywords:
                if keyword.arg == "params":
                    params_node = keyword.value
            declared = [] if params_node is None else _params_from_tuple(
                module, params_node, constants)
            if declared is None:
                continue  # dynamically built schema
            yield from _check_schema(self, project, module, node,
                                     entry_name, declared, cls_info)

    # -- the adversary join: *_SCHEMAS dict x adversary_registry() ----------
    def _check_registry_join(self, project: Project, module: ModuleInfo,
                             constants: Dict[str, ast.expr]
                             ) -> Iterator[Finding]:
        schemas = _schema_dicts(module, constants)
        if not schemas:
            return
        factories = _factory_registries(project)
        if not factories:
            return
        registered: Set[str] = set()
        for factory_module, name, factory_dotted, key_node in factories:
            registered.add(name)
            cls_info = project.find_class(factory_dotted)
            if cls_info is None:
                continue
            declared, schema_node = schemas.get(name, ([], None))
            anchor_module = module if schema_node is not None \
                else factory_module
            anchor = schema_node if schema_node is not None else key_node
            if declared is None:
                continue  # dynamic schema value
            yield from _check_schema(self, project, anchor_module, anchor,
                                     name, declared, cls_info)
        for name in sorted(set(schemas) - registered):
            _, schema_node = schemas[name]
            yield self.finding(
                module, schema_node if schema_node is not None
                else module.tree,
                f"schema declared for {name!r}, which no registry "
                f"factory provides",
                "remove the stale schema entry or register the factory")


def _schema_dicts(module: ModuleInfo, constants: Dict[str, ast.expr]
                  ) -> Dict[str, Tuple[Optional[List[DeclaredParam]],
                                       ast.expr]]:
    """``name -> (params, value-node)`` from any ``*_SCHEMAS`` dict."""
    schemas: Dict[str, Tuple[Optional[List[DeclaredParam]], ast.expr]] = {}
    for stmt in module.tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if not targets or not isinstance(targets[0], ast.Name) \
                or not targets[0].id.endswith("_SCHEMAS") \
                or not isinstance(value, ast.Dict):
            continue
        for key, entry in zip(value.keys, value.values):
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                schemas[key.value] = (
                    _params_from_tuple(module, entry, constants), entry)
    return schemas


def _factory_registries(project: Project
                        ) -> List[Tuple[ModuleInfo, str, str, ast.expr]]:
    """``(module, name, factory-dotted, key-node)`` for every entry of any
    ``adversary_registry()``-style name→class dict in the project."""
    entries: List[Tuple[ModuleInfo, str, str, ast.expr]] = []
    for module in project.iter_modules():
        for node in module.tree.body:
            if not isinstance(node, ast.FunctionDef) \
                    or not node.name.endswith("_registry"):
                continue
            for stmt in ast.walk(node):
                if not isinstance(stmt, ast.Return) \
                        or not isinstance(stmt.value, ast.Dict):
                    continue
                for key, value in zip(stmt.value.keys, stmt.value.values):
                    if not (isinstance(key, ast.Constant)
                            and isinstance(key.value, str)):
                        continue
                    dotted = module.resolve(value)
                    if dotted is None and isinstance(value, ast.Name):
                        dotted = f"{module.name}.{value.id}"
                    if dotted is not None \
                            and project.find_class(dotted) is not None:
                        entries.append((module, key.value, dotted, value))
    return entries


def _check_schema(rule: Rule, project: Project, module: ModuleInfo,
                  anchor: ast.AST, entry_name: str,
                  declared: List[DeclaredParam],
                  cls_info: ClassInfo) -> Iterator[Finding]:
    """Findings for one (entry, schema, factory-class) triple."""
    signature = project.init_signature(cls_info)
    if signature is None:
        return  # *args/**kwargs: not statically checkable
    init_params = {arg.arg: default for arg, default in signature}
    declared_names = {param.name for param in declared}
    for param in declared:
        if param.name not in init_params:
            yield rule.finding(
                module, anchor,
                f"{entry_name}: schema declares {param.name!r} but "
                f"{cls_info.name}.__init__ does not accept it",
                "rename the ParamSpec or add the constructor parameter")
            continue
        init_default = init_params[param.name]
        if init_default is None and not param.required:
            yield rule.finding(
                module, anchor,
                f"{entry_name}: {param.name!r} has no constructor default "
                f"but the schema does not mark it required",
                "add required=True to the ParamSpec")
        if init_default is not None and param.required:
            yield rule.finding(
                module, anchor,
                f"{entry_name}: {param.name!r} is marked required but "
                f"{cls_info.name}.__init__ supplies a default",
                "drop required=True or remove the constructor default")
        literal, init_value = literal_or_none(init_default)
        if literal and param.has_default and param.default_literal \
                and init_value != param.default:
            yield rule.finding(
                module, anchor,
                f"{entry_name}: schema default {param.name}="
                f"{param.default!r} but {cls_info.name}.__init__ uses "
                f"{init_value!r}",
                "align the ParamSpec default with the constructor")
    for name, default in init_params.items():
        if name in declared_names:
            continue
        if default is None:
            yield rule.finding(
                module, anchor,
                f"{entry_name}: required constructor parameter {name!r} "
                f"is not declared in the schema",
                "declare it with ParamSpec(..., required=True)")
        else:
            yield rule.finding(
                module, anchor,
                f"{entry_name}: constructor parameter {name!r} is not "
                f"addressable through the registry schema",
                "declare a ParamSpec for it (wire callers cannot set it "
                "otherwise)")


# ---------------------------------------------------------------------------
# contract/roundtrip-parity
# ---------------------------------------------------------------------------

def _emitted_keys(func: ast.FunctionDef) -> Set[str]:
    """Literal keys ``to_dict`` emits: dict-literal keys + subscript stores."""
    emitted: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) \
                        and isinstance(key.value, str):
                    emitted.add(key.value)
        elif isinstance(node, ast.Subscript) \
                and isinstance(node.ctx, ast.Store) \
                and isinstance(node.slice, ast.Constant) \
                and isinstance(node.slice.value, str):
            emitted.add(node.slice.value)
    return emitted


def _data_param(func: ast.FunctionDef) -> Optional[str]:
    """The name of ``from_dict``'s payload parameter."""
    names = [arg.arg for arg in func.args.args]
    if names and names[0] in ("cls", "self"):
        names = names[1:]
    return names[0] if names else None


def _consumed_keys(func: ast.FunctionDef) -> Set[str]:
    """Literal keys ``from_dict`` reads from its payload (incl. aliases)."""
    data = _data_param(func)
    if data is None:
        return set()
    sources = {data}
    # One-hop aliases: `kwargs = dict(data)` reads the same payload.
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and isinstance(node.value, ast.Call) \
                and isinstance(node.value.func, ast.Name) \
                and node.value.func.id == "dict" \
                and len(node.value.args) == 1 \
                and isinstance(node.value.args[0], ast.Name) \
                and node.value.args[0].id in sources:
            sources.add(node.targets[0].id)
    consumed: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Subscript) \
                and isinstance(node.ctx, ast.Load) \
                and isinstance(node.value, ast.Name) \
                and node.value.id in sources \
                and isinstance(node.slice, ast.Constant) \
                and isinstance(node.slice.value, str):
            consumed.add(node.slice.value)
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "get" \
                and isinstance(node.func.value, ast.Name) \
                and node.func.value.id in sources \
                and node.args \
                and isinstance(node.args[0], ast.Constant) \
                and isinstance(node.args[0].value, str):
            consumed.add(node.args[0].value)
        elif isinstance(node, ast.Compare) \
                and len(node.ops) == 1 \
                and isinstance(node.ops[0], (ast.In, ast.NotIn)) \
                and isinstance(node.left, ast.Constant) \
                and isinstance(node.left.value, str) \
                and len(node.comparators) == 1 \
                and isinstance(node.comparators[0], ast.Name) \
                and node.comparators[0].id in sources:
            consumed.add(node.left.value)
    return consumed


class RoundtripParityRule(Rule):
    id = "contract/roundtrip-parity"
    severity = "error"
    doc = ("in every class with both methods, the literal keys from_dict "
           "consumes must be a subset of the keys to_dict emits")

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.iter_modules():
            for class_name in sorted(module.classes):
                cls_info = module.classes[class_name]
                to_dict = cls_info.methods.get("to_dict")
                from_dict = cls_info.methods.get("from_dict")
                if to_dict is None or from_dict is None:
                    continue
                emitted = _emitted_keys(to_dict)
                consumed = _consumed_keys(from_dict)
                for key in sorted(consumed - emitted):
                    yield self.finding(
                        module, from_dict,
                        f"{class_name}.from_dict consumes key {key!r} "
                        f"that {class_name}.to_dict never emits",
                        "emit the key in to_dict or stop consuming it")
