"""The rule protocol and small shared AST helpers."""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..findings import Finding
from ..symbols import ModuleInfo, Project


class Rule:
    """One analyzer: a stable id, a severity, and a project-wide check.

    Rules see the whole :class:`~repro.lint.symbols.Project` so the
    contract rules can correlate modules; per-module rules just iterate
    ``project.iter_modules()``.  Findings must come out in a deterministic
    order — the engine sorts, but rule output order feeds tie-breaking.
    """

    id: str = ""
    severity: str = "error"
    doc: str = ""

    def check(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleInfo, node: ast.AST, message: str,
                suggestion: str = "") -> Finding:
        return Finding(rule=self.id, severity=self.severity,
                       path=module.relpath,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       message=message, suggestion=suggestion)


def call_name(module: ModuleInfo, node: ast.Call) -> Optional[str]:
    """The resolved dotted name a call targets, or ``None``."""
    return module.resolve(node.func)


def iter_calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def enclosing_map(tree: ast.AST) -> dict:
    """child node -> parent node, for the handful of rules that look up."""
    parents = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents


def literal_or_none(node: Optional[ast.expr]):
    """``ast.literal_eval`` that answers ``(ok, value)`` instead of raising."""
    if node is None:
        return False, None
    try:
        return True, ast.literal_eval(node)
    except (ValueError, SyntaxError):
        return False, None


def contains_raise(nodes) -> bool:
    """Whether any statement subtree contains a ``raise``."""
    for stmt in nodes:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise):
                return True
    return False
