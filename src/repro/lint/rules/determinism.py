"""Determinism rules: ambient RNG, wall clocks, fs scan order, set order.

Everything the reproduction guarantees — byte-identical crash recovery,
pure-function-of-(spec, seed) search, engine observational identity —
assumes no code path reads ambient nondeterminism.  These rules make the
four ways that assumption historically leaks machine-checked:

* ``determinism/global-rng`` — drawing from the process-wide
  ``random`` module (or unseeded numpy generators) instead of a bound
  :class:`random.Random`;
* ``determinism/wall-clock`` — reading a clock inside the engine-path
  packages (``core``, ``adversary``, ``search``, ``stats``), whose outputs
  must be pure functions of their inputs;
* ``determinism/unsorted-fs-scan`` — consuming ``os.listdir``-family
  results without ``sorted(...)`` (directory order is filesystem-
  dependent);
* ``determinism/set-iteration`` — iterating a freshly built
  ``set``/``frozenset``, whose order is an implementation detail; each
  site is either provably order-insensitive (waive it, with the proof in
  the reason) or a latent bug (sort it).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional

from ..findings import Finding
from ..symbols import ModuleInfo, Project
from .base import Rule, enclosing_map

#: ``random`` module functions that draw from (or mutate) the hidden
#: process-wide generator.  ``random.Random(seed)`` is the sanctioned
#: alternative and is deliberately absent.
_GLOBAL_DRAWS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gauss",
    "getrandbits", "getstate", "lognormvariate", "normalvariate",
    "paretovariate", "randbytes", "randint", "random", "randrange",
    "sample", "seed", "setstate", "shuffle", "triangular", "uniform",
    "vonmisesvariate", "weibullvariate",
})

#: numpy constructors that are deterministic *iff* given an explicit seed.
_NUMPY_SEEDED_FACTORIES = frozenset({
    "numpy.random.default_rng", "numpy.random.RandomState",
    "numpy.random.Generator",
})

#: Clock reads that make output depend on when (not what) you ran.
_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.perf_counter",
    "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns", "time.clock_gettime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Top-level subpackages whose outputs must be pure functions of their
#: inputs (the engine path).  ``serve``/``runtime`` legitimately measure
#: latency and deadlines; benchmarks and tests are outside the lint root.
_CLOCK_SCOPED_PACKAGES = frozenset({"core", "adversary", "search", "stats"})

#: Directory-scan calls whose result order is filesystem-dependent.
_FS_SCANS = frozenset({"os.listdir", "os.scandir", "glob.glob", "glob.iglob"})
_FS_SCAN_METHODS = frozenset({"iterdir", "glob", "rglob"})


class GlobalRngRule(Rule):
    id = "determinism/global-rng"
    severity = "error"
    doc = ("no ambient RNG: draw from a seeded random.Random bound to the "
           "adversary/spec, never the process-wide random module")

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.iter_modules():
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                dotted = module.resolve(node.func)
                if dotted is None:
                    continue
                if dotted.startswith("random.") \
                        and dotted.split(".", 1)[1] in _GLOBAL_DRAWS:
                    yield self.finding(
                        module, node,
                        f"call to the process-wide RNG ({dotted})",
                        "draw from a random.Random(seed) bound to the "
                        "component (adversaries: self.rng)")
                elif dotted in _NUMPY_SEEDED_FACTORIES and not node.args \
                        and not node.keywords:
                    yield self.finding(
                        module, node,
                        f"{dotted}() without an explicit seed",
                        "pass the run's derived seed explicitly")
                elif dotted.startswith("numpy.random.") \
                        and dotted not in _NUMPY_SEEDED_FACTORIES:
                    yield self.finding(
                        module, node,
                        f"call to numpy's global RNG ({dotted})",
                        "use numpy.random.default_rng(seed) or the bound "
                        "random.Random")


class WallClockRule(Rule):
    id = "determinism/wall-clock"
    severity = "error"
    doc = ("no wall clock in the engine path (core/, adversary/, search/, "
           "stats/): outputs must be pure functions of (spec, seed)")

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.iter_modules():
            package = module.relpath.split("/", 1)[0]
            if package not in _CLOCK_SCOPED_PACKAGES:
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                dotted = module.resolve(node.func)
                if dotted in _CLOCK_CALLS:
                    yield self.finding(
                        module, node,
                        f"clock read ({dotted}) inside the engine path "
                        f"({package}/)",
                        "thread timing through the caller, or waive with "
                        "the proof that it never feeds results")


def _under_sorted(node: ast.AST, parents: Dict[ast.AST, ast.AST]) -> bool:
    """Whether *node* sits inside a ``sorted(...)`` call expression."""
    current: Optional[ast.AST] = node
    while current is not None:
        if isinstance(current, ast.stmt):
            return False
        if isinstance(current, ast.Call) \
                and isinstance(current.func, ast.Name) \
                and current.func.id == "sorted":
            return True
        current = parents.get(current)
    return False


class UnsortedFsScanRule(Rule):
    id = "determinism/unsorted-fs-scan"
    severity = "error"
    doc = ("filesystem scan order is OS-dependent: wrap os.listdir / glob "
           "/ Path.iterdir results in sorted(...)")

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.iter_modules():
            parents = enclosing_map(module.tree)
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                dotted = module.resolve(node.func)
                is_scan = dotted in _FS_SCANS
                if not is_scan and isinstance(node.func, ast.Attribute) \
                        and node.func.attr in _FS_SCAN_METHODS \
                        and dotted is None:
                    is_scan = True  # method form: some_path.iterdir()
                if not is_scan:
                    continue
                if _under_sorted(node, parents):
                    continue
                label = dotted or f"*.{node.func.attr}(...)"
                yield self.finding(
                    module, node,
                    f"filesystem scan ({label}) consumed without "
                    f"sorted(...)",
                    "wrap the scan in sorted(...) before iterating")


def _is_set_expression(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


class SetIterationRule(Rule):
    id = "determinism/set-iteration"
    severity = "error"
    doc = ("set iteration order is an implementation detail: sort it, or "
           "waive with the argument why the consumer is order-insensitive")

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.iter_modules():
            for node in ast.walk(module.tree):
                iters = []
                if isinstance(node, ast.For):
                    iters.append(node.iter)
                elif isinstance(node, (ast.ListComp, ast.SetComp,
                                       ast.DictComp, ast.GeneratorExp)):
                    iters.extend(gen.iter for gen in node.generators)
                for iterable in iters:
                    if _is_set_expression(iterable):
                        yield self.finding(
                            module, iterable,
                            "iteration over a freshly built set has no "
                            "guaranteed order",
                            "iterate sorted(...) instead, or waive with "
                            "the order-insensitivity argument")
