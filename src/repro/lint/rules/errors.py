"""Error-handling rules: fail-stop stays fail-stop, no silent broad catches.

The durability story (journals, checkpoints, the supervision ladder) is
built on **fail-stop** semantics: when a :class:`~repro.runtime.errors.
FabricError` family exception fires, it must either propagate or be turned
into a structured record — a handler that quietly swallows one converts a
loud crash into silent data loss.  Similarly, ``except Exception`` hides
exactly the programming errors the property tests exist to surface, so
every broad handler needs either a re-raise or a written justification.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from ..findings import Finding
from ..symbols import ModuleInfo, Project
from .base import Rule, contains_raise

#: The fail-stop vocabulary of :mod:`repro.runtime.errors`.  Catching one
#: of these obliges the handler to re-raise or to carry the exception into
#: a structured record (trail entry, metric, response body).
FAILSTOP_ERRORS = frozenset({
    "FabricError", "WorkerDiedError", "WorkerTimeoutError",
    "WorkerShutdownError", "CheckpointWriteError",
    "SupervisionExhaustedError",
})

_BROAD = frozenset({"Exception", "BaseException"})


def _handler_type_names(handler: ast.ExceptHandler,
                        module: ModuleInfo) -> List[str]:
    """The last-segment names of every exception type a handler catches."""
    node = handler.type
    if node is None:
        return []
    elements = node.elts if isinstance(node, ast.Tuple) else [node]
    names = []
    for element in elements:
        dotted = module.resolve(element)
        if dotted is not None:
            names.append(dotted.rpartition(".")[2])
        elif isinstance(element, ast.Name):
            names.append(element.id)
        elif isinstance(element, ast.Attribute):
            names.append(element.attr)
    return names


def _uses_bound_exception(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body reads the exception it bound with ``as``."""
    if handler.name is None:
        return False
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and node.id == handler.name \
                    and isinstance(node.ctx, ast.Load):
                return True
    return False


class SwallowedFailstopRule(Rule):
    id = "errors/swallowed-failstop"
    severity = "error"
    doc = ("a caught FabricError/CheckpointWriteError must re-raise or "
           "flow into a structured record; fail-stop paths stay fail-stop")

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.iter_modules():
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                caught = [name for name in _handler_type_names(node, module)
                          if name in FAILSTOP_ERRORS]
                if not caught:
                    continue
                if contains_raise(node.body):
                    continue
                if _uses_bound_exception(node):
                    # The exception's content flows somewhere (a trail
                    # entry, a metric, an HTTP error body) — recorded.
                    continue
                yield self.finding(
                    module, node,
                    f"fail-stop error {', '.join(sorted(caught))} caught "
                    f"and discarded",
                    "re-raise, or bind it (`as exc`) and record it in a "
                    "trail/metric/response")


class BroadExceptRule(Rule):
    id = "errors/broad-except"
    severity = "warning"
    doc = ("bare except / except Exception without a re-raise needs a "
           "waiver explaining what failure class it intentionally absorbs")

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.iter_modules():
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                names = _handler_type_names(node, module)
                broad = node.type is None or any(name in _BROAD
                                                 for name in names)
                if not broad:
                    continue
                if contains_raise(node.body):
                    continue  # cleanup-and-re-raise is the sanctioned shape
                label = "bare except" if node.type is None \
                    else f"except {' / '.join(names)}"
                yield self.finding(
                    module, node,
                    f"{label} without a re-raise",
                    "narrow the exception types, re-raise, or waive with "
                    "the failure class this absorbs and why")
