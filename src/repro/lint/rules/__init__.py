"""The rule registry: every analyzer the engine can run, by stable id.

Mirrors the protocol/adversary registry idiom of :mod:`repro.api`: a
function returning a fresh ``{rule-id: Rule}`` dict, so callers can subset
(``repro lint --rules determinism/...``) without mutating shared state.
"""

from __future__ import annotations

from typing import Dict, List

from .base import Rule
from .contracts import RegistrySchemaSyncRule, RoundtripParityRule
from .determinism import (
    GlobalRngRule,
    SetIterationRule,
    UnsortedFsScanRule,
    WallClockRule,
)
from .errors import BroadExceptRule, SwallowedFailstopRule

_RULE_CLASSES = (
    GlobalRngRule,
    WallClockRule,
    UnsortedFsScanRule,
    SetIterationRule,
    RegistrySchemaSyncRule,
    RoundtripParityRule,
    SwallowedFailstopRule,
    BroadExceptRule,
)


def rule_registry() -> Dict[str, Rule]:
    """A fresh ``{rule-id: rule-instance}`` of every registered analyzer."""
    registry: Dict[str, Rule] = {}
    for rule_class in _RULE_CLASSES:
        rule = rule_class()
        registry[rule.id] = rule
    return registry


def rule_names() -> List[str]:
    """All registered rule ids, sorted."""
    return sorted(rule_registry())
