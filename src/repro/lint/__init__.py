"""Static analysis for the reproduction: ``repro lint``.

An AST-based auditor that machine-checks the invariants the rest of the
stack merely documents: no ambient randomness or wall clocks in the
engine path, deterministic filesystem and set iteration, registry schemas
in sync with their factory constructors, ``to_dict``/``from_dict``
parity, and fail-stop error discipline.  See
:func:`repro.lint.engine.run_lint` for the pipeline and
:mod:`repro.lint.rules` for the analyzers.
"""

from .baseline import load_baseline, save_baseline
from .engine import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_INTERNAL,
    LintResult,
    run_lint,
)
from .findings import Finding
from .report import render_json, render_text, to_json
from .rules import rule_names, rule_registry
from .symbols import Project

__all__ = [
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_INTERNAL",
    "Finding",
    "LintResult",
    "Project",
    "load_baseline",
    "render_json",
    "render_text",
    "rule_names",
    "rule_registry",
    "run_lint",
    "save_baseline",
    "to_json",
]
