"""The committed baseline: grandfathered findings that do not gate CI.

A baseline lets the linter land with the codebase imperfect: known
findings are recorded once (as ``(rule, path, message)`` triples — no line
numbers, so edits above a site do not invalidate it) and stop gating the
exit code, while anything *new* still fails.  Matching is a multiset
match: two identical findings need two baseline entries, so fixing one of
a pair is visible.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import List, Tuple

from ..runtime.errors import ConfigurationError
from .findings import Finding

BASELINE_VERSION = 1


def load_baseline(path: Path) -> Counter:
    """The baseline file as a multiset of ``(rule, path, message)`` keys."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or "findings" not in data:
        raise ConfigurationError(
            f"baseline {path} lacks a 'findings' list")
    keys: Counter = Counter()
    for entry in data["findings"]:
        try:
            keys[(entry["rule"], entry["path"], entry["message"])] += 1
        except (TypeError, KeyError) as exc:
            raise ConfigurationError(
                f"baseline {path}: entry {entry!r} lacks "
                f"rule/path/message") from exc
    return keys


def save_baseline(path: Path, findings: List[Finding]) -> int:
    """Write the unsuppressed findings as the new baseline; count written.

    Waived findings are excluded — a waiver is already a committed,
    reasoned suppression, and double-tracking it in the baseline would
    leave a stale entry behind when the waiver is removed.
    """
    entries = sorted(
        finding.key() for finding in findings if not finding.waived)
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {"rule": rule, "path": relpath, "message": message}
            for rule, relpath, message in entries
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(entries)


def apply_baseline(findings: List[Finding],
                   baseline: Counter) -> Tuple[List[Finding], Counter]:
    """Grandfather baselined findings; return (findings, unmatched keys).

    Unmatched baseline entries mean the underlying finding was fixed (or
    its message changed) — surfaced so the baseline can be re-tightened
    rather than rotting.
    """
    remaining = Counter(baseline)
    out: List[Finding] = []
    for finding in findings:
        if not finding.waived and remaining[finding.key()] > 0:
            remaining[finding.key()] -= 1
            out.append(finding.grandfather())
        else:
            out.append(finding)
    unmatched = Counter({key: count for key, count in remaining.items()
                         if count > 0})
    return out, unmatched
