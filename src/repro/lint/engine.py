"""The lint engine: parse, run rules, apply waivers and baseline, score.

One :func:`run_lint` call is the whole pipeline:

1. :class:`~repro.lint.symbols.Project` parses every module under the
   root (sorted walk — the linter obeys its own determinism rules);
2. every selected rule runs over the project;
3. inline waivers suppress matching findings, and malformed or unused
   waivers become findings themselves (``lint/bad-waiver``,
   ``lint/unused-waiver``), so suppressions cannot silently rot;
4. the committed baseline grandfathers known findings;
5. everything is sorted into one deterministic report with an exit code:
   0 clean, 1 findings, 2 internal error (the CLI maps exceptions).

Parse failures are findings (``lint/parse-error``), not crashes: a tree
with one broken file still gets the other files audited.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..runtime.errors import ConfigurationError
from .baseline import apply_baseline, load_baseline
from .findings import Finding
from .rules import rule_registry
from .symbols import Project
from .waivers import (
    Waiver,
    apply_waivers,
    collect_waivers,
    unused_waiver_findings,
)

PARSE_ERROR = "lint/parse-error"

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_INTERNAL = 2


@dataclass
class LintResult:
    """Everything one lint run produced, ready for a reporter."""

    root: Path
    rules: Tuple[str, ...]
    findings: List[Finding] = field(default_factory=list)
    #: Baseline entries that matched nothing — fixed findings to prune.
    stale_baseline: List[Tuple[str, str, str]] = field(default_factory=list)
    modules_checked: int = 0

    @property
    def active(self) -> List[Finding]:
        """Findings that gate the exit code (not waived, not baselined)."""
        return [finding for finding in self.findings
                if not finding.suppressed]

    @property
    def counts(self) -> Dict[str, int]:
        """``{severity: active count}`` plus waived/baselined totals."""
        counts = {"error": 0, "warning": 0, "waived": 0, "baselined": 0}
        for finding in self.findings:
            if finding.waived:
                counts["waived"] += 1
            elif finding.baselined:
                counts["baselined"] += 1
            else:
                counts[finding.severity] += 1
        return counts

    @property
    def exit_code(self) -> int:
        return EXIT_FINDINGS if self.active else EXIT_CLEAN


def _select_rules(names: Optional[Sequence[str]]):
    registry = rule_registry()
    if names is None:
        return [registry[name] for name in sorted(registry)]
    selected = []
    for name in names:
        if name not in registry:
            raise ConfigurationError(
                f"unknown lint rule {name!r}; known rules: "
                f"{', '.join(sorted(registry))}")
        selected.append(registry[name])
    return selected


def run_lint(root: Path, package: Optional[str] = None,
             rules: Optional[Sequence[str]] = None,
             baseline_path: Optional[Path] = None) -> LintResult:
    """Lint every module under *root*; see the module docstring."""
    if not root.exists():
        raise ConfigurationError(f"lint root {root} does not exist")
    selected = _select_rules(rules)
    project = Project.load(root, package=package)

    findings: List[Finding] = []
    for path, error in project.failures:
        findings.append(Finding(
            rule=PARSE_ERROR, severity="error",
            path=path.relative_to(project.root).as_posix(),
            line=error.lineno or 1, col=(error.offset or 1) - 1,
            message=f"file does not parse: {error.msg}",
            suggestion="fix the syntax error; this file was not audited"))

    for rule in selected:
        findings.extend(rule.check(project))

    # Waivers: collect per module, index by (path, line), apply, then
    # report the malformed and the unused ones.
    module_waivers: List[Tuple[object, List[Waiver]]] = []
    by_path_line: Dict[Tuple[str, int], List[Waiver]] = {}
    for module in project.iter_modules():
        waivers, problems = collect_waivers(module)
        findings.extend(problems)
        module_waivers.append((module, waivers))
        for waiver in waivers:
            by_path_line.setdefault(
                (module.relpath, waiver.target_line), []).append(waiver)
    flat = [waiver for _, waivers in module_waivers for waiver in waivers]
    findings = apply_waivers(findings, flat, by_path_line)
    active_rules = tuple(rule.id for rule in selected)
    for module, waivers in module_waivers:
        findings.extend(
            unused_waiver_findings(module, waivers, active_rules))

    stale: List[Tuple[str, str, str]] = []
    if baseline_path is not None and baseline_path.exists():
        baseline = load_baseline(baseline_path)
        findings, unmatched = apply_baseline(findings, baseline)
        stale = sorted(key for key, count in unmatched.items()
                       for _ in range(count))

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule, f.message))
    return LintResult(
        root=project.root,
        rules=tuple(rule.id for rule in selected),
        findings=findings,
        stale_baseline=stale,
        modules_checked=len(project.modules))
