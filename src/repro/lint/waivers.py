"""Inline suppression comments: ``# repro-lint: waive[rule-id] -- reason``.

A waiver suppresses matching findings on its own line, or — written as a
standalone comment — on the next code line (continuation comments are
skipped, so the reason can wrap under the 79-column style the codebase
follows).  Every waiver **must**
carry a reason after ``--``: a reasonless waiver is itself a finding
(``lint/bad-waiver``), as is a waiver that suppressed nothing
(``lint/unused-waiver``), so suppressions cannot silently rot.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from .findings import Finding
from .symbols import ModuleInfo

#: The waiver grammar.  Rule ids are ``area/slug``; several may be waived
#: at once with a comma list.  The reason clause is mandatory (enforced in
#: :func:`collect_waivers`, so the error message can be precise).
_WAIVER_RE = re.compile(
    r"#\s*repro-lint:\s*waive\[(?P<rules>[^\]]*)\]"
    r"(?:\s*--\s*(?P<reason>.*))?\s*$")

_RULE_ID_RE = re.compile(r"^[a-z0-9-]+/[a-z0-9-]+$")

BAD_WAIVER = "lint/bad-waiver"
UNUSED_WAIVER = "lint/unused-waiver"


@dataclass
class Waiver:
    """One parsed waiver: the rules it covers and the line it applies to."""

    rules: Tuple[str, ...]
    reason: str
    comment_line: int
    target_line: int
    used: bool = False


def _comments(module: ModuleInfo) -> Iterator[Tuple[int, int, str]]:
    """Real ``(line, col, text)`` comment tokens — never string contents.

    Tokenizing (rather than regex-scanning raw lines) is what keeps a
    docstring *describing* the waiver syntax from being parsed as one.
    """
    reader = io.StringIO(module.source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.start[1], token.string
    except tokenize.TokenError:
        # The file parsed (Project.load gated on that), so a tokenizer
        # error here means a trailing-continuation oddity; the comments
        # already yielded are still good.
        return


def collect_waivers(module: ModuleInfo) -> Tuple[List[Waiver], List[Finding]]:
    """Every waiver of *module* plus findings for the malformed ones."""
    waivers: List[Waiver] = []
    problems: List[Finding] = []
    for lineno, col, comment in _comments(module):
        match = _WAIVER_RE.search(comment)
        if match is None:
            if "repro-lint:" in comment:
                problems.append(Finding(
                    rule=BAD_WAIVER, severity="error", path=module.relpath,
                    line=lineno, col=col,
                    message="unparseable repro-lint comment",
                    suggestion="write `# repro-lint: waive[rule-id] -- "
                               "reason`"))
            continue
        rules = tuple(token.strip()
                      for token in match.group("rules").split(",")
                      if token.strip())
        reason = (match.group("reason") or "").strip()
        bad_ids = [rule for rule in rules if not _RULE_ID_RE.match(rule)]
        if not rules or bad_ids:
            problems.append(Finding(
                rule=BAD_WAIVER, severity="error", path=module.relpath,
                line=lineno, col=col,
                message=f"waiver names no valid rule id "
                        f"({', '.join(bad_ids) or 'empty list'})",
                suggestion="rule ids look like determinism/wall-clock"))
            continue
        if not reason:
            problems.append(Finding(
                rule=BAD_WAIVER, severity="error", path=module.relpath,
                line=lineno, col=col,
                message=f"waiver for {', '.join(rules)} carries no reason",
                suggestion="append `-- <why this site is safe>`"))
            continue
        # A trailing comment waives its own line; a comment-only line
        # waives the next *code* line, with continuation comments joined
        # into the reason so it can wrap under the 79-column style.
        comment_only = module.line_text(lineno).strip().startswith("#")
        target = lineno
        if comment_only:
            target = lineno + 1
            while module.line_text(target).strip().startswith("#"):
                extra = module.line_text(target).strip().lstrip("#").strip()
                if extra:
                    reason = f"{reason} {extra}"
                target += 1
        waivers.append(Waiver(rules=rules, reason=reason,
                              comment_line=lineno, target_line=target))
    return waivers, problems


def apply_waivers(findings: List[Finding], waivers: List[Waiver],
                  by_path_line: Dict[Tuple[str, int], List[Waiver]]
                  ) -> List[Finding]:
    """Mark findings covered by a waiver; record which waivers fired."""
    out: List[Finding] = []
    for finding in findings:
        matched = None
        for waiver in by_path_line.get((finding.path, finding.line), ()):
            if finding.rule in waiver.rules:
                matched = waiver
                break
        if matched is not None:
            matched.used = True
            out.append(finding.waive(matched.reason))
        else:
            out.append(finding)
    return out


def unused_waiver_findings(module: ModuleInfo, waivers: List[Waiver],
                           active_rules: Tuple[str, ...]) -> List[Finding]:
    """A ``lint/unused-waiver`` finding per waiver that suppressed nothing.

    Waivers naming only rules outside *active_rules* are exempt: a
    ``--rules`` subset run must not condemn waivers it never exercised.
    """
    active = set(active_rules)
    return [
        Finding(
            rule=UNUSED_WAIVER, severity="warning", path=module.relpath,
            line=waiver.comment_line, col=0,
            message=f"waiver for {', '.join(waiver.rules)} matched no "
                    f"finding",
            suggestion="delete the stale waiver (or fix its rule id)")
        for waiver in waivers
        if not waiver.used and active.intersection(waiver.rules)
    ]
