"""Lightweight per-module symbol tables over ``ast`` for the rule engine.

The project-specific rules need three things plain ``ast`` walks do not
give them:

* **import resolution** — the dotted origin of every local name
  (``np`` → ``numpy``, ``CheckpointWriteError`` →
  ``repro.runtime.errors.CheckpointWriteError``), including relative
  imports resolved against the module's own package;
* **a cross-module class index** — class definitions with their base
  names and methods, so a contract rule can start from a factory *name*
  in one module and land on the ``__init__`` signature in another,
  chasing re-exports (``from .crash import CrashAdversary``) on the way;
* **source access** — the raw line of any node, for waiver comments and
  for anchoring findings.

Everything here is a static approximation: no module is imported, so the
tables describe what the source *says*, which is exactly the surface the
determinism and contract rules audit.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple


@dataclass
class ClassInfo:
    """One class definition: where it lives, its bases, its methods."""

    name: str
    module: str
    node: ast.ClassDef
    #: Base expressions as written (resolved to dotted names where possible).
    bases: Tuple[str, ...]
    methods: Dict[str, ast.FunctionDef]

    @property
    def qualname(self) -> str:
        return f"{self.module}.{self.name}"


@dataclass
class ModuleInfo:
    """One parsed module: tree, source, imports, class definitions."""

    name: str
    path: Path
    relpath: str
    tree: ast.Module
    source: str
    lines: List[str]
    #: local name -> dotted origin ("np" -> "numpy",
    #: "RegistryError" -> "repro.api.registries.RegistryError").
    imports: Dict[str, str] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)

    def line_text(self, lineno: int) -> str:
        """The 1-indexed source line, or the empty string out of range."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def resolve(self, node: ast.AST) -> Optional[str]:
        """The dotted origin of a ``Name``/``Attribute`` chain, if importable.

        ``Name`` nodes resolve through the import table (a name that was
        never imported is local and resolves to ``None``); ``Attribute``
        chains resolve their base and append the attribute, so
        ``np.random.seed`` becomes ``numpy.random.seed``.
        """
        if isinstance(node, ast.Name):
            return self.imports.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None


def _module_name(root: Path, package: str, path: Path) -> str:
    """Dotted module name of *path* relative to the linted package root."""
    rel = path.relative_to(root).with_suffix("")
    parts = [package] + list(rel.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _resolve_relative(module: str, level: int, target: Optional[str],
                      is_package: bool) -> str:
    """The absolute module a ``from ...x import y`` refers to."""
    parts = module.split(".")
    # A package's own __init__ counts as one level deeper than its name.
    if not is_package:
        parts = parts[:-1]
    if level > 1:
        parts = parts[:-(level - 1)] if level - 1 < len(parts) else []
    base = ".".join(parts)
    if target:
        return f"{base}.{target}" if base else target
    return base


def _collect_imports(info: ModuleInfo, is_package: bool) -> None:
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else alias.name.split(".")[0]
                info.imports[local] = origin
        elif isinstance(node, ast.ImportFrom):
            origin_module = node.module
            if node.level:
                origin_module = _resolve_relative(
                    info.name, node.level, node.module, is_package)
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                info.imports[local] = f"{origin_module}.{alias.name}"


def _collect_classes(info: ModuleInfo) -> None:
    for node in info.tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        bases = tuple(info.resolve(base) or ast.unparse(base)
                      for base in node.bases)
        methods = {item.name: item for item in node.body
                   if isinstance(item, ast.FunctionDef)}
        info.classes[node.name] = ClassInfo(
            name=node.name, module=info.name, node=node, bases=bases,
            methods=methods)


class ParseFailure(Exception):
    """A target file does not parse; carries the path and the SyntaxError."""

    def __init__(self, path: Path, error: SyntaxError) -> None:
        super().__init__(f"{path}: {error}")
        self.path = path
        self.error = error


@dataclass
class Project:
    """Every parsed module of one lint run plus the cross-module indexes."""

    root: Path
    package: str
    modules: Dict[str, ModuleInfo] = field(default_factory=dict)
    #: Parse failures as (path, error) — reported as findings, not crashes.
    failures: List[Tuple[Path, SyntaxError]] = field(default_factory=list)

    @classmethod
    def load(cls, root: Path, package: Optional[str] = None) -> "Project":
        """Parse every ``*.py`` under *root* (sorted walk) into a project."""
        root = root.resolve()
        package = package or root.name
        project = cls(root=root, package=package)
        for path in sorted(root.rglob("*.py")):
            source = path.read_text(encoding="utf-8")
            name = _module_name(root, package, path)
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError as exc:
                project.failures.append((path, exc))
                continue
            info = ModuleInfo(
                name=name, path=path,
                relpath=path.relative_to(root).as_posix(),
                tree=tree, source=source, lines=source.splitlines())
            _collect_imports(info, is_package=path.name == "__init__.py")
            _collect_classes(info)
            project.modules[name] = info
        return project

    def iter_modules(self) -> Iterator[ModuleInfo]:
        """Modules in sorted-name order (deterministic rule output)."""
        for name in sorted(self.modules):
            yield self.modules[name]

    # -- class lookup --------------------------------------------------------
    def find_class(self, dotted: str, _depth: int = 0) -> Optional[ClassInfo]:
        """The :class:`ClassInfo` a dotted name refers to, chasing re-exports.

        ``repro.adversary.CrashAdversary`` first tries a class literally
        defined in ``repro.adversary``; failing that, it follows the
        package ``__init__``'s own import of the name (bounded depth, so an
        import cycle cannot loop the linter).
        """
        if _depth > 8:
            return None
        module_name, _, attr = dotted.rpartition(".")
        if not module_name:
            return None
        module = self.modules.get(module_name)
        if module is None:
            return None
        if attr in module.classes:
            return module.classes[attr]
        reexport = module.imports.get(attr)
        if reexport is not None:
            return self.find_class(reexport, _depth + 1)
        return None

    def init_params(self, cls_info: ClassInfo,
                    _depth: int = 0) -> Optional[List[ast.arg]]:
        """The ``__init__`` parameters of a class, walking project bases.

        Returns the parameter list *excluding* ``self`` with each arg
        paired to its default in :func:`init_signature`; ``None`` means the
        signature is not statically checkable (``*args``/``**kwargs``, or
        every base lives outside the project and none defines an
        ``__init__`` we can see — treated as the zero-parameter object
        constructor by callers that choose to).
        """
        signature = self.init_signature(cls_info, _depth)
        if signature is None:
            return None
        return [arg for arg, _ in signature]

    def init_signature(self, cls_info: ClassInfo, _depth: int = 0
                       ) -> Optional[List[Tuple[ast.arg, Optional[ast.expr]]]]:
        """``[(arg, default)]`` of the class's effective ``__init__``.

        Defaults are the AST expressions as written (``None`` = required).
        A signature using ``*args``/``**kwargs`` returns ``None``
        (unverifiable); a class whose whole base chain is external returns
        the empty list (``object.__init__``).
        """
        if _depth > 8:
            return []
        init = cls_info.methods.get("__init__")
        if init is not None:
            args = init.args
            if args.vararg is not None or args.kwarg is not None:
                return None
            positional = list(args.posonlyargs) + list(args.args)
            defaults = [None] * (len(positional) - len(args.defaults)) \
                + list(args.defaults)
            pairs = list(zip(positional, defaults))[1:]  # drop self
            for arg, default in zip(args.kwonlyargs, args.kw_defaults):
                pairs.append((arg, default))
            return pairs
        module = self.modules.get(cls_info.module)
        for base in cls_info.bases:
            base_info = None
            if module is not None and base in module.classes:
                base_info = module.classes[base]
            else:
                base_info = self.find_class(base, _depth + 1)
            if base_info is not None:
                found = self.init_signature(base_info, _depth + 1)
                if found is not None:
                    return found
        return []
