"""repro.api — the declarative run façade.

One import gives every consumer the same vocabulary for describing and
executing agreement runs:

* **registries** (:mod:`.registries`) — protocols and adversaries addressed
  by name with schema-validated plain-data parameters;
* **requests/reports** (:mod:`.request`) — :class:`RunRequest`,
  :class:`RunReport`, and :class:`SweepSpec`, JSON-round-trippable
  descriptions of runs, their outcomes, and whole sweeps;
* **planner** (:mod:`.planner`) — ``engine="auto"`` resolution to
  batched → numpy → fast based on spec eligibility and numpy availability,
  with explicit choices overriding ambient (env-var / process-default)
  settings loudly;
* **executors** (:mod:`.executors`) — the pluggable execution layer
  (``submit``/``iter_reports``/``close``) with a name→factory registry:
  ``"serial"``, ``"pool"``, the row-sharding ``"sharded"`` backend for
  large-``n`` runs, and the ``"supervised"`` resilient backend (worker
  deadlines, seeded retry/backoff, degradation ladder, audit trail);
* **façade** (:mod:`.facade`) — :func:`execute` for one request,
  :func:`execute_resilient` for one supervised request,
  :func:`iter_execute` for streaming sweeps over any executor,
  :func:`execute_many` for the classic list-shaped pool sweep;
* **sweeps** (:mod:`.sweep`) — :func:`run_sweep`/:func:`iter_sweep` with a
  JSONL checkpoint log (atomic header creation, bounded append retry,
  opt-in fsync) and crash-safe resume, plus chaos-policy injection for
  resilience testing.

>>> from repro.api import RunRequest, execute
>>> report = execute(RunRequest(protocol="hybrid", protocol_params={"b": 3},
...                             n=16, t=5, initial_value=1,
...                             scenario="faulty-source-allies",
...                             battery="worst-case"))
>>> report.agreement
True
"""

from __future__ import annotations

from .executors import (DEFAULT_EXECUTOR, Executor, PoolExecutor,
                        SerialExecutor, ShardedRunExecutor,
                        SupervisedExecutor, build_executor, executor_names,
                        executor_registry, resolve_executor)
# Imported after .executors: repro.core must initialize before repro.runtime
# (runtime.messages reaches back into core.sequences).
from ..runtime.chaos import ChaosPolicy, FaultInjection, chaos_scope
from .facade import (execute, execute_grouped, execute_many,
                     execute_resilient, iter_execute, plan_request)
from .planner import (ExecutionPlan, batched_ineligibility, plan_run,
                      plan_shardable)
from .registries import (ParamSpec, RegistryEntry, RegistryError,
                         adversary_names, adversary_registry, build_adversary,
                         build_protocol, protocol_names, protocol_registry,
                         request_fields_for_spec)
from .request import (AUTO, ENGINE_CHOICES, SEED_POLICIES, RunReport,
                      RunRequest, SweepSpec, derive_seed)
from .sweep import (CheckpointScan, compact_checkpoint, iter_sweep,
                    read_checkpoint, run_sweep, scan_checkpoint,
                    sweep_digest)

__all__ = [
    "RunRequest", "RunReport", "SweepSpec", "AUTO", "ENGINE_CHOICES",
    "SEED_POLICIES", "derive_seed",
    "execute", "execute_many", "execute_grouped", "execute_resilient",
    "iter_execute", "plan_request",
    "ExecutionPlan", "plan_run", "plan_shardable", "batched_ineligibility",
    "Executor", "SerialExecutor", "PoolExecutor", "ShardedRunExecutor",
    "SupervisedExecutor",
    "executor_registry", "executor_names", "build_executor",
    "resolve_executor", "DEFAULT_EXECUTOR",
    "ChaosPolicy", "FaultInjection", "chaos_scope",
    "iter_sweep", "run_sweep", "read_checkpoint", "scan_checkpoint",
    "compact_checkpoint", "CheckpointScan", "sweep_digest",
    "ParamSpec", "RegistryEntry", "RegistryError",
    "protocol_registry", "adversary_registry",
    "protocol_names", "adversary_names",
    "build_protocol", "build_adversary", "request_fields_for_spec",
]
