"""repro.api — the declarative run façade.

One import gives every consumer the same vocabulary for describing and
executing agreement runs:

* **registries** (:mod:`.registries`) — protocols and adversaries addressed
  by name with schema-validated plain-data parameters;
* **requests/reports** (:mod:`.request`) — :class:`RunRequest` and
  :class:`RunReport`, JSON-round-trippable descriptions of a run and its
  outcome;
* **planner** (:mod:`.planner`) — ``engine="auto"`` resolution to
  batched → numpy → fast based on spec eligibility and numpy availability,
  with explicit choices overriding ambient (env-var / process-default)
  settings loudly;
* **façade** (:mod:`.facade`) — :func:`execute` for one request,
  :func:`execute_many` for sweeps over the process pool.

>>> from repro.api import RunRequest, execute
>>> report = execute(RunRequest(protocol="hybrid", protocol_params={"b": 3},
...                             n=16, t=5, initial_value=1,
...                             scenario="faulty-source-allies",
...                             battery="worst-case"))
>>> report.agreement
True
"""

from __future__ import annotations

from .facade import execute, execute_grouped, execute_many, plan_request
from .planner import ExecutionPlan, plan_run
from .registries import (ParamSpec, RegistryEntry, RegistryError,
                         adversary_names, adversary_registry, build_adversary,
                         build_protocol, protocol_names, protocol_registry,
                         request_fields_for_spec)
from .request import AUTO, ENGINE_CHOICES, RunReport, RunRequest

__all__ = [
    "RunRequest", "RunReport", "AUTO", "ENGINE_CHOICES",
    "execute", "execute_many", "execute_grouped", "plan_request",
    "ExecutionPlan", "plan_run",
    "ParamSpec", "RegistryEntry", "RegistryError",
    "protocol_registry", "adversary_registry",
    "protocol_names", "adversary_names",
    "build_protocol", "build_adversary", "request_fields_for_spec",
]
