"""Crash-tolerant JSONL scanning and rewriting, shared by every durable log.

Three consumers append one JSON object per line to an append-only log and
must recover it after a ``kill -9``: the sweep checkpoint
(:mod:`repro.api.sweep`), the serve journal (:mod:`repro.serve.journal`),
and the checkpoint compactor (``repro sweep --compact``).  They share one
reading discipline, implemented here once:

* a **truncated final line** is a crash artifact (the process died
  mid-``write``) and is tolerated — the scan reports it so callers can
  repair or surface it;
* **unparseable bytes before the end** are corruption, not a crash tail
  (appends are newline-terminated and flushed), and raise
  :class:`~repro.runtime.errors.ConfigurationError` — silently dropping the
  line would also drop every entry after it;
* **superseded duplicates** (the same key appended twice, e.g. a retried
  cell re-checkpointed) resolve last-write-wins, and the scan counts them so
  replay paths can report double execution instead of masking it.

:func:`rewrite_jsonl` is the matching compaction primitive: an atomic
(temp-file + ``os.replace``) rewrite that drops superseded lines and any
torn tail, leaving a minimal, clean log behind.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..runtime.errors import ConfigurationError


@dataclass
class JsonlScan:
    """The parsed body of a JSONL log, crash tail acknowledged.

    ``entries`` holds ``(line_number, entry)`` pairs in file order (line
    numbers are 1-based over the whole file, header included); entries are
    whatever JSON the line held — shape validation belongs to the caller,
    which knows its own schema and error vocabulary.  ``torn_tail`` records
    whether the final line was an unparseable crash artifact the scan
    skipped.
    """

    entries: List[Tuple[int, Any]] = field(default_factory=list)
    torn_tail: bool = False


def scan_jsonl(path: str, lines: Iterable[str], *, first_line: int = 1,
               description: str = "log") -> JsonlScan:
    """Parse *lines* (already split, no newlines) tolerating a torn tail.

    *first_line* is the 1-based file line number of the first element of
    *lines*, so error messages point at the real file position even when the
    caller already consumed a header.
    """
    body = [line for line in lines]
    scan = JsonlScan()
    for position, line in enumerate(body):
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            if position == len(body) - 1:
                scan.torn_tail = True
                break  # truncated final line: the crash happened mid-write
            raise ConfigurationError(
                f"{path} has an unparseable line before the end of the "
                f"{description} (line {position + first_line}): "
                f"{line[:80]!r}; the {description} is corrupt — repair or "
                f"delete it")
        scan.entries.append((position + first_line, entry))
    return scan


def last_write_wins(scan: JsonlScan, key_of) -> Tuple[Dict[Any, Dict[str,
                                                                     Any]],
                                                      int]:
    """Collapse *scan* to ``{key: latest_entry}`` plus the superseded count.

    *key_of* maps an entry to its identity (a sweep checkpoint's ``index``,
    a serve journal's ``(event, id)``); later lines supersede earlier ones
    with the same key, matching append order.
    """
    latest: Dict[Any, Dict[str, Any]] = {}
    duplicates = 0
    for _, entry in scan.entries:
        key = key_of(entry)
        if key in latest:
            duplicates += 1
        latest[key] = entry
    return latest, duplicates


def rewrite_jsonl(path: str, header: Optional[Dict[str, Any]],
                  entries: Iterable[Dict[str, Any]]) -> None:
    """Atomically replace *path* with *header* (if any) plus *entries*.

    Written to a sibling temp file and renamed into place, so a crash during
    compaction leaves the original log untouched — the same discipline as
    checkpoint header creation.
    """
    tmp = f"{path}.compact.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            if header is not None:
                handle.write(json.dumps(header, sort_keys=True) + "\n")
            for entry in entries:
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
