"""The pluggable execution layer: ``submit`` / ``iter_reports`` / ``close``.

Distributed-systems practice models the algorithm being simulated and the
substrate running it as separate concerns; this module is that separation
for :mod:`repro.api`.  An :class:`Executor` accepts serializable
:class:`~repro.api.request.RunRequest` values via :meth:`~Executor.submit`
and streams ``(index, report)`` pairs back through
:meth:`~Executor.iter_reports` **as runs finish** — which is what lets
sweeps checkpoint durably (:mod:`repro.api.sweep`) and callers act on early
results while later cells are still running.

Four built-in backends, addressable by name through
:func:`executor_registry` (the same :class:`~repro.api.registries.RegistryEntry`
machinery as the protocol/adversary registries):

``serial``
    In-process, one request at a time, reports streamed in submission order.
    The substrate of ``execute`` and every fallback path.
``pool``
    The process-pool sweep executor previously hard-coded inside
    ``execute_many``: one worker per request slot, ambient-engine
    forwarding, completion-order streaming, and clean degradation to serial
    for single requests / one-worker pools / platforms without process
    spawning.
``sharded``
    The large-``n`` backend: each *single run* is row-sharded across worker
    processes (:mod:`repro.runtime.sharding`) — the coordinator keeps the
    adversary and message accounting, the workers step contiguous blocks of
    the run's :class:`~repro.core.npsupport.BatchedEIGState` row stack, and
    cross-shard claims travel as serialized code ndarrays once per round.
    Requests whose plan is not batched-eligible fall back to the ordinary
    planner path, so a mixed sweep still completes.
``supervised``
    The resilient backend: every run is supervised
    (:mod:`repro.runtime.supervision`) with per-worker deadlines, bounded
    seeded retries, and a degradation ladder ``sharded → batched → pool →
    serial``; every recovery step is audited in
    ``RunReport.metadata["resilience"]``.

Requests are executed exactly as :func:`repro.api.facade.execute` would —
same planner, same reports — so swapping backends never changes results,
only where the work happens.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures import wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import nullcontext
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from ..core.engine import ambient_engine, use_engine
from ..runtime.chaos import build_chaos, chaos_scope, current_chaos
from ..runtime.errors import ConfigurationError, WorkerTimeoutError
from ..runtime.supervision import (DEFAULT_LADDER, RetryPolicy,
                                   RungUnavailable, Supervisor,
                                   pool_retry_record)
from .registries import ParamSpec, RegistryEntry, RegistryError
from .request import RunReport, RunRequest

#: What callers may pass wherever an executor is accepted: an instance, a
#: registered name, or ``None`` for the default (``"pool"``).
ExecutorSpec = Union["Executor", str, None]


class Executor:
    """The execution-substrate protocol: ``submit`` / ``iter_reports`` / ``close``.

    Subclasses implement :meth:`iter_reports`; everything else — submission
    bookkeeping, context management, close-state checks — is shared.
    ``iter_reports`` drains the requests submitted so far and yields
    ``(index, report)`` pairs as each run finishes (the order is
    backend-defined; indexes are assigned by :meth:`submit` in submission
    order and are stable across backends).
    """

    #: Registry name, overridden per backend (surfaced in errors and docs).
    name = "executor"

    def __init__(self) -> None:
        self._pending: List[Tuple[int, RunRequest]] = []
        self._submitted = 0
        self._closed = False

    def submit(self, request: RunRequest) -> int:
        """Queue *request* and return its sweep index."""
        if self._closed:
            raise ConfigurationError(
                f"cannot submit to a closed {self.name!r} executor")
        index = self._submitted
        self._submitted += 1
        self._pending.append((index, request))
        return index

    def iter_reports(self) -> Iterator[Tuple[int, RunReport]]:
        """Yield ``(index, report)`` for every pending request, as they finish."""
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources; further submissions are rejected."""
        self._closed = True

    def _take_pending(self) -> List[Tuple[int, RunRequest]]:
        pending, self._pending = self._pending, []
        return pending

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(Executor):
    """In-process execution, streamed in submission order."""

    name = "serial"

    def iter_reports(self) -> Iterator[Tuple[int, RunReport]]:
        from .facade import execute
        for index, request in self._take_pending():
            yield index, execute(request)


def _pool_worker_init(ambient: Optional[str]) -> None:  # pragma: no cover
    """Re-pin the parent's ambient engine inside a spawned pool worker."""
    if ambient is not None:
        from ..core.engine import set_default_engine
        os.environ["REPRO_EIG_ENGINE"] = ambient
        set_default_engine(ambient)


def _execute_for_pool(request: RunRequest) -> RunReport:
    from .facade import execute
    return execute(request)


def _chaos_exit_worker(request: RunRequest) -> RunReport:  # pragma: no cover
    """The pool-worker-kill chaos payload: die like an OOM kill would."""
    os._exit(1)


class PoolExecutor(Executor):
    """Process-pool sweeps: one worker slot per request, completion-order stream.

    Workers re-plan each request locally, so eligible EIG cells compound
    whole-run batched stepping with cross-cell process parallelism — exactly
    the behaviour ``execute_many`` always had, now streamable.  Degrades to
    serial execution for a single pending request, an effective worker count
    of one, or platforms that cannot spawn a process pool.

    A worker that *dies* mid-run (OOM kill, a segfault in an extension,
    ``os._exit``) poisons the whole :class:`ProcessPoolExecutor`: every
    unfinished future raises :class:`BrokenProcessPool`.  Requests are pure
    descriptions, so the executor retries every undelivered request
    in-process, once, and records the recovery on each resulting report as
    a structured ``metadata["resilience"]`` entry (attempt count, exception
    class, fallback executor — the same vocabulary the supervised executor
    writes) — a sweep survives a poisoned pool instead of losing all its
    in-flight cells.
    """

    name = "pool"

    #: The function each worker slot runs — a seam so tests can substitute a
    #: crashing worker without reaching into module internals.
    _worker = staticmethod(_execute_for_pool)

    def __init__(self, max_workers: Optional[int] = None) -> None:
        super().__init__()
        self.max_workers = max_workers

    def iter_reports(self) -> Iterator[Tuple[int, RunReport]]:
        from .facade import execute
        pending = self._take_pending()
        if not pending:
            return
        workers = max(1, min(self.max_workers or os.cpu_count() or 1,
                             len(pending)))
        if workers == 1 or len(pending) == 1:
            # A one-worker pool is serial execution plus fork overhead.
            for index, request in pending:
                yield index, execute(request)
            return
        try:
            pool = ProcessPoolExecutor(max_workers=workers,
                                       initializer=_pool_worker_init,
                                       initargs=(ambient_engine(),))
        except (OSError, PermissionError):  # pragma: no cover - sandboxes
            for index, request in pending:
                yield index, execute(request)
            return
        delivered = set()
        broken_error: Optional[BaseException] = None
        controller = current_chaos()
        with pool:
            try:
                futures = {}
                for index, request in pending:
                    worker = self._worker
                    if controller is not None and any(
                            fault.kind == "pool-worker-kill"
                            for fault in controller.take("pool-request",
                                                         index=index)):
                        worker = _chaos_exit_worker
                    futures[pool.submit(worker, request)] = index
            except (OSError, PermissionError):  # pragma: no cover - sandboxes
                pool.shutdown(wait=False)
                for index, request in pending:
                    yield index, execute(request)
                return
            outstanding = set(futures)
            while outstanding and broken_error is None:
                done, outstanding = wait(outstanding,
                                         return_when=FIRST_COMPLETED)
                for future in done:
                    try:
                        report = future.result()
                    except BrokenProcessPool as exc:
                        broken_error = exc
                        continue
                    delivered.add(futures[future])
                    yield futures[future], report
        if broken_error is not None:
            for index, request in pending:
                if index in delivered:
                    continue
                report = execute(request)
                report.metadata.setdefault("resilience", []).append(
                    pool_retry_record(attempt=2, error=broken_error,
                                      fallback="serial"))
                yield index, report


class ShardedRunExecutor(Executor):
    """The large-``n`` backend: row-shard each submitted run across processes.

    Requests run one after another (each already uses every worker), each
    split over *shards* worker processes by
    :func:`repro.runtime.sharding.run_sharded_if_supported` —
    observationally identical to the single-process batched engine.
    Batched-ineligible requests (non-EIG specs, explicit per-processor
    engines, numpy-less environments) fall back to the ordinary planner
    path, so mixed sweeps still complete; their reports carry the engine the
    fallback actually used, while sharded runs record
    ``engine_resolved == "sharded"``.
    """

    name = "sharded"

    def __init__(self, shards: Optional[int] = None,
                 deadline: Optional[float] = None) -> None:
        super().__init__()
        if shards is not None and shards < 1:
            raise ConfigurationError(
                f"a sharded executor needs at least one shard, got {shards}")
        if deadline is not None and not deadline > 0:
            raise ConfigurationError(
                f"a worker deadline must be positive seconds, got {deadline}")
        self.shards = shards
        self.deadline = deadline

    def iter_reports(self) -> Iterator[Tuple[int, RunReport]]:
        for index, request in self._take_pending():
            yield index, self._execute_one(request)

    def _execute_one(self, request: RunRequest) -> RunReport:
        from ..runtime.sharding import run_sharded_if_supported
        from .facade import execute
        from .planner import plan_run
        spec, config, faulty, adversary = request.resolve_parts()
        plan = plan_run(request, spec, config, faulty, adversary)
        if plan.batched:
            with use_engine(plan.engine):
                result = run_sharded_if_supported(spec, config, faulty,
                                                  adversary, request.seed,
                                                  shards=self.shards,
                                                  deadline=self.deadline)
            if result is not None:
                return RunReport.from_result(
                    result, engine=request.engine, engine_resolved="sharded",
                    scenario=request.scenario, seed=request.seed)
        return execute(request)


# ---------------------------------------------------------------------------
# The supervised executor: a degradation ladder over the other backends.
# ---------------------------------------------------------------------------

def _rung_sharded(request: RunRequest, shards: Optional[int],
                  deadline: Optional[float]) -> RunReport:
    """The most capable rung: row-sharded multi-process execution."""
    from ..runtime.sharding import run_sharded_if_supported
    from .planner import plan_run
    spec, config, faulty, adversary = request.resolve_parts()
    plan = plan_run(request, spec, config, faulty, adversary)
    if not plan.batched:
        raise RungUnavailable("request is not batched-eligible")
    with use_engine(plan.engine):
        result = run_sharded_if_supported(spec, config, faulty, adversary,
                                          request.seed, shards=shards,
                                          deadline=deadline)
    if result is None:
        raise RungUnavailable("sharding unsupported here (no numpy, "
                              "one shard, or too few rows)")
    return RunReport.from_result(result, engine=request.engine,
                                 engine_resolved="sharded",
                                 scenario=request.scenario, seed=request.seed)


def _rung_batched(request: RunRequest) -> RunReport:
    """Single-process execution exactly as the facade plans it."""
    from .facade import execute
    return execute(request)


def _rung_pool(request: RunRequest,
               deadline: Optional[float]) -> RunReport:
    """One fresh single-slot pool worker, bounded by *deadline* seconds.

    A fresh pool per attempt keeps the rung hermetic: a worker poisoned by a
    previous attempt cannot leak into this one.
    """
    try:
        pool = ProcessPoolExecutor(max_workers=1,
                                   initializer=_pool_worker_init,
                                   initargs=(ambient_engine(),))
    except (OSError, PermissionError) as exc:  # pragma: no cover - sandboxes
        raise RungUnavailable(f"cannot spawn a pool worker: {exc}") from exc
    try:
        future = pool.submit(_execute_for_pool, request)
        try:
            return future.result(timeout=deadline)
        except FuturesTimeout:
            for process in getattr(pool, "_processes", {}).values():
                process.kill()
            raise WorkerTimeoutError(
                f"pool worker missed its {deadline:g}s reply deadline "
                f"for seed {request.seed}") from None
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


def _rung_serial(request: RunRequest) -> RunReport:
    """The floor of the ladder: in-process, unbatched, no numpy required."""
    from ..runtime.simulation import run_agreement
    from .planner import plan_run
    spec, config, faulty, adversary = request.resolve_parts()
    plan = plan_run(request, spec, config, faulty, adversary)
    with use_engine(plan.engine):
        result = run_agreement(spec, config, faulty, adversary,
                               seed=request.seed, batched=False)
    return RunReport.from_result(result, engine=request.engine,
                                 engine_resolved=plan.resolved,
                                 scenario=request.scenario, seed=request.seed)


class SupervisedExecutor(Executor):
    """Supervised execution: heartbeats, bounded retries, degradation ladder.

    Every submitted request is run under a
    :class:`~repro.runtime.supervision.Supervisor` walking *ladder* (default
    ``sharded → batched → pool → serial``): each rung gets ``max_attempts``
    tries with deterministic seeded backoff before the ladder steps down, and
    every retry, downgrade, and skip lands in the report's
    ``metadata["resilience"]`` audit trail.  An undisturbed run takes the
    first applicable rung on its first attempt and carries **no** metadata,
    so supervised reports are byte-identical (modulo the execution-side
    ``engine_resolved``/``metadata`` fields — see
    :meth:`~repro.api.request.RunReport.outcome_dict`) to unsupervised ones.

    *deadline* bounds each worker interaction (shard-round replies, pool
    results) so a hung worker surfaces as a named
    :class:`~repro.runtime.errors.WorkerTimeoutError` instead of a hang.
    *chaos* optionally installs a :class:`~repro.runtime.chaos.ChaosPolicy`
    (or plain policy data) for the duration of :meth:`iter_reports` — unless
    a chaos scope is already ambient, which takes precedence.
    """

    name = "supervised"

    def __init__(self, ladder: Optional[Iterable[str]] = None,
                 max_attempts: int = 3, base_delay: float = 0.05,
                 backoff_factor: float = 2.0, deadline: float = 30.0,
                 shards: Optional[int] = None, chaos: object = None) -> None:
        super().__init__()
        rungs = tuple(ladder) if ladder is not None else DEFAULT_LADDER
        unknown = [stage for stage in rungs if stage not in DEFAULT_LADDER]
        if unknown:
            raise ConfigurationError(
                f"unknown ladder rung(s) {unknown}; known rungs: "
                f"{list(DEFAULT_LADDER)}")
        if not rungs:
            raise ConfigurationError("a supervision ladder needs at least "
                                     "one rung")
        if not deadline > 0:
            raise ConfigurationError(
                f"a worker deadline must be positive seconds, got {deadline}")
        if shards is not None and shards < 1:
            raise ConfigurationError(
                f"a sharded rung needs at least one shard, got {shards}")
        self.ladder = rungs
        self.retry = RetryPolicy(max_attempts=max_attempts,
                                 base_delay=base_delay,
                                 backoff_factor=backoff_factor)
        self.deadline = deadline
        self.shards = shards
        self.chaos = chaos

    def _rungs(self, request: RunRequest):
        thunks = {
            "sharded": lambda: _rung_sharded(request, self.shards,
                                             self.deadline),
            "batched": lambda: _rung_batched(request),
            "pool": lambda: _rung_pool(request, self.deadline),
            "serial": lambda: _rung_serial(request),
        }
        return [(stage, thunks[stage]) for stage in self.ladder]

    def iter_reports(self) -> Iterator[Tuple[int, RunReport]]:
        # An ambient scope (e.g. a sweep-level --chaos policy) wins; the
        # constructor's policy only activates when nothing else is in force.
        scope = (nullcontext() if current_chaos() is not None
                 else chaos_scope(build_chaos(self.chaos)))
        with scope:
            for index, request in self._take_pending():
                supervisor = Supervisor(self._rungs(request),
                                        retry=self.retry,
                                        key=f"{request.seed}:{index}")
                report, trail = supervisor.run()
                if trail:
                    report.metadata.setdefault("resilience", []).extend(trail)
                yield index, report


# ---------------------------------------------------------------------------
# The executor registry — same machinery as the protocol/adversary registries.
# ---------------------------------------------------------------------------

def _executor_entries() -> Tuple[RegistryEntry, ...]:
    return (
        RegistryEntry(
            "serial", SerialExecutor,
            doc="in-process, one request at a time, submission order"),
        RegistryEntry(
            "pool", PoolExecutor,
            doc="process pool across requests (the execute_many substrate)",
            params=(ParamSpec(
                "max_workers", int,
                doc="worker processes (default: one per CPU, capped at the "
                    "request count)"),)),
        RegistryEntry(
            "sharded", ShardedRunExecutor,
            doc="row-shard each single run across worker processes "
                "(large-n batched runs)",
            params=(
                ParamSpec(
                    "shards", int,
                    doc="worker processes per run (default: the CPU count, "
                        "capped at the run's row count)"),
                ParamSpec(
                    "deadline", float,
                    doc="seconds to wait for each shard-round reply before "
                        "raising WorkerTimeoutError (default: wait forever)"),
            )),
        RegistryEntry(
            "supervised", SupervisedExecutor,
            doc="supervised ladder (sharded→batched→pool→serial) with "
                "heartbeats, seeded retry/backoff, and a resilience audit "
                "trail",
            params=(
                ParamSpec(
                    "ladder", list,
                    doc="ordered rung names to walk (default: sharded, "
                        "batched, pool, serial)"),
                ParamSpec(
                    "max_attempts", int,
                    doc="tries per rung before downgrading (default 3)"),
                ParamSpec(
                    "base_delay", float,
                    doc="first-retry backoff in seconds (default 0.05)"),
                ParamSpec(
                    "backoff_factor", float,
                    doc="exponential backoff multiplier (default 2.0)"),
                ParamSpec(
                    "deadline", float,
                    doc="seconds before a silent worker counts as hung "
                        "(default 30)"),
                ParamSpec(
                    "shards", int,
                    doc="worker processes for the sharded rung"),
                ParamSpec(
                    "chaos", dict,
                    doc="chaos policy data to activate for the run "
                        "(testing aid)"),
            )),
    )


_EXECUTORS: Dict[str, RegistryEntry] = {e.name: e for e in _executor_entries()}

#: The backend used when callers pass ``executor=None``.
DEFAULT_EXECUTOR = "pool"


def executor_registry() -> Dict[str, RegistryEntry]:
    """Mapping of every registered executor name to its entry."""
    return dict(_EXECUTORS)


def executor_names() -> Tuple[str, ...]:
    return tuple(_EXECUTORS)


def build_executor(name: str,
                   params: Optional[Dict[str, object]] = None) -> Executor:
    """Instantiate the named executor with schema-validated *params*."""
    try:
        entry = _EXECUTORS[name]
    except KeyError:
        raise RegistryError(
            f"unknown executor {name!r}; registered: "
            f"{sorted(_EXECUTORS)}") from None
    return entry.build(params)


def resolve_executor(executor: ExecutorSpec,
                     params: Optional[Dict[str, object]] = None
                     ) -> Tuple[Executor, bool]:
    """Normalise an executor argument to ``(instance, caller_owns_it)``.

    Accepts an :class:`Executor` instance (returned as-is, not owned — the
    caller that built it closes it), a registered name, or ``None`` for
    :data:`DEFAULT_EXECUTOR`.  Name/None resolutions are built fresh and
    owned by the caller of this function, which should close them.
    """
    if isinstance(executor, Executor):
        if params:
            raise ConfigurationError(
                "executor parameters apply to names, not to an already-built "
                "executor instance")
        return executor, False
    return build_executor(executor or DEFAULT_EXECUTOR, params), True
