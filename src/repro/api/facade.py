"""``execute`` / ``execute_many``: the one entry point every consumer shares.

The CLI, the E1–E9 experiment harness, the examples, and the benchmarks all
describe work as :class:`~repro.api.request.RunRequest` values and hand them
here.  :func:`execute` resolves the request through the registries, asks the
planner for an executor, runs the agreement instance under the planned engine
(without mutating the process-wide default), and returns a structured
:class:`~repro.api.request.RunReport`.

:func:`execute_many` is the sweep form: requests are distributed over a
process pool (they are plain-data dataclasses, so they pickle as-is), and
each worker re-plans its request locally — which is how eligible EIG cells
compound whole-run **batched stepping** with cross-cell **process
parallelism**.  The parent's ambient engine constraint (environment variable
or :func:`~repro.core.engine.set_default_engine`) is forwarded to workers so
spawn-started pools plan identically to the parent.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, List, Optional

from ..core.engine import ambient_engine, set_default_engine, use_engine
from ..runtime.simulation import run_agreement
from .planner import ExecutionPlan, plan_run
from .request import RunRequest, RunReport

_ENV_VAR = "REPRO_EIG_ENGINE"


def plan_request(request: RunRequest) -> ExecutionPlan:
    """Resolve *request* and return the planner's verdict without running it."""
    spec, config, faulty, _ = request.resolve_parts()
    return plan_run(request, spec, config, faulty)


def execute(request: RunRequest) -> RunReport:
    """Run one request end to end and return its :class:`RunReport`."""
    spec, config, faulty, adversary = request.resolve_parts()
    plan = plan_run(request, spec, config, faulty)
    with use_engine(plan.engine):
        result = run_agreement(spec, config, faulty, adversary,
                               seed=request.seed, batched=plan.batched)
    return RunReport.from_result(result, engine=request.engine,
                                 engine_resolved=plan.resolved,
                                 scenario=request.scenario, seed=request.seed)


def _pool_worker_init(ambient: Optional[str]) -> None:  # pragma: no cover - subprocess
    if ambient is not None:
        os.environ[_ENV_VAR] = ambient
        set_default_engine(ambient)


def execute_many(requests: Iterable[RunRequest], parallel: bool = True,
                 max_workers: Optional[int] = None) -> List[RunReport]:
    """Execute every request, preserving order; parallel over a process pool.

    Agreement instances are independent, so sweeps scale with the core count;
    requests whose plan resolves to the batched executor additionally step
    all their processors per round as single 2-D kernels *inside* their
    worker.  Falls back to in-process execution for a single request, for
    ``parallel=False``, or when the platform cannot spawn a pool.
    """
    requests = list(requests)
    if not requests:
        return []
    if not parallel or len(requests) == 1:
        return [execute(request) for request in requests]
    max_workers = max(1, min(max_workers or os.cpu_count() or 1,
                             len(requests)))
    if max_workers == 1:
        # A one-worker pool is serial execution plus fork overhead.
        return [execute(request) for request in requests]
    try:
        with ProcessPoolExecutor(max_workers=max_workers,
                                 initializer=_pool_worker_init,
                                 initargs=(ambient_engine(),)) as pool:
            return list(pool.map(execute, requests))
    except (OSError, PermissionError):  # pragma: no cover - sandboxed platforms
        return [execute(request) for request in requests]


def execute_grouped(groups: Iterable[Iterable[RunRequest]],
                    parallel: bool = True,
                    max_workers: Optional[int] = None
                    ) -> List[List[RunReport]]:
    """Run several request groups through **one** :func:`execute_many` call.

    The groups are flattened into a single sweep (one pool for everything,
    maximum cell-level parallelism) and the reports are handed back
    re-grouped, aligned with the input.  This is how grid-shaped consumers
    (the experiment harness) avoid paying pool startup once per group.
    """
    groups = [list(group) for group in groups]
    flat = execute_many([request for group in groups for request in group],
                        parallel=parallel, max_workers=max_workers)
    regrouped: List[List[RunReport]] = []
    cursor = 0
    for group in groups:
        regrouped.append(flat[cursor:cursor + len(group)])
        cursor += len(group)
    return regrouped
