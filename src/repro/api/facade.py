"""``execute`` / ``iter_execute`` / ``execute_many``: the shared entry points.

The CLI, the E1–E9 experiment harness, the examples, and the benchmarks all
describe work as :class:`~repro.api.request.RunRequest` values and hand them
here.  :func:`execute` resolves the request through the registries, asks the
planner for an engine, runs the agreement instance (without mutating the
process-wide default), and returns a structured
:class:`~repro.api.request.RunReport`.

Sweeps run on the pluggable execution layer (:mod:`repro.api.executors`):
:func:`iter_execute` streams ``(index, report)`` pairs through any executor
backend **as runs finish** — the primitive durable checkpointed sweeps
(:mod:`repro.api.sweep`) are built on — while :func:`execute_many` and
:func:`execute_grouped` keep their historical list-shaped signatures as thin
wrappers over the ``"pool"`` backend (one process per request slot, workers
re-planning locally so eligible EIG cells compound whole-run **batched
stepping** with cross-cell process parallelism, ambient engine constraints
forwarded to spawned workers).
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..core.engine import use_engine
from ..runtime.simulation import run_agreement
from .executors import ExecutorSpec, PoolExecutor, resolve_executor
from .planner import ExecutionPlan, plan_run
from .request import RunReport, RunRequest


def plan_request(request: RunRequest) -> ExecutionPlan:
    """Resolve *request* and return the planner's verdict without running it."""
    spec, config, faulty, adversary = request.resolve_parts()
    return plan_run(request, spec, config, faulty, adversary)


def execute(request: RunRequest) -> RunReport:
    """Run one request end to end and return its :class:`RunReport`."""
    spec, config, faulty, adversary = request.resolve_parts()
    plan = plan_run(request, spec, config, faulty, adversary)
    with use_engine(plan.engine):
        result = run_agreement(spec, config, faulty, adversary,
                               seed=request.seed, batched=plan.batched)
    return RunReport.from_result(result, engine=request.engine,
                                 engine_resolved=plan.resolved,
                                 scenario=request.scenario, seed=request.seed)


def execute_resilient(request: RunRequest, **options) -> RunReport:
    """Run one request under supervision: deadlines, retries, ladder.

    A one-shot convenience over the ``"supervised"`` executor backend —
    *options* are :class:`~repro.api.executors.SupervisedExecutor`
    constructor arguments (``ladder``, ``max_attempts``, ``deadline``,
    ``shards``, ``chaos``, …).  The report's ``metadata["resilience"]``
    documents every retry and downgrade that happened on the way; an
    undisturbed run carries none and is observationally identical to
    :func:`execute` (see
    :meth:`~repro.api.request.RunReport.outcome_dict`).
    """
    from .executors import SupervisedExecutor
    with SupervisedExecutor(**options) as runner:
        runner.submit(request)
        for _, report in runner.iter_reports():
            return report
    raise RuntimeError("supervised executor yielded no report")


def iter_execute(requests: Iterable[RunRequest],
                 executor: ExecutorSpec = None
                 ) -> Iterator[Tuple[int, RunReport]]:
    """Stream ``(index, report)`` pairs as the requests finish.

    *executor* selects the backend: an
    :class:`~repro.api.executors.Executor` instance (closed by its builder,
    not here), a registry name (``"serial"``, ``"pool"``, ``"sharded"``), or
    ``None`` for the default pool.  Indexes follow submission order; yield
    order is the backend's completion order, so a consumer can checkpoint or
    render results while later cells still run.
    """
    runner, owned = resolve_executor(executor)
    try:
        for request in requests:
            runner.submit(request)
        for index, report in runner.iter_reports():
            yield index, report
    finally:
        if owned:
            runner.close()


def execute_many(requests: Iterable[RunRequest], parallel: bool = True,
                 max_workers: Optional[int] = None) -> List[RunReport]:
    """Execute every request, preserving order; parallel over a process pool.

    Agreement instances are independent, so sweeps scale with the core count;
    requests whose plan resolves to the batched executor additionally step
    all their processors per round as single 2-D kernels *inside* their
    worker.  Falls back to in-process execution for a single request, for
    ``parallel=False``, or when the platform cannot spawn a pool.  (A thin
    wrapper over the ``"pool"`` executor backend — use :func:`iter_execute`
    for streaming or a different backend.)
    """
    requests = list(requests)
    if not requests:
        return []
    if not parallel or len(requests) == 1:
        return [execute(request) for request in requests]
    max_workers = max(1, min(max_workers or os.cpu_count() or 1,
                             len(requests)))
    if max_workers == 1:
        # A one-worker pool is serial execution plus fork overhead.
        return [execute(request) for request in requests]
    reports: Dict[int, RunReport] = {}
    with PoolExecutor(max_workers=max_workers) as runner:
        for request in requests:
            runner.submit(request)
        for index, report in runner.iter_reports():
            reports[index] = report
    return [reports[index] for index in range(len(requests))]


def execute_grouped(groups: Iterable[Iterable[RunRequest]],
                    parallel: bool = True,
                    max_workers: Optional[int] = None
                    ) -> List[List[RunReport]]:
    """Run several request groups through **one** :func:`execute_many` call.

    The groups are flattened into a single sweep (one pool for everything,
    maximum cell-level parallelism) and the reports are handed back
    re-grouped, aligned with the input.  This is how grid-shaped consumers
    (the experiment harness) avoid paying pool startup once per group.
    """
    groups = [list(group) for group in groups]
    flat = execute_many([request for group in groups for request in group],
                        parallel=parallel, max_workers=max_workers)
    regrouped: List[List[RunReport]] = []
    cursor = 0
    for group in groups:
        regrouped.append(flat[cursor:cursor + len(group)])
        cursor += len(group)
    return regrouped
