"""Name→factory registries for protocol specs and adversaries.

Every consumer of the package (CLI, experiment harness, examples, and any
future service endpoint) must be able to address an algorithm or an adversary
*by name with plain-data parameters*, because names and JSON scalars are what
cross process and wire boundaries.  The registries here are the single
authority for that naming:

* :func:`protocol_registry` — the paper's algorithms (Exponential, the A and
  B families, Algorithm C, the hybrid) plus the external baselines
  (Pease–Shostak–Lamport OM(m), phase king, authenticated Dolev–Strong);
* :func:`adversary_registry` — every Byzantine strategy of
  :mod:`repro.adversary`, from benign through the source-equivocation and
  stealth attacks.

Each entry declares its **parameter schema** (:class:`ParamSpec`): the
parameter names, types, defaults, and allowed choices an entry accepts.
:func:`build_protocol` / :func:`build_adversary` validate a plain-data
parameter mapping against the schema before instantiating, so a malformed
:class:`~repro.api.request.RunRequest` fails with a precise
:class:`RegistryError` instead of a ``TypeError`` deep inside a constructor.

The reverse direction, :func:`request_fields_for_spec`, recovers the
``(name, params)`` description of a live :class:`ProtocolSpec` instance —
this is how the experiment harness converts its spec-carrying
:class:`~repro.experiments.harness.ExperimentCell` objects into serializable
requests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Tuple

from ..adversary import Adversary
from ..adversary import adversary_registry as _adversary_factories
from ..baselines import (DolevStrongSpec, PeaseShostakLamportSpec,
                         PhaseKingSpec)
from ..core.algorithm_a import AlgorithmASpec
from ..core.algorithm_b import AlgorithmBSpec
from ..core.algorithm_c import AlgorithmCSpec
from ..core.exponential import ExponentialSpec
from ..core.hybrid import HybridSpec
from ..core.protocol import ProtocolSpec
from ..runtime.errors import ConfigurationError


class RegistryError(ConfigurationError):
    """Unknown registry name, unknown parameter, or invalid parameter value."""


@dataclass(frozen=True)
class ParamSpec:
    """Schema for one constructor parameter of a registry entry."""

    name: str
    kind: type
    default: object = None
    required: bool = False
    doc: str = ""
    choices: Optional[Tuple[object, ...]] = None

    def coerce(self, value: object, owner: str) -> object:
        """Validate *value* against this schema and return the typed value."""
        if self.kind is int:
            # bool is an int subclass; reject it so `true` is not a count.
            if isinstance(value, bool) or not isinstance(value, int):
                raise RegistryError(
                    f"{owner}: parameter {self.name!r} must be an integer, "
                    f"got {value!r}")
        elif self.kind is float and isinstance(value, int) \
                and not isinstance(value, bool):
            # JSON has one number type; an integral literal is a valid float.
            value = float(value)
        elif not isinstance(value, self.kind):
            raise RegistryError(
                f"{owner}: parameter {self.name!r} must be "
                f"{self.kind.__name__}, got {value!r}")
        if self.choices is not None and value not in self.choices:
            raise RegistryError(
                f"{owner}: parameter {self.name!r} must be one of "
                f"{self.choices}, got {value!r}")
        return value


@dataclass(frozen=True)
class RegistryEntry:
    """One named factory plus its declared parameter schema."""

    name: str
    factory: Callable[..., object]
    doc: str = ""
    params: Tuple[ParamSpec, ...] = ()

    @property
    def schema(self) -> Dict[str, ParamSpec]:
        return {p.name: p for p in self.params}

    def build(self, params: Optional[Mapping[str, object]] = None) -> object:
        """Instantiate the entry after validating *params* against the schema."""
        schema = self.schema
        supplied = dict(params or {})
        unknown = set(supplied) - set(schema)
        if unknown:
            raise RegistryError(
                f"{self.name}: unknown parameter(s) {sorted(unknown)}; "
                f"accepted: {sorted(schema) or '(none)'}")
        kwargs: Dict[str, object] = {}
        for spec in self.params:
            if spec.name in supplied:
                kwargs[spec.name] = spec.coerce(supplied[spec.name], self.name)
            elif spec.required:
                raise RegistryError(
                    f"{self.name}: missing required parameter {spec.name!r}")
        return self.factory(**kwargs)


_BLOCK_PARAM = ParamSpec(
    "b", int, required=True,
    doc="block parameter (rounds per gear-shifting block)")


def _protocol_entries() -> Tuple[RegistryEntry, ...]:
    return (
        RegistryEntry(
            "exponential", ExponentialSpec,
            doc="the (modified) Exponential Algorithm, t+1 rounds, O(n^t) bits",
            params=(ParamSpec("conversion", str, default="resolve",
                              choices=("resolve", "resolve_prime"),
                              doc="tree conversion: recursive majority or "
                                  "the threshold resolve'"),)),
        RegistryEntry(
            "algorithm-a", AlgorithmASpec,
            doc="Algorithm A(b): t + t/b + O(1) rounds, O(n^b) bits",
            params=(_BLOCK_PARAM,)),
        RegistryEntry(
            "algorithm-b", AlgorithmBSpec,
            doc="Algorithm B(b): repetition trees, t + 2t/b + O(1) rounds",
            params=(_BLOCK_PARAM,)),
        RegistryEntry(
            "algorithm-c", AlgorithmCSpec,
            doc="Algorithm C (Dolev–Reischuk–Strong adaptation): t+1 rounds, "
                "O(n) max message"),
        RegistryEntry(
            "hybrid", HybridSpec,
            doc="the Main Theorem's A→B→C hybrid",
            params=(_BLOCK_PARAM,)),
        RegistryEntry(
            "psl", PeaseShostakLamportSpec,
            doc="Pease–Shostak–Lamport OM(m) baseline"),
        RegistryEntry(
            "phase-king", PhaseKingSpec,
            doc="Berman–Garay–Perry phase-king baseline"),
        RegistryEntry(
            "dolev-strong", DolevStrongSpec,
            doc="authenticated Dolev–Strong baseline"),
    )


#: Parameter schemas and one-line docs for the adversaries that accept
#: constructor parameters / deserve a blurb.  The entry *list* itself is
#: derived from :func:`repro.adversary.adversary_registry` — the single
#: authority on which strategies exist — so a strategy added there becomes
#: addressable here automatically (with an empty schema until one is
#: declared).
_ADVERSARY_SCHEMAS: Dict[str, Tuple[ParamSpec, ...]] = {
    "crash": (ParamSpec("crash_round", int, default=2,
                        doc="round at which the faulty processors stop"),
              ParamSpec("partial_deliveries", int, default=0,
                        doc="destinations still reached mid-crash")),
    "staggered-crash": (ParamSpec("partial_deliveries", int, default=1),
                        ParamSpec("first_round", int, default=1)),
    "delayed-equivocation": (ParamSpec(
        "honest_rounds", int, default=2,
        doc="rounds of honest behaviour before lying"),),
    "minimal-exposure": (ParamSpec(
        "rounds_per_liar", int, default=2,
        doc="rounds each liar stays active"),),
    "transient-corruption": (
        ParamSpec("corrupt_rounds", int, default=1,
                  doc="length of the corruption prefix (rounds 1..k)"),
        ParamSpec("victims", int, default=1,
                  doc="correct processors corrupted per round"),
        ParamSpec("flips", int, default=1,
                  doc="stored values flipped per victim per round")),
    "send-omission": (ParamSpec(
        "rate_percent", int, default=50,
        doc="percent of (round, sender, dest) deliveries dropped"),),
    "receive-omission": (ParamSpec(
        "rate_percent", int, default=50,
        doc="percent of deliveries the faulty processors fail to receive"),),
    "crash-recovery": (
        ParamSpec("crash_round", int, default=2,
                  doc="first round of the outage (min 2)"),
        ParamSpec("silent_rounds", int, default=2,
                  doc="rounds of silence before rejoining with stale state")),
    "moving-target": (
        ParamSpec("active", int, default=1,
                  doc="how many of the faulty budget lie per round"),
        ParamSpec("rotate_every", int, default=1,
                  doc="rounds between rotations of the active window")),
}

_ADVERSARY_DOCS: Dict[str, str] = {
    "benign": "faulty processors follow the protocol to the letter",
    "crash": "every faulty processor stops at a fixed round",
    "staggered-crash": "one crash per round (the round-bound worst case)",
    "silent": "faulty processors are mute from round 1",
    "consistent-liar": "flips every relayed value, identically for all",
    "random-liar": "seeded random lies per destination",
    "two-faced": "partitions the correct processors and tells each side a "
                 "different story",
    "echo-suppressor": "withholds echoes about chosen processors",
    "two-faced-source": "the source equivocates, allies relay honestly",
    "equivocating-source-allies": "equivocating source with colluding relays",
    "delayed-equivocation": "behaves for a while, then splits the world",
    "stealth-path": "lies only where the discovery thresholds cannot fire",
    "minimal-exposure": "sacrifices one liar per block (worst-case round "
                        "counts)",
    "transient-corruption": "flips stored state of correct processors for a "
                            "bounded prefix of rounds",
    "send-omission": "faulty senders whose messages are dropped per "
                     "destination at a seeded rate",
    "receive-omission": "faulty processors fail to receive, then honestly "
                        "relay the gapped view",
    "crash-recovery": "silent for k rounds, then rejoins with stale state",
    "moving-target": "the actively-lying subset migrates within the t "
                     "budget per round",
}


def _adversary_entries() -> Tuple[RegistryEntry, ...]:
    return tuple(
        RegistryEntry(name, factory, doc=_ADVERSARY_DOCS.get(name, ""),
                      params=_ADVERSARY_SCHEMAS.get(name, ()))
        for name, factory in _adversary_factories().items())


_PROTOCOLS: Dict[str, RegistryEntry] = {e.name: e for e in _protocol_entries()}
_ADVERSARIES: Dict[str, RegistryEntry] = {e.name: e for e in _adversary_entries()}


def protocol_registry() -> Dict[str, RegistryEntry]:
    """Mapping of every registered protocol name to its entry."""
    return dict(_PROTOCOLS)


def adversary_registry() -> Dict[str, RegistryEntry]:
    """Mapping of every registered adversary name to its entry."""
    return dict(_ADVERSARIES)


def protocol_names() -> Tuple[str, ...]:
    return tuple(_PROTOCOLS)


def adversary_names() -> Tuple[str, ...]:
    return tuple(_ADVERSARIES)


def _lookup(table: Dict[str, RegistryEntry], kind: str, name: str) -> RegistryEntry:
    try:
        return table[name]
    except KeyError:
        raise RegistryError(
            f"unknown {kind} {name!r}; registered: {sorted(table)}") from None


def build_protocol(name: str,
                   params: Optional[Mapping[str, object]] = None) -> ProtocolSpec:
    """Instantiate the named protocol spec with schema-validated *params*."""
    return _lookup(_PROTOCOLS, "protocol", name).build(params)


def build_adversary(name: str,
                    params: Optional[Mapping[str, object]] = None) -> Adversary:
    """Instantiate the named adversary with schema-validated *params*."""
    return _lookup(_ADVERSARIES, "adversary", name).build(params)


#: ProtocolSpec type → (registry name, params extractor).  The extractor
#: returns only the parameters that differ from the schema defaults, so the
#: recovered request is minimal and round-trips through the registry.
_SPEC_FIELDS: Dict[type, Tuple[str, Callable[[ProtocolSpec], Dict[str, object]]]] = {
    ExponentialSpec: ("exponential",
                      lambda s: ({} if s.conversion == "resolve"
                                 else {"conversion": s.conversion})),
    AlgorithmASpec: ("algorithm-a", lambda s: {"b": s.b}),
    AlgorithmBSpec: ("algorithm-b", lambda s: {"b": s.b}),
    AlgorithmCSpec: ("algorithm-c", lambda s: {}),
    HybridSpec: ("hybrid", lambda s: {"b": s.b}),
    PeaseShostakLamportSpec: ("psl", lambda s: {}),
    PhaseKingSpec: ("phase-king", lambda s: {}),
    DolevStrongSpec: ("dolev-strong", lambda s: {}),
}


def request_fields_for_spec(spec: ProtocolSpec) -> Tuple[str, Dict[str, object]]:
    """The ``(registry name, params)`` that rebuild an equivalent of *spec*."""
    try:
        name, extract = _SPEC_FIELDS[type(spec)]
    except KeyError:
        raise RegistryError(
            f"protocol spec {type(spec).__name__} is not in the registry; "
            f"registered: {sorted(_PROTOCOLS)}") from None
    return name, extract(spec)
