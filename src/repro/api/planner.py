"""The execution planner: resolve a request's ``engine`` to a concrete executor.

Before this module existed, engine choice was scattered plumbing: callers
threaded ``batched=`` flags into :func:`repro.runtime.simulation.run_agreement`
and exported ``REPRO_EIG_ENGINE`` for the process pool by hand.  The planner
centralises the decision.  Given a :class:`~repro.api.request.RunRequest` and
the spec/config it resolves to, :func:`plan_run` returns an
:class:`ExecutionPlan` saying which per-processor engine to install and
whether to take the batched whole-run path.

Resolution rules
----------------
``engine="auto"`` (the default) picks the fastest executor the run is
eligible for::

    batched  — numpy importable and the spec steps plain EIG machines
               (Exponential, Algorithms A and B)
    numpy    — numpy importable (non-EIG specs, or batched-ineligible runs)
    fast     — always available
    reference— never chosen automatically; it exists to be asked for

unless the *environment* constrains the choice: ``REPRO_EIG_ENGINE`` or a
:func:`~repro.core.engine.set_default_engine` call naming ``"fast"`` or
``"reference"`` pins auto to that per-processor engine (an oracle or
no-vectorization run stays one); an ambient ``"numpy"`` still upgrades to
batched where eligible, because batched *is* the numpy layer.

An **explicit** engine on the request always wins over the ambient settings —
with a :class:`RuntimeWarning` naming both sides when they conflict, never
silently.  An explicit ``"batched"`` on an ineligible run degrades to the best
per-processor engine, also with a warning.

The planner decides the *engine*; the *executor backend* a run is placed on
(:mod:`repro.api.executors` — serial, pool, or the sharded large-``n``
backend) is orthogonal and chosen by the caller.  :func:`plan_shardable`
answers the one question that couples them: whether a run's plan would let
the sharded backend split its row stack (exactly the batched-eligible runs).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, FrozenSet, Optional

from ..core.engine import (BATCHED, FAST, NUMPY, REFERENCE, ambient_engine,
                           numpy_available, validate_engine)
from .request import AUTO, RunRequest

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..core.protocol import ProtocolConfig, ProtocolSpec


@dataclass(frozen=True)
class ExecutionPlan:
    """The planner's verdict for one run."""

    #: The per-processor engine to install for the run's duration.
    engine: str
    #: Whether to take the batched whole-run executor.
    batched: bool
    #: What the request asked for (``"auto"`` included).
    requested: str
    #: The ambient constraint the planner saw, if any.
    ambient: Optional[str]
    #: One line of human-readable justification (surfaces in ``--json`` docs).
    reason: str

    @property
    def resolved(self) -> str:
        """The executor name recorded in run metadata."""
        return BATCHED if self.batched else self.engine


def batched_ineligibility(spec: "ProtocolSpec", config: "ProtocolConfig",
                          faulty: FrozenSet[int] = frozenset(),
                          adversary=None) -> Optional[str]:
    """Why this run cannot take the batched path — ``None`` means eligible.

    The single authority the planner, the sharded executor, and ``repro
    validate`` consult.  The checks mirror
    :func:`~repro.runtime.batched.run_batched_if_supported` in order: an
    adversary that declares a
    :attr:`~repro.adversary.base.Adversary.batched_fallback_reason` declines
    first (its string is returned verbatim), then numpy availability, then
    the spec probe, then the degenerate no-participant case.
    """
    reason = getattr(adversary, "batched_fallback_reason", None)
    if reason is not None:
        return str(reason)
    if not numpy_available():
        return "numpy is not importable"
    from ..runtime.batched import batched_supported
    if not batched_supported(spec, config):
        return (f"{spec.name} does not build plain shifting-EIG machines "
                f"(only those step as one row stack)")
    # The batched runner also declines degenerate runs where no correct
    # non-source processor participates; plan the fallback it would take so
    # the report's engine metadata matches what actually executed.
    if not any(p not in faulty and p != config.source
               for p in config.processors):
        return "no correct non-source processor participates"
    return None


def _batched_eligible(spec: "ProtocolSpec", config: "ProtocolConfig",
                      faulty: FrozenSet[int], adversary=None) -> bool:
    return batched_ineligibility(spec, config, faulty, adversary) is None


def plan_shardable(spec: "ProtocolSpec", config: "ProtocolConfig",
                   faulty: FrozenSet[int] = frozenset(),
                   adversary=None) -> bool:
    """Whether the sharded run executor could row-split this run.

    True exactly when the run is batched-eligible — the sharded backend is
    the batched engine with its row stack partitioned across processes, so
    the two share one eligibility rule.  Ineligible runs placed on a
    ``"sharded"`` executor fall back to the ordinary planner path.  (An
    adversary with a corruption hook still plans as shardable: the sharded
    executor runs it single-process batched, preserving observational
    identity.)
    """
    return _batched_eligible(spec, config, faulty, adversary)


def plan_run(request: RunRequest, spec: "ProtocolSpec",
             config: "ProtocolConfig",
             faulty: FrozenSet[int] = frozenset(),
             adversary=None) -> ExecutionPlan:
    """Resolve *request*'s engine choice against eligibility and environment."""
    requested = request.engine
    ambient = ambient_engine()

    if requested == AUTO:
        if ambient in (FAST, REFERENCE):
            return ExecutionPlan(
                engine=ambient, batched=False, requested=requested,
                ambient=ambient,
                reason=f"auto deferred to the ambient {ambient!r} engine "
                       f"(REPRO_EIG_ENGINE / set_default_engine)")
        if _batched_eligible(spec, config, faulty, adversary):
            return ExecutionPlan(
                engine=NUMPY, batched=True, requested=requested,
                ambient=ambient,
                reason="auto: EIG spec eligible for whole-run batched "
                       "stepping")
        if numpy_available():
            return ExecutionPlan(
                engine=NUMPY, batched=False, requested=requested,
                ambient=ambient,
                reason="auto: batched-ineligible spec on the vectorized "
                       "numpy engine")
        return ExecutionPlan(
            engine=FAST, batched=False, requested=requested, ambient=ambient,
            reason="auto: numpy unavailable, flat-array fast engine")

    if requested == BATCHED:
        if ambient not in (None, NUMPY):
            warnings.warn(
                f"explicit engine='batched' overrides the ambient "
                f"{ambient!r} engine (REPRO_EIG_ENGINE / set_default_engine)",
                RuntimeWarning, stacklevel=3)
        if _batched_eligible(spec, config, faulty, adversary):
            return ExecutionPlan(
                engine=NUMPY, batched=True, requested=requested,
                ambient=ambient, reason="explicit batched request")
        fallback = NUMPY if numpy_available() else FAST
        ineligible = batched_ineligibility(spec, config, faulty, adversary)
        warnings.warn(
            f"engine='batched' is not supported for this run "
            f"({ineligible}); using the per-processor {fallback!r} engine "
            f"instead",
            RuntimeWarning, stacklevel=3)
        return ExecutionPlan(
            engine=fallback, batched=False, requested=requested,
            ambient=ambient,
            reason=f"batched unsupported here; per-processor {fallback!r} "
                   f"fallback")

    # An explicit per-processor engine: it wins over the ambient settings,
    # loudly when they disagree.
    engine = validate_engine(requested)
    if ambient is not None and ambient != engine:
        warnings.warn(
            f"explicit engine={engine!r} overrides the ambient {ambient!r} "
            f"engine (REPRO_EIG_ENGINE / set_default_engine)",
            RuntimeWarning, stacklevel=3)
    return ExecutionPlan(engine=engine, batched=False, requested=requested,
                         ambient=ambient,
                         reason=f"explicit {engine!r} request")
