"""Serializable run descriptions: :class:`RunRequest` and :class:`RunReport`.

A :class:`RunRequest` is a complete, plain-data description of one agreement
execution — protocol name and parameters, instance size, the faulty set (or a
named workload scenario), adversary name and parameters, seed, and the engine
choice — that survives ``json.dumps``/``json.loads`` exactly.  A
:class:`RunReport` is the structured outcome: decisions, the
agreement/validity verdicts, round and cost metrics, fault discoveries, and
the engine the planner actually used.  Both round-trip through
``to_dict``/``from_dict`` without loss, which is what lets runs cross process
boundaries (the parallel executor), the CLI's ``--json`` output, and any
future wire protocol.

The faulty set can be given two ways, mirroring how the harness works:

* ``faulty=(...)`` with an ``adversary`` name — explicit control;
* ``scenario="faulty-source-allies", battery="worst-case"`` — one of the
  named workload scenarios of :mod:`repro.experiments.workloads`; the
  scenario supplies both the faulty set and the adversary, so ``adversary``
  and ``faulty`` must be left at their defaults.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from ..core.protocol import ProtocolConfig
from ..core.values import DEFAULT_VALUE, Value, default_domain
from ..runtime.errors import ConfigurationError

#: Engine choices a request accepts: the planner sentinel ``"auto"``, the
#: batched whole-run executor, and the three per-processor engines.
ENGINE_CHOICES = ("auto", "batched", "numpy", "fast", "reference")

AUTO = "auto"

#: How a sweep assigns per-request seeds: keep each request's own seed, or
#: derive one deterministically from the sweep seed and the request index.
SEED_POLICIES = ("fixed", "derive")


def derive_seed(sweep_seed: int, index: int) -> int:
    """The deterministic seed of request *index* in a ``seed_policy="derive"`` sweep.

    A stable cryptographic hash (not Python's salted ``hash``) of the sweep
    seed and the request's position — SHA-256 of the domain-tagged string
    ``"repro-sweep:{sweep_seed}:{index}"``, first 8 bytes big-endian,
    truncated to a non-negative 63-bit value — so resumed, re-serialized,
    or cross-process sweeps reproduce the exact executions of the original
    run.  63 bits keeps derived seeds pairwise distinct in practice: the
    birthday bound expects a collision only past ~3×10⁹ indices, where the
    earlier 31-bit truncation already expected ~2 collisions within one
    10⁵-trial Monte-Carlo window.
    """
    digest = hashlib.sha256(
        f"repro-sweep:{sweep_seed}:{index}".encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFFFFFFFFFFFFFF


def _int_keyed(mapping: Mapping[Any, Any], convert) -> Dict[int, Any]:
    """Rebuild a JSON-stringified int-keyed mapping with *convert* on values."""
    return {int(key): convert(value) for key, value in mapping.items()}


@dataclass(frozen=True)
class RunRequest:
    """A JSON-round-trippable description of one agreement execution."""

    protocol: str
    n: int
    t: int
    protocol_params: Mapping[str, Any] = field(default_factory=dict)
    source: int = 0
    initial_value: Value = DEFAULT_VALUE
    domain: Tuple[Value, ...] = field(default_factory=default_domain)
    faulty: Optional[Tuple[int, ...]] = None
    scenario: Optional[str] = None
    battery: str = "standard"
    adversary: str = "benign"
    adversary_params: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0
    engine: str = AUTO
    allow_unsafe: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "protocol_params", dict(self.protocol_params))
        object.__setattr__(self, "adversary_params", dict(self.adversary_params))
        object.__setattr__(self, "domain", tuple(self.domain))
        if self.faulty is not None:
            object.__setattr__(self, "faulty",
                               tuple(sorted(int(p) for p in self.faulty)))
        if self.engine not in ENGINE_CHOICES:
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; expected one of "
                f"{ENGINE_CHOICES}")
        if self.scenario is not None:
            if self.faulty is not None:
                raise ConfigurationError(
                    "a request names either a scenario or an explicit faulty "
                    "set, not both")
            if self.adversary != "benign" or self.adversary_params:
                raise ConfigurationError(
                    "a scenario supplies its own adversary; leave the "
                    "request's adversary fields at their defaults")

    # -- construction helpers ------------------------------------------------
    def config(self) -> ProtocolConfig:
        return ProtocolConfig(n=self.n, t=self.t, source=self.source,
                              initial_value=self.initial_value,
                              domain=self.domain,
                              allow_unsafe=self.allow_unsafe)

    def resolve_parts(self):
        """Build the executable pieces: ``(spec, config, faulty, adversary)``.

        Registry and scenario lookups happen here (not in ``__post_init__``)
        so that requests deserialized from untrusted input fail with a precise
        :class:`~repro.api.registries.RegistryError` at execution time.
        """
        from .registries import build_adversary, build_protocol
        spec = build_protocol(self.protocol, self.protocol_params)
        config = self.config()
        if self.scenario is not None:
            scenario = self._resolve_scenario()
            return spec, config, scenario.faulty, scenario.adversary()
        return (spec, config, frozenset(self.faulty or ()),
                build_adversary(self.adversary, self.adversary_params))

    def _resolve_scenario(self):
        # Imported lazily: repro.experiments imports this module's consumers.
        from ..experiments.workloads import SCENARIO_BATTERIES
        try:
            battery = SCENARIO_BATTERIES[self.battery]
        except KeyError:
            raise ConfigurationError(
                f"unknown scenario battery {self.battery!r}; expected one of "
                f"{sorted(SCENARIO_BATTERIES)}") from None
        for scenario in battery(self.n, self.t, source=self.source):
            if scenario.name == self.scenario:
                return scenario
        raise ConfigurationError(
            f"battery {self.battery!r} at (n={self.n}, t={self.t}) has no "
            f"scenario named {self.scenario!r}")

    def with_engine(self, engine: str) -> "RunRequest":
        return replace(self, engine=engine)

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "protocol": self.protocol,
            "protocol_params": dict(self.protocol_params),
            "n": self.n,
            "t": self.t,
            "source": self.source,
            "initial_value": self.initial_value,
            "domain": list(self.domain),
            "faulty": None if self.faulty is None else list(self.faulty),
            "scenario": self.scenario,
            "battery": self.battery,
            "adversary": self.adversary,
            "adversary_params": dict(self.adversary_params),
            "seed": self.seed,
            "engine": self.engine,
        }
        # Serialized only when set, so every pre-existing request fixture
        # (and its hash) is byte-identical.
        if self.allow_unsafe:
            data["allow_unsafe"] = True
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunRequest":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416 - py3.8 compat
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown RunRequest field(s) {sorted(unknown)}; "
                f"accepted: {sorted(known)}")
        kwargs = dict(data)
        if kwargs.get("faulty") is not None:
            kwargs["faulty"] = tuple(kwargs["faulty"])
        if "domain" in kwargs:
            kwargs["domain"] = tuple(kwargs["domain"])
        return cls(**kwargs)


@dataclass(frozen=True)
class SweepSpec:
    """A serializable sweep: requests + executor choice + seed policy.

    The sweep twin of :class:`RunRequest`: everything needed to (re)run a
    whole sweep — the request list, the executor backend it should run on
    (a :func:`~repro.api.executors.executor_registry` name plus plain-data
    parameters), and how per-request seeds are assigned — survives
    ``json.dumps``/``json.loads`` exactly.  Checkpointed sweeps
    (:mod:`repro.api.sweep`) hash the canonical serialization, so a resume
    against a different sweep is refused instead of silently merged.

    ``seed_policy="fixed"`` runs every request with the seed it carries;
    ``"derive"`` replaces each seed with :func:`derive_seed(sweep_seed,
    index) <derive_seed>`, making resumed and re-executed sweeps reproduce
    the original executions exactly.
    """

    requests: Tuple[RunRequest, ...]
    executor: str = "pool"
    executor_params: Mapping[str, Any] = field(default_factory=dict)
    seed_policy: str = "fixed"
    sweep_seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "requests", tuple(self.requests))
        object.__setattr__(self, "executor_params",
                           dict(self.executor_params))
        for request in self.requests:
            if not isinstance(request, RunRequest):
                raise ConfigurationError(
                    f"a sweep holds RunRequest values, got {request!r}")
        if self.seed_policy not in SEED_POLICIES:
            raise ConfigurationError(
                f"unknown seed policy {self.seed_policy!r}; expected one of "
                f"{SEED_POLICIES}")

    def resolved_requests(self) -> Tuple[RunRequest, ...]:
        """The requests as they will execute, seed policy applied."""
        if self.seed_policy == "fixed":
            return self.requests
        return tuple(replace(request, seed=derive_seed(self.sweep_seed, i))
                     for i, request in enumerate(self.requests))

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "requests": [request.to_dict() for request in self.requests],
            "executor": self.executor,
            "executor_params": dict(self.executor_params),
            "seed_policy": self.seed_policy,
            "sweep_seed": self.sweep_seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown SweepSpec field(s) {sorted(unknown)}; "
                f"accepted: {sorted(known)}")
        requests = data.get("requests")
        if not isinstance(requests, Sequence) or isinstance(requests, str):
            raise ConfigurationError(
                "a serialized sweep needs a \"requests\" list")
        kwargs = dict(data)
        kwargs["requests"] = tuple(
            request if isinstance(request, RunRequest)
            else RunRequest.from_dict(request)
            for request in requests)
        return cls(**kwargs)


@dataclass(frozen=True)
class RunReport:
    """The structured, serializable outcome of one executed request."""

    protocol: str
    adversary: str
    n: int
    t: int
    source: int
    initial_value: Value
    faulty: Tuple[int, ...]
    scenario: Optional[str]
    seed: int
    engine: str
    engine_resolved: str
    rounds: int
    decisions: Dict[int, Value]
    agreement: bool
    validity: Optional[bool]
    succeeded: bool
    decision_value: Optional[Value]
    discovered: Dict[int, Tuple[int, ...]]
    discovery_logs: Dict[int, Dict[int, int]]
    discovery_sound: bool
    metrics: Dict[str, int]
    #: Execution-side annotations.  The reserved key ``"resilience"`` holds
    #: the structured audit trail written by the supervision machinery
    #: (:mod:`repro.runtime.supervision`): a list of plain dicts, each with
    #: an ``"event"`` of ``"retry"`` / ``"downgrade"`` / ``"skip"`` /
    #: ``"completed"`` plus stage, attempt, error-class, and delay fields —
    #: one entry per recovery step the executor or checkpoint writer took.
    #: Not part of the outcome: two reports for the same execution compare
    #: equal only when their metadata also matches, so executors record
    #: nothing for an undisturbed run (and :meth:`outcome_dict` compares
    #: reports across execution paths).
    metadata: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_result(cls, result, *, engine: str, engine_resolved: str,
                    scenario: Optional[str] = None, seed: int = 0
                    ) -> "RunReport":
        """Distil a :class:`~repro.runtime.simulation.RunResult` into a report."""
        agreement = result.agreement
        return cls(
            protocol=result.protocol,
            adversary=result.adversary,
            n=result.config.n,
            t=result.config.t,
            source=result.config.source,
            initial_value=result.config.initial_value,
            faulty=tuple(sorted(result.faulty)),
            scenario=scenario,
            seed=seed,
            engine=engine,
            engine_resolved=engine_resolved,
            rounds=result.rounds,
            decisions=dict(result.decisions),
            agreement=agreement,
            validity=result.validity,
            succeeded=result.succeeded,
            decision_value=result.decision_value if agreement else None,
            discovered={pid: tuple(found)
                        for pid, found in result.discovered.items()},
            discovery_logs={pid: dict(log)
                            for pid, log in result.discovery_logs.items()},
            discovery_sound=result.soundness_of_discovery(),
            metrics=dict(result.metrics.summary()),
        )

    @property
    def faults(self) -> int:
        return len(self.faulty)

    def summary(self) -> Dict[str, Any]:
        """A flat row for tabular reporting (superset of the legacy layout)."""
        row: Dict[str, Any] = {
            "protocol": self.protocol,
            "adversary": self.adversary,
            "n": self.n,
            "t": self.t,
            "faults": self.faults,
            "rounds": self.rounds,
            "agreement": self.agreement,
            "validity": self.validity,
        }
        row.update(self.metrics)
        row["engine"] = self.engine_resolved
        return row

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "protocol": self.protocol,
            "adversary": self.adversary,
            "n": self.n,
            "t": self.t,
            "source": self.source,
            "initial_value": self.initial_value,
            "faulty": list(self.faulty),
            "scenario": self.scenario,
            "seed": self.seed,
            "engine": self.engine,
            "engine_resolved": self.engine_resolved,
            "rounds": self.rounds,
            "decisions": {str(pid): value
                          for pid, value in self.decisions.items()},
            "agreement": self.agreement,
            "validity": self.validity,
            "succeeded": self.succeeded,
            "decision_value": self.decision_value,
            "discovered": {str(pid): list(found)
                           for pid, found in self.discovered.items()},
            "discovery_logs": {
                str(pid): {str(r): count for r, count in log.items()}
                for pid, log in self.discovery_logs.items()},
            "discovery_sound": self.discovery_sound,
            "metrics": dict(self.metrics),
        }
        if self.metadata:  # omitted when empty: keeps old fixtures valid
            data["metadata"] = dict(self.metadata)
        return data

    def outcome_dict(self) -> Dict[str, Any]:
        """The serialized *outcome* alone: :meth:`to_dict` minus how it ran.

        Drops ``engine``, ``engine_resolved``, and ``metadata`` — the
        execution-side fields that legitimately differ when the same request
        runs on different substrates (a supervised run that downgraded from
        ``sharded`` to ``serial``, a pool run that retried).  Two executions
        of the same request are observationally identical iff their
        ``outcome_dict`` values are equal — the property the chaos suite
        asserts byte-for-byte.
        """
        data = self.to_dict()
        for execution_side in ("engine", "engine_resolved", "metadata"):
            data.pop(execution_side, None)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunReport":
        return cls(
            protocol=data["protocol"],
            adversary=data["adversary"],
            n=data["n"],
            t=data["t"],
            source=data["source"],
            initial_value=data["initial_value"],
            faulty=tuple(data["faulty"]),
            scenario=data.get("scenario"),
            seed=data.get("seed", 0),
            engine=data["engine"],
            engine_resolved=data["engine_resolved"],
            rounds=data["rounds"],
            decisions=_int_keyed(data["decisions"], lambda v: v),
            agreement=data["agreement"],
            validity=data["validity"],
            succeeded=data["succeeded"],
            decision_value=data.get("decision_value"),
            discovered=_int_keyed(data["discovered"], tuple),
            discovery_logs=_int_keyed(
                data["discovery_logs"],
                lambda log: _int_keyed(log, lambda c: c)),
            discovery_sound=data["discovery_sound"],
            metrics=dict(data["metrics"]),
            metadata=dict(data.get("metadata", {})),
        )
