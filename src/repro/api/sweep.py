"""Durable sweeps: streaming execution with a JSONL checkpoint log.

A sweep of hundreds of agreement runs should survive a crash without
re-running what already finished.  :func:`iter_sweep` streams a
:class:`~repro.api.request.SweepSpec` through an executor and, when given a
checkpoint path, appends one JSON line per completed request **as it
finishes** (flushed immediately, so a killed process loses at most the run
in flight).  ``resume=True`` replays the log first: completed requests are
yielded from the log and skipped by the executor, and the merged report set
equals an uninterrupted run — exactly, when the sweep's seed policy is
``"derive"`` (per-request seeds are positional, not stateful).

Checkpoint format (one JSON object per line)::

    {"kind": "repro-sweep-checkpoint", "version": 1,
     "total": 12, "sweep_sha256": "..."}          # header line
    {"index": 0, "report": { ...RunReport... }}   # one line per completion
    {"index": 3, "report": { ... }}               # completion order, not
    ...                                           # submission order

The header pins the sweep's canonical SHA-256
(:func:`sweep_digest`), so resuming against a *different* sweep — edited
requests, another executor, a changed seed policy — fails loudly instead of
merging unrelated results.  A truncated final line (the crash happened
mid-write) is ignored; an unparseable line anywhere *earlier* is corruption
and refused.  A request checkpointed twice (e.g. a retried cell) resolves
last-write-wins, matching append order.

Durability: headers are created **atomically** (written to a temp file and
renamed into place), so a crash during creation leaves no torn header;
completion appends retry transient I/O failures a bounded number of times,
truncating any torn tail before each retry and recording the recovery in the
report's ``metadata["resilience"]``; ``fsync=True`` upgrades the
flush-per-line default to fsync-per-line for power-loss durability.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from typing import Dict, Iterator, List, Optional, Tuple

from ..runtime.chaos import chaos_scope, current_chaos
from ..runtime.errors import CheckpointWriteError, ConfigurationError
from ..runtime.supervision import RetryPolicy, checkpoint_retry_event
from .executors import ExecutorSpec, resolve_executor
from .request import RunReport, SweepSpec

CHECKPOINT_KIND = "repro-sweep-checkpoint"
CHECKPOINT_VERSION = 1

#: Bounded retry for completion appends (transient ENOSPC / EIO survive).
_WRITE_RETRY = RetryPolicy(max_attempts=3, base_delay=0.01)


def sweep_digest(spec: SweepSpec) -> str:
    """The canonical SHA-256 of a sweep (what a checkpoint header pins)."""
    canonical = json.dumps(spec.to_dict(), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def read_checkpoint(path: str, spec: SweepSpec) -> Dict[int, RunReport]:
    """The completed ``{index: report}`` entries of a checkpoint log.

    Validates the header against *spec* (kind, version, sweep digest) and
    tolerates a truncated final line.  An empty or missing file reads as no
    completions.
    """
    if not os.path.exists(path):
        return {}
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    if not lines:
        return {}
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError:
        if len(lines) == 1:
            # Headers are created atomically (temp file + rename), so a
            # lone unparseable line means the file predates that scheme and
            # a crash tore its creation — there is nothing to resume.
            raise ConfigurationError(
                f"{path} has a torn header line and no completions — "
                f"likely a crash while the checkpoint was being created; "
                f"delete the file to start the sweep fresh")
        raise ConfigurationError(
            f"{path} is not a sweep checkpoint (unreadable header line)")
    if not isinstance(header, dict) or header.get("kind") != CHECKPOINT_KIND:
        raise ConfigurationError(
            f"{path} is not a sweep checkpoint (expected a "
            f"{CHECKPOINT_KIND!r} header)")
    if header.get("version") != CHECKPOINT_VERSION:
        raise ConfigurationError(
            f"{path} is a version {header.get('version')} checkpoint; this "
            f"build reads version {CHECKPOINT_VERSION}")
    digest = sweep_digest(spec)
    if header.get("sweep_sha256") != digest:
        raise ConfigurationError(
            f"{path} was recorded for a different sweep "
            f"(checkpoint {str(header.get('sweep_sha256'))[:12]}…, this "
            f"sweep {digest[:12]}…); refusing to merge unrelated results")
    completed: Dict[int, RunReport] = {}
    total = len(spec.requests)
    body = lines[1:]
    for position, line in enumerate(body):
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            if position == len(body) - 1:
                break  # truncated final line: the crash happened mid-write
            # Mid-file garbage is not a crash artifact (appends are
            # newline-terminated and flushed): the log is corrupt, and
            # silently dropping the line would also drop every completion
            # after it.  Refuse rather than resume from a lie.
            raise ConfigurationError(
                f"{path} has an unparseable line before the end of the log "
                f"(line {position + 2}): {line[:80]!r}; the checkpoint is "
                f"corrupt — repair or delete it to re-run the sweep")
        if not isinstance(entry, dict) or not isinstance(
                entry.get("report"), dict):
            raise ConfigurationError(
                f"{path} has a malformed completion line (expected an "
                f"object with \"index\" and \"report\"): {line[:80]!r}")
        index = entry.get("index")
        if not isinstance(index, int) or not 0 <= index < total:
            raise ConfigurationError(
                f"{path} names request index {index!r}, outside this "
                f"sweep's 0..{total - 1}")
        completed[index] = RunReport.from_dict(entry["report"])
    return completed


def _write_header(handle, spec: SweepSpec, fsync: bool = False) -> None:
    handle.write(json.dumps({
        "kind": CHECKPOINT_KIND,
        "version": CHECKPOINT_VERSION,
        "total": len(spec.requests),
        "sweep_sha256": sweep_digest(spec),
    }, sort_keys=True) + "\n")
    handle.flush()
    if fsync:
        os.fsync(handle.fileno())


def _create_checkpoint(path: str, spec: SweepSpec, fsync: bool) -> None:
    """Create a fresh checkpoint atomically: header to a temp file, then rename.

    A crash anywhere before the :func:`os.replace` leaves no file at *path*
    (only a stray temp file), never a torn header — so a later resume cannot
    mistake a half-written header for corruption.
    """
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            _write_header(handle, spec, fsync=fsync)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def _append_completion(log, path: str, index: int, report: RunReport,
                       fsync: bool, write_counter: int) -> None:
    """Append one completion line, retrying transient failures bounded times.

    Before each retry the torn tail of the failed write is truncated away
    (the offset was captured up front), so the log never accumulates partial
    lines, and a :func:`checkpoint_retry_event` is recorded on the report's
    ``metadata["resilience"]`` — which re-serializes into the retried line,
    making the recovery itself durable.
    """
    controller = current_chaos()
    line = json.dumps({"index": index, "report": report.to_dict()},
                      sort_keys=True) + "\n"
    for attempt in range(1, _WRITE_RETRY.max_attempts + 1):
        offset = log.tell()
        try:
            if controller is not None and controller.take(
                    "checkpoint-write", index=write_counter):
                raise OSError("chaos: simulated checkpoint append failure")
            log.write(line)
            log.flush()
            if fsync:
                os.fsync(log.fileno())
            return
        except OSError as exc:
            log.truncate(offset)
            if attempt >= _WRITE_RETRY.max_attempts:
                raise CheckpointWriteError(
                    f"checkpoint {path} append for request {index} failed "
                    f"{attempt} times; last error: {exc}") from exc
            delay = _WRITE_RETRY.delay(f"checkpoint:{path}:{index}", attempt)
            report.metadata.setdefault("resilience", []).append(
                checkpoint_retry_event(attempt, exc, delay))
            line = json.dumps({"index": index, "report": report.to_dict()},
                              sort_keys=True) + "\n"
            time.sleep(delay)


def iter_sweep(spec: SweepSpec, checkpoint: Optional[str] = None,
               resume: bool = False, executor: ExecutorSpec = None,
               fsync: bool = False, chaos: object = None
               ) -> Iterator[Tuple[int, RunReport]]:
    """Stream a sweep's ``(index, report)`` pairs, checkpointing as they finish.

    Already-completed requests (``resume=True`` with an existing checkpoint)
    are yielded first, straight from the log; the rest stream from the
    executor in completion order.  *executor* overrides the spec's backend
    choice (an :class:`~repro.api.executors.Executor` instance or registry
    name); ``None`` builds the spec's own ``executor``/``executor_params``.

    ``fsync=True`` additionally fsyncs the checkpoint after the header and
    every completion append — durability against power loss, at a per-line
    syscall cost (the default ``flush`` already survives process death).
    *chaos* optionally activates a :class:`~repro.runtime.chaos.ChaosPolicy`
    (or controller, or plain policy data) for the sweep's duration.
    """
    requests = spec.resolved_requests()
    completed: Dict[int, RunReport] = {}
    if checkpoint and resume:
        completed = read_checkpoint(checkpoint, spec)
    for index in sorted(completed):
        yield index, completed[index]
    remaining = [(i, request) for i, request in enumerate(requests)
                 if i not in completed]
    if not remaining:
        return

    if executor is None and spec.executor:
        runner, owned = resolve_executor(spec.executor,
                                         dict(spec.executor_params))
    else:
        runner, owned = resolve_executor(executor)
    log = None
    with chaos_scope(chaos):
        try:
            if checkpoint:
                # A zero-byte file is a fresh start too: atomic creation
                # never leaves one, so it cannot be a record of anything.
                fresh = (not os.path.exists(checkpoint)
                         or os.path.getsize(checkpoint) == 0)
                if not fresh and not resume:
                    # Never clobber an existing log: it may be the only
                    # record of a crashed sweep's completed requests.
                    raise ConfigurationError(
                        f"checkpoint {checkpoint} already exists; pass "
                        f"resume=True (repro sweep --resume) to continue it, "
                        f"or delete the file to start the sweep fresh")
                if fresh:
                    _create_checkpoint(checkpoint, spec, fsync)
                log = open(checkpoint, "a", encoding="utf-8")
            submitted = {}
            for index, request in remaining:
                submitted[runner.submit(request)] = index
            write_counter = 0
            for ticket, report in runner.iter_reports():
                index = submitted[ticket]
                if log is not None:
                    _append_completion(log, checkpoint, index, report,
                                       fsync, write_counter)
                    write_counter += 1
                yield index, report
        finally:
            if log is not None:
                log.close()
            if owned:
                runner.close()


def run_sweep(spec: SweepSpec, checkpoint: Optional[str] = None,
              resume: bool = False, executor: ExecutorSpec = None,
              fsync: bool = False, chaos: object = None
              ) -> List[RunReport]:
    """Run a sweep to completion and return its reports in request order."""
    reports: Dict[int, RunReport] = {}
    for index, report in iter_sweep(spec, checkpoint=checkpoint,
                                    resume=resume, executor=executor,
                                    fsync=fsync, chaos=chaos):
        reports[index] = report
    missing = [i for i in range(len(spec.requests)) if i not in reports]
    if missing:  # pragma: no cover - executors yield every submission
        raise ConfigurationError(
            f"sweep finished without reports for request(s) {missing}")
    return [reports[i] for i in range(len(spec.requests))]
