"""Durable sweeps: streaming execution with a JSONL checkpoint log.

A sweep of hundreds of agreement runs should survive a crash without
re-running what already finished.  :func:`iter_sweep` streams a
:class:`~repro.api.request.SweepSpec` through an executor and, when given a
checkpoint path, appends one JSON line per completed request **as it
finishes** (flushed immediately, so a killed process loses at most the run
in flight).  ``resume=True`` replays the log first: completed requests are
yielded from the log and skipped by the executor, and the merged report set
equals an uninterrupted run — exactly, when the sweep's seed policy is
``"derive"`` (per-request seeds are positional, not stateful).

Checkpoint format (one JSON object per line)::

    {"kind": "repro-sweep-checkpoint", "version": 1,
     "total": 12, "sweep_sha256": "..."}          # header line
    {"index": 0, "report": { ...RunReport... }}   # one line per completion
    {"index": 3, "report": { ... }}               # completion order, not
    ...                                           # submission order

The header pins the sweep's canonical SHA-256
(:func:`sweep_digest`), so resuming against a *different* sweep — edited
requests, another executor, a changed seed policy — fails loudly instead of
merging unrelated results.  A truncated final line (the crash happened
mid-write) is ignored; an unparseable line anywhere *earlier* is corruption
and refused.  A request checkpointed twice (e.g. a retried cell) resolves
last-write-wins, matching append order.

Durability: headers are created **atomically** (written to a temp file and
renamed into place), so a crash during creation leaves no torn header;
completion appends retry transient I/O failures a bounded number of times,
truncating any torn tail before each retry and recording the recovery in the
report's ``metadata["resilience"]``; ``fsync=True`` upgrades the
flush-per-line default to fsync-per-line for power-loss durability.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..runtime.chaos import chaos_scope, current_chaos
from ..runtime.errors import CheckpointWriteError, ConfigurationError
from ..runtime.supervision import RetryPolicy, checkpoint_retry_event
from .executors import ExecutorSpec, resolve_executor
from .jsonl import rewrite_jsonl, scan_jsonl
from .request import RunReport, SweepSpec

CHECKPOINT_KIND = "repro-sweep-checkpoint"
CHECKPOINT_VERSION = 1

logger = logging.getLogger("repro.sweep")

#: Bounded retry for completion appends (transient ENOSPC / EIO survive).
_WRITE_RETRY = RetryPolicy(max_attempts=3, base_delay=0.01)


def sweep_digest(spec: SweepSpec) -> str:
    """The canonical SHA-256 of a sweep (what a checkpoint header pins)."""
    canonical = json.dumps(spec.to_dict(), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class CheckpointScan:
    """What a checkpoint log actually holds: completions plus its health.

    ``duplicates`` counts superseded completion lines — a request
    checkpointed more than once means it *executed* more than once (a
    retried cell, or two sweeps appending to one log), which last-write-wins
    used to mask silently.  ``torn_tail`` records a truncated final line
    (crash mid-write), repaired away by :func:`compact_checkpoint`.
    """

    completed: Dict[int, RunReport] = field(default_factory=dict)
    duplicates: int = 0
    torn_tail: bool = False
    #: Structured warning events, one per anomaly — the vocabulary serve's
    #: journal replay reports through its recovery summary and /metrics.
    events: List[Dict[str, Any]] = field(default_factory=list)


def _read_checkpoint_header(path: str, lines: List[str],
                            spec: SweepSpec) -> None:
    """Validate the header line of a checkpoint against *spec*, loudly."""
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError:
        if len(lines) == 1:
            # Headers are created atomically (temp file + rename), so a
            # lone unparseable line means the file predates that scheme and
            # a crash tore its creation — there is nothing to resume.
            raise ConfigurationError(
                f"{path} has a torn header line and no completions — "
                f"likely a crash while the checkpoint was being created; "
                f"delete the file to start the sweep fresh")
        raise ConfigurationError(
            f"{path} is not a sweep checkpoint (unreadable header line)")
    if not isinstance(header, dict) or header.get("kind") != CHECKPOINT_KIND:
        raise ConfigurationError(
            f"{path} is not a sweep checkpoint (expected a "
            f"{CHECKPOINT_KIND!r} header)")
    if header.get("version") != CHECKPOINT_VERSION:
        raise ConfigurationError(
            f"{path} is a version {header.get('version')} checkpoint; this "
            f"build reads version {CHECKPOINT_VERSION}")
    digest = sweep_digest(spec)
    if header.get("sweep_sha256") != digest:
        raise ConfigurationError(
            f"{path} was recorded for a different sweep "
            f"(checkpoint {str(header.get('sweep_sha256'))[:12]}…, this "
            f"sweep {digest[:12]}…); refusing to merge unrelated results")


def scan_checkpoint(path: str, spec: SweepSpec) -> CheckpointScan:
    """Read a checkpoint log in full: completions, duplicates, torn tail.

    Validates the header against *spec* (kind, version, sweep digest) and
    tolerates a truncated final line.  An empty or missing file reads as no
    completions.  Every anomaly — a superseded duplicate completion, a torn
    tail — is logged as a structured warning and recorded on the returned
    :class:`CheckpointScan`, so replay paths (``--resume``, the serve
    journal) surface double execution instead of silently masking it.
    """
    scan = CheckpointScan()
    if not os.path.exists(path):
        return scan
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    if not lines:
        return scan
    _read_checkpoint_header(path, lines, spec)
    body = scan_jsonl(path, lines[1:], first_line=2,
                      description="checkpoint")
    scan.torn_tail = body.torn_tail
    total = len(spec.requests)
    for line_number, entry in body.entries:
        if not isinstance(entry, dict) or not isinstance(
                entry.get("report"), dict):
            raise ConfigurationError(
                f"{path} has a malformed completion line (expected an "
                f"object with \"index\" and \"report\"): line {line_number}")
        index = entry.get("index")
        if not isinstance(index, int) or not 0 <= index < total:
            raise ConfigurationError(
                f"{path} names request index {index!r}, outside this "
                f"sweep's 0..{total - 1}")
        if index in scan.completed:
            scan.duplicates += 1
            event = {"event": "duplicate-completion", "index": index,
                     "line": line_number, "path": path}
            scan.events.append(event)
            logger.warning(
                "checkpoint %s: request %d checkpointed more than once "
                "(line %d supersedes an earlier completion) — the request "
                "was executed at least twice; last write wins: %s",
                path, index, line_number, event)
        scan.completed[index] = RunReport.from_dict(entry["report"])
    if scan.torn_tail:
        event = {"event": "torn-tail", "path": path}
        scan.events.append(event)
        logger.warning(
            "checkpoint %s ends in a truncated line (crash mid-write); "
            "the torn tail was ignored: %s", path, event)
    return scan


def read_checkpoint(path: str, spec: SweepSpec) -> Dict[int, RunReport]:
    """The completed ``{index: report}`` entries of a checkpoint log.

    A thin wrapper over :func:`scan_checkpoint` keeping the historical
    mapping shape; use the scan directly to see duplicate and torn-tail
    diagnostics.
    """
    return scan_checkpoint(path, spec).completed


def compact_checkpoint(path: str, spec: SweepSpec) -> Dict[str, Any]:
    """Rewrite a checkpoint dropping superseded duplicates and any torn tail.

    The log keeps one line per completed request (the latest), ordered by
    index, under a fresh header — rewritten atomically so a crash during
    compaction leaves the original intact.  Returns a summary:
    ``{"completed": n, "duplicates_dropped": n, "torn_tail_repaired": bool}``.
    A missing or empty checkpoint compacts to nothing and returns zeros.
    """
    scan = scan_checkpoint(path, spec)
    stats = {"completed": len(scan.completed),
             "duplicates_dropped": scan.duplicates,
             "torn_tail_repaired": scan.torn_tail}
    if not os.path.exists(path) or os.path.getsize(path) == 0:
        return stats
    if scan.duplicates or scan.torn_tail:
        rewrite_jsonl(
            path,
            {"kind": CHECKPOINT_KIND, "version": CHECKPOINT_VERSION,
             "total": len(spec.requests), "sweep_sha256": sweep_digest(spec)},
            ({"index": index, "report": scan.completed[index].to_dict()}
             for index in sorted(scan.completed)))
    return stats


def _write_header(handle, spec: SweepSpec, fsync: bool = False) -> None:
    handle.write(json.dumps({
        "kind": CHECKPOINT_KIND,
        "version": CHECKPOINT_VERSION,
        "total": len(spec.requests),
        "sweep_sha256": sweep_digest(spec),
    }, sort_keys=True) + "\n")
    handle.flush()
    if fsync:
        os.fsync(handle.fileno())


def _create_checkpoint(path: str, spec: SweepSpec, fsync: bool) -> None:
    """Create a fresh checkpoint atomically: header to a temp file, then rename.

    A crash anywhere before the :func:`os.replace` leaves no file at *path*
    (only a stray temp file), never a torn header — so a later resume cannot
    mistake a half-written header for corruption.
    """
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            _write_header(handle, spec, fsync=fsync)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def _append_completion(log, path: str, index: int, report: RunReport,
                       fsync: bool, write_counter: int) -> None:
    """Append one completion line, retrying transient failures bounded times.

    Before each retry the torn tail of the failed write is truncated away
    (the offset was captured up front), so the log never accumulates partial
    lines, and a :func:`checkpoint_retry_event` is recorded on the report's
    ``metadata["resilience"]`` — which re-serializes into the retried line,
    making the recovery itself durable.
    """
    controller = current_chaos()
    line = json.dumps({"index": index, "report": report.to_dict()},
                      sort_keys=True) + "\n"
    for attempt in range(1, _WRITE_RETRY.max_attempts + 1):
        offset = log.tell()
        try:
            if controller is not None and controller.take(
                    "checkpoint-write", index=write_counter):
                raise OSError("chaos: simulated checkpoint append failure")
            log.write(line)
            log.flush()
            if fsync:
                os.fsync(log.fileno())
            return
        except OSError as exc:
            log.truncate(offset)
            if attempt >= _WRITE_RETRY.max_attempts:
                raise CheckpointWriteError(
                    f"checkpoint {path} append for request {index} failed "
                    f"{attempt} times; last error: {exc}") from exc
            delay = _WRITE_RETRY.delay(f"checkpoint:{path}:{index}", attempt)
            report.metadata.setdefault("resilience", []).append(
                checkpoint_retry_event(attempt, exc, delay))
            line = json.dumps({"index": index, "report": report.to_dict()},
                              sort_keys=True) + "\n"
            time.sleep(delay)


def iter_sweep(spec: SweepSpec, checkpoint: Optional[str] = None,
               resume: bool = False, executor: ExecutorSpec = None,
               fsync: bool = False, chaos: object = None
               ) -> Iterator[Tuple[int, RunReport]]:
    """Stream a sweep's ``(index, report)`` pairs, checkpointing as they finish.

    Already-completed requests (``resume=True`` with an existing checkpoint)
    are yielded first, straight from the log; the rest stream from the
    executor in completion order.  *executor* overrides the spec's backend
    choice (an :class:`~repro.api.executors.Executor` instance or registry
    name); ``None`` builds the spec's own ``executor``/``executor_params``.

    ``fsync=True`` additionally fsyncs the checkpoint after the header and
    every completion append — durability against power loss, at a per-line
    syscall cost (the default ``flush`` already survives process death).
    *chaos* optionally activates a :class:`~repro.runtime.chaos.ChaosPolicy`
    (or controller, or plain policy data) for the sweep's duration.
    """
    requests = spec.resolved_requests()
    completed: Dict[int, RunReport] = {}
    if checkpoint and resume:
        completed = read_checkpoint(checkpoint, spec)
    for index in sorted(completed):
        yield index, completed[index]
    remaining = [(i, request) for i, request in enumerate(requests)
                 if i not in completed]
    if not remaining:
        return

    if executor is None and spec.executor:
        runner, owned = resolve_executor(spec.executor,
                                         dict(spec.executor_params))
    else:
        runner, owned = resolve_executor(executor)
    log = None
    with chaos_scope(chaos):
        try:
            if checkpoint:
                # A zero-byte file is a fresh start too: atomic creation
                # never leaves one, so it cannot be a record of anything.
                fresh = (not os.path.exists(checkpoint)
                         or os.path.getsize(checkpoint) == 0)
                if not fresh and not resume:
                    # Never clobber an existing log: it may be the only
                    # record of a crashed sweep's completed requests.
                    raise ConfigurationError(
                        f"checkpoint {checkpoint} already exists; pass "
                        f"resume=True (repro sweep --resume) to continue it, "
                        f"or delete the file to start the sweep fresh")
                if fresh:
                    _create_checkpoint(checkpoint, spec, fsync)
                log = open(checkpoint, "a", encoding="utf-8")
            submitted = {}
            for index, request in remaining:
                submitted[runner.submit(request)] = index
            write_counter = 0
            for ticket, report in runner.iter_reports():
                index = submitted[ticket]
                if log is not None:
                    _append_completion(log, checkpoint, index, report,
                                       fsync, write_counter)
                    write_counter += 1
                yield index, report
        finally:
            if log is not None:
                log.close()
            if owned:
                runner.close()


def run_sweep(spec: SweepSpec, checkpoint: Optional[str] = None,
              resume: bool = False, executor: ExecutorSpec = None,
              fsync: bool = False, chaos: object = None
              ) -> List[RunReport]:
    """Run a sweep to completion and return its reports in request order."""
    reports: Dict[int, RunReport] = {}
    for index, report in iter_sweep(spec, checkpoint=checkpoint,
                                    resume=resume, executor=executor,
                                    fsync=fsync, chaos=chaos):
        reports[index] = report
    missing = [i for i in range(len(spec.requests)) if i not in reports]
    if missing:  # pragma: no cover - executors yield every submission
        raise ConfigurationError(
            f"sweep finished without reports for request(s) {missing}")
    return [reports[i] for i in range(len(spec.requests))]
