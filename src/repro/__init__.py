"""repro — a reproduction of Bar-Noy, Dolev, Dwork & Strong,
"Shifting Gears: Changing Algorithms on the Fly to Expedite Byzantine
Agreement" (PODC 1987 / Information and Computation 1992).

The package provides:

* the paper's algorithms — the Exponential Algorithm, the Algorithm A and B
  families, Algorithm C (the Dolev–Reischuk–Strong adaptation), and the
  hybrid A→B→C algorithm of the Main Theorem — all built on one shifting EIG
  machine (`repro.core`);
* a synchronous, full-information-adversary simulation substrate
  (`repro.runtime`, `repro.adversary`);
* baselines (Pease–Shostak–Lamport OM(m), phase king, authenticated
  Dolev–Strong) in `repro.baselines`;
* the analytic bounds, trade-off curves and experiment harness that
  regenerate every quantitative claim of the paper (`repro.analysis`,
  `repro.experiments`).

Quickstart
----------
>>> from repro import RunRequest, execute
>>> report = execute(RunRequest(
...     protocol="hybrid", protocol_params={"b": 3}, n=16, t=5,
...     initial_value=1, scenario="faulty-source-allies",
...     battery="worst-case"))
>>> report.agreement
True

The substrate stays importable for hand-assembled runs:

>>> from repro import ProtocolConfig, HybridSpec, run_agreement, choose_faulty
>>> from repro.adversary import TwoFacedSourceAdversary
>>> config = ProtocolConfig(n=16, t=5, initial_value=1)
>>> result = run_agreement(HybridSpec(b=3), config,
...                        faulty=choose_faulty(16, 5, source_faulty=True),
...                        adversary=TwoFacedSourceAdversary())
>>> result.agreement
True
"""

from __future__ import annotations

from .api import (RunReport, RunRequest, SweepSpec, adversary_names,
                  adversary_registry, build_adversary, build_protocol,
                  execute, execute_many, executor_names, executor_registry,
                  iter_execute, protocol_names, protocol_registry, run_sweep)
from .core import (AlgorithmASpec, AlgorithmBSpec, AlgorithmCSpec,
                   AgreementProtocol, BOTTOM, DEFAULT_VALUE, ExponentialSpec,
                   HybridParameters, HybridSpec, InfoGatheringTree,
                   ProtocolConfig, ProtocolSpec, RepetitionTree, Value,
                   algorithm_a_resilience, algorithm_a_rounds,
                   algorithm_b_resilience, algorithm_b_rounds,
                   algorithm_c_resilience, algorithm_c_rounds,
                   exponential_resilience, exponential_rounds,
                   hybrid_parameters, hybrid_rounds, resolve, resolve_prime)
from .runtime import (Message, RunMetrics, RunResult, SynchronousNetwork,
                      choose_faulty, run_agreement, run_many)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # the declarative façade
    "RunRequest", "RunReport", "SweepSpec",
    "execute", "execute_many", "iter_execute", "run_sweep",
    "protocol_registry", "adversary_registry",
    "executor_registry", "executor_names",
    "protocol_names", "adversary_names",
    "build_protocol", "build_adversary",
    # configuration & execution
    "ProtocolConfig", "ProtocolSpec", "AgreementProtocol",
    "run_agreement", "run_many", "choose_faulty",
    "RunResult", "RunMetrics", "Message", "SynchronousNetwork",
    # values & trees
    "Value", "DEFAULT_VALUE", "BOTTOM", "InfoGatheringTree", "RepetitionTree",
    "resolve", "resolve_prime",
    # the algorithms
    "ExponentialSpec", "AlgorithmASpec", "AlgorithmBSpec", "AlgorithmCSpec",
    "HybridSpec", "HybridParameters",
    # bounds
    "exponential_resilience", "exponential_rounds",
    "algorithm_a_resilience", "algorithm_a_rounds",
    "algorithm_b_resilience", "algorithm_b_rounds",
    "algorithm_c_resilience", "algorithm_c_rounds",
    "hybrid_parameters", "hybrid_rounds",
]
