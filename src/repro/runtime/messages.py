"""Message types exchanged over the synchronous network.

Every protocol in this package exchanges *information-gathering messages*: a
mapping from label sequences (paths in the sender's tree) to values.  The
round-1 message from the source is the degenerate case of a single entry for
the root.  Messages are immutable once constructed so the adversary cannot
mutate a correct processor's outbox in place — it must construct new messages,
exactly like a real Byzantine sender would.

Two concrete layouts exist:

* :class:`Message` — an explicit ``{sequence: value}`` mapping.  Used for the
  source's round-1 broadcast and by adversaries, which rewrite entries.
* :class:`LevelMessage` — the fast engine's broadcast: it wraps one flat tree
  level **by reference** (the shared
  :class:`~repro.core.sequences.SequenceIndex` plus the level's value buffer)
  and materialises the entry mapping only if a slow-path consumer asks for
  it.  Receivers that share the same index copy values by node-id without
  ever building a dictionary; ``size_bits`` is O(1) because every entry of a
  level has the same path length.

Immutability of the mapping view is provided by
:class:`types.MappingProxyType`: accessors hand out read-only views of the
internal dict rather than defensive copies, so iterating entries in hot loops
allocates nothing.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import (Callable, Dict, Iterable, Iterator, List, Mapping,
                    Optional, Sequence, Tuple)

from ..core.sequences import LabelSequence, ProcessorId, SequenceIndex
from ..core.values import Value
from .metrics import entry_bits


class Message:
    """An immutable information-gathering message.

    Parameters
    ----------
    entries:
        Mapping from label sequence to the value the sender claims for that
        node of its tree.
    sender:
        The (claimed) sender.  The model guarantees that a correct receiver
        can identify the true source of a message, so the network stamps this
        field; adversaries cannot spoof it.
    round_number:
        The communication round in which the message is sent.
    """

    __slots__ = ("_entries", "sender", "round_number")

    def __init__(self, entries: Mapping[LabelSequence, Value],
                 sender: ProcessorId, round_number: int) -> None:
        self._entries: Optional[Dict[LabelSequence, Value]] = {
            tuple(seq): value for seq, value in entries.items()
        }
        self.sender = sender
        self.round_number = round_number

    # -- internal ----------------------------------------------------------
    def _mapping(self) -> Dict[LabelSequence, Value]:
        """The entry dict (subclasses may materialise it lazily)."""
        return self._entries

    # -- accessors -------------------------------------------------------
    @property
    def entries(self) -> Mapping[LabelSequence, Value]:
        """A **read-only view** of the entry mapping (no copy is made)."""
        return MappingProxyType(self._mapping())

    def items(self) -> Iterable[Tuple[LabelSequence, Value]]:
        """Iterate ``(sequence, value)`` pairs without copying."""
        return self._mapping().items()

    def value_for(self, seq: LabelSequence) -> Optional[Value]:
        """The claimed value for *seq*, or ``None`` if the entry is missing.

        A missing entry models "an inappropriate message was received"; the
        receiver substitutes the default value per the paper.
        """
        return self._mapping().get(tuple(seq))

    def sequences(self) -> Iterable[LabelSequence]:
        return self._mapping().keys()

    def __iter__(self) -> Iterator[LabelSequence]:
        return iter(self._mapping())

    def __len__(self) -> int:
        return len(self._mapping())

    def __contains__(self, seq: object) -> bool:
        return seq in self._mapping()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Message):
            return NotImplemented
        return (self._mapping() == other._mapping()
                and self.sender == other.sender
                and self.round_number == other.round_number)

    def __hash__(self) -> int:  # pragma: no cover - messages rarely hashed
        return hash((frozenset(self._mapping().items()), self.sender,
                     self.round_number))

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(sender={self.sender}, "
                f"round={self.round_number}, entries={len(self)})")

    # -- cost accounting ---------------------------------------------------
    def entry_count(self) -> int:
        return len(self)

    def size_bits(self, n: int, value_domain_size: int = 2) -> int:
        """Encoded size in bits under the accounting of :mod:`..runtime.metrics`."""
        return sum(entry_bits(len(seq), value_domain_size, n)
                   for seq in self._mapping())

    # -- constructors ------------------------------------------------------
    @classmethod
    def single(cls, seq: LabelSequence, value: Value, sender: ProcessorId,
               round_number: int) -> "Message":
        """A one-entry message (the source's round-1 broadcast)."""
        return cls({tuple(seq): value}, sender, round_number)

    def replace_values(self, value: Value) -> "Message":
        """A copy of this message with every entry replaced by *value*.

        Used by the Fault Masking Rule, which substitutes the default value
        for every entry of a discovered-faulty sender's message.
        """
        return Message({seq: value for seq in self._mapping()},
                       self.sender, self.round_number)

    def with_entries(self, entries: Mapping[LabelSequence, Value]) -> "Message":
        """A copy with a different entry mapping (same sender and round)."""
        return Message(entries, self.sender, self.round_number)

    def with_sender(self, sender: ProcessorId) -> "Message":
        """A copy attributed to *sender* (used by the network's stamping)."""
        return Message(self._mapping(), sender, self.round_number)

    # -- slot-wise tamper helpers -------------------------------------------
    # Adversaries rewrite messages per destination; these helpers let them do
    # so against whatever layout the message already has.  On a plain Message
    # they are ordinary dict comprehensions; the LevelMessage overrides
    # rewrite the wrapped value buffer directly (never in place — a fresh
    # buffer per call, preserving the by-reference aliasing discipline), so a
    # lie about an n^h-entry broadcast never materialises an n^h-entry dict.

    def map_values(self, fn: Callable[[Value], Value]) -> "Message":
        """A copy with ``fn`` applied to every entry's value.

        *fn* must be a pure function of the value: array-backed messages may
        evaluate it once per *distinct* value rather than once per entry.
        Stateful rewrites (e.g. per-entry randomness) should build the new
        contents explicitly and use :meth:`with_entries` /
        :meth:`LevelMessage.with_level_values` instead.
        """
        return self.with_entries({seq: fn(value)
                                  for seq, value in self.items()})


class LevelMessage(Message):
    """A message wrapping one flat tree level by reference.

    The sender's tree guarantees the wrapped buffer is never mutated after
    the message is constructed (see
    :class:`~repro.core.tree.FlatEIGTree`), so sharing it is safe.  Receivers
    call :meth:`matches` + :meth:`level_values` to copy values by node-id;
    every dict-shaped accessor inherited from :class:`Message` materialises
    the mapping lazily, exactly once, so adversaries and tests see the usual
    interface.
    """

    __slots__ = ("_index", "_level", "_values")

    def __init__(self, index: SequenceIndex, level: int, values: List[Value],
                 sender: ProcessorId, round_number: int) -> None:
        if len(values) != index.level_size(level):
            raise ValueError(
                f"level {level} of this tree shape has "
                f"{index.level_size(level)} nodes, got {len(values)} values")
        self._index = index
        self._level = level
        self._values = values
        self._entries = None  # materialised on demand
        self.sender = sender
        self.round_number = round_number

    # -- fast-path accessors ------------------------------------------------
    def matches(self, index: SequenceIndex, level: int) -> bool:
        """True when this message's entries are exactly *level* of *index*
        (same shared shape), so node-ids line up with the receiver's."""
        return self._index is index and self._level == level

    def level_values(self) -> List[Value]:
        """The wrapped value buffer, by reference (index order)."""
        return self._values

    @property
    def level(self) -> int:
        return self._level

    @property
    def index(self) -> SequenceIndex:
        """The shared shape index whose node-ids order the buffer."""
        return self._index

    # -- lazy dict interop --------------------------------------------------
    def _mapping(self) -> Dict[LabelSequence, Value]:
        if self._entries is None:
            self._entries = dict(zip(self._index.sequences(self._level),
                                     self._values))
        return self._entries

    def value_for(self, seq: LabelSequence) -> Optional[Value]:
        node_id = self._index.id_map(self._level).get(tuple(seq))
        if node_id is None:
            return None
        return self._values[node_id]

    def __len__(self) -> int:
        return len(self._values)

    def entry_count(self) -> int:
        return len(self._values)

    def size_bits(self, n: int, value_domain_size: int = 2) -> int:
        # Every entry of a level shares one path length: O(1) instead of a
        # per-entry sum.
        return len(self._values) * entry_bits(self._level, value_domain_size, n)

    def replace_values(self, value: Value) -> "LevelMessage":
        return LevelMessage(self._index, self._level,
                            [value] * len(self._values),
                            self.sender, self.round_number)

    def with_sender(self, sender: ProcessorId) -> "LevelMessage":
        return LevelMessage(self._index, self._level, self._values,
                            sender, self.round_number)

    # -- slot-wise tamper helpers -------------------------------------------
    def with_level_values(self, values: List[Value]) -> "LevelMessage":
        """A copy wrapping *values* (node-id order) instead of the original
        buffer — the level-layout twin of :meth:`Message.with_entries`."""
        return LevelMessage(self._index, self._level, list(values),
                            self.sender, self.round_number)

    def map_values(self, fn: Callable[[Value], Value]) -> "LevelMessage":
        return self.with_level_values([fn(v) for v in self._values])

    def map_values_at(self, node_ids: Sequence[int],
                      fn: Callable[[Value], Value]) -> "LevelMessage":
        """A copy with ``fn`` applied only at the given level node-ids.

        This is the stealth-attack fast path: the adversary precomputes which
        node-ids of a level it wants to lie about (e.g. the all-faulty paths)
        and flips exactly those slots, leaving the rest of the buffer shared
        semantics-wise (the new buffer is still a fresh list/array).
        """
        if len(node_ids) == 0:
            return self
        values = list(self._values)
        for node_id in node_ids:
            values[node_id] = fn(values[node_id])
        return self.with_level_values(values)


class NumpyLevelMessage(LevelMessage):
    """A :class:`LevelMessage` whose buffer is a small-int **code** ndarray.

    The numpy engine's broadcast: the wrapped array holds codes of the shared
    :data:`~repro.core.npsupport.VALUE_CODEC` (the codec is process-wide, so a
    receiver copies codes by fancy indexing with no translation).  Every
    value-shaped accessor decodes lazily; the slot-wise tamper helpers rewrite
    the code array vectorized, evaluating the rewrite function once per
    *distinct* code.
    """

    __slots__ = ()

    def __init__(self, index: SequenceIndex, level: int, codes,
                 sender: ProcessorId, round_number: int) -> None:
        super().__init__(index, level, codes, sender, round_number)

    # -- fast-path accessors -------------------------------------------------
    def level_codes(self):
        """The wrapped code ndarray, by reference (index order)."""
        return self._values

    def level_values(self) -> List[Value]:
        from ..core.npsupport import VALUE_CODEC
        return VALUE_CODEC.decode_buffer(self._values)

    # -- lazy dict interop ---------------------------------------------------
    def _mapping(self) -> Dict[LabelSequence, Value]:
        if self._entries is None:
            self._entries = dict(zip(self._index.sequences(self._level),
                                     self.level_values()))
        return self._entries

    def value_for(self, seq: LabelSequence) -> Optional[Value]:
        from ..core.npsupport import MISSING_CODE, VALUE_CODEC
        node_id = self._index.id_map(self._level).get(tuple(seq))
        if node_id is None:
            return None
        code = int(self._values[node_id])
        if code == MISSING_CODE:
            return None
        return VALUE_CODEC.value(code)

    # -- constructors / rewrites ---------------------------------------------
    def replace_values(self, value: Value) -> "NumpyLevelMessage":
        from ..core.npsupport import (CODE_DTYPE_NAME, VALUE_CODEC,
                                      require_numpy)
        np = require_numpy()
        codes = np.full(len(self._values), VALUE_CODEC.code(value),
                        dtype=CODE_DTYPE_NAME)
        return NumpyLevelMessage(self._index, self._level, codes,
                                 self.sender, self.round_number)

    def with_sender(self, sender: ProcessorId) -> "NumpyLevelMessage":
        return NumpyLevelMessage(self._index, self._level, self._values,
                                 sender, self.round_number)

    def with_level_values(self, values: List[Value]) -> "NumpyLevelMessage":
        from ..core.npsupport import VALUE_CODEC
        return NumpyLevelMessage(self._index, self._level,
                                 VALUE_CODEC.encode_buffer(values),
                                 self.sender, self.round_number)

    def _with_codes(self, codes) -> "NumpyLevelMessage":
        return NumpyLevelMessage(self._index, self._level, codes,
                                 self.sender, self.round_number)

    def _code_translation(self, codes, fn):
        """``{old code: new code}`` with *fn* evaluated once per distinct code.

        Distinct codes are visited in sorted order: ``VALUE_CODEC.code``
        interns previously unseen values, so visiting order decides which
        code a new value receives — set order would make the codec table
        depend on hash seeding.
        """
        from ..core.npsupport import MISSING_CODE, VALUE_CODEC
        return {int(c): VALUE_CODEC.code(fn(VALUE_CODEC.value(int(c))))
                for c in sorted(set(codes.tolist())) if c != MISSING_CODE}

    def map_values(self, fn: Callable[[Value], Value]) -> "NumpyLevelMessage":
        codes = self._values
        new_codes = codes.copy()
        for old, new in self._code_translation(codes, fn).items():
            if old != new:
                new_codes[codes == old] = new
        return self._with_codes(new_codes)

    def map_values_at(self, node_ids,
                      fn: Callable[[Value], Value]) -> "NumpyLevelMessage":
        if len(node_ids) == 0:
            return self
        from ..core.npsupport import require_numpy
        np = require_numpy()
        node_ids = np.asarray(node_ids, dtype=np.int64)
        codes = self._values
        selected = codes[node_ids]
        new_codes = codes.copy()
        for old, new in self._code_translation(selected, fn).items():
            if old != new:
                new_codes[node_ids[selected == old]] = new
        return self._with_codes(new_codes)


Outbox = Dict[ProcessorId, Message]
"""Messages produced by one processor in one round, keyed by destination."""

Inbox = Dict[ProcessorId, Message]
"""Messages delivered to one processor in one round, keyed by sender."""


def broadcast(entries: Mapping[LabelSequence, Value], sender: ProcessorId,
              round_number: int, destinations: Iterable[ProcessorId]) -> Outbox:
    """Build an outbox sending the same entry mapping to every destination.

    The sender itself is excluded: processors account for their own
    contribution to their trees locally (storing ``tree(αp) = tree(α)``)
    rather than by sending themselves a message.
    """
    message = Message(entries, sender, round_number)
    return {dest: message for dest in destinations if dest != sender}


def broadcast_message(message: Message,
                      destinations: Iterable[ProcessorId]) -> Outbox:
    """Build an outbox sending one prebuilt message to every destination
    (shares the single message object; excludes the sender)."""
    sender = message.sender
    return {dest: message for dest in destinations if dest != sender}


def total_entries(outbox: Outbox) -> int:
    return sum(message.entry_count() for message in outbox.values())


def total_bits(outbox: Outbox, n: int, value_domain_size: int = 2) -> int:
    return sum(message.size_bits(n, value_domain_size)
               for message in outbox.values())


def largest_message_entries(outbox: Outbox) -> int:
    return max((message.entry_count() for message in outbox.values()), default=0)


def stamp_sender(message: Message, true_sender: ProcessorId) -> Message:
    """Return *message* with the sender field forced to *true_sender*.

    The synchronous network calls this on every adversary-produced message so
    that a faulty processor can never impersonate another processor — the
    model's "a correct processor can always correctly identify the source of
    any message it receives".
    """
    if message.sender == true_sender:
        return message
    return message.with_sender(true_sender)
