"""Message types exchanged over the synchronous network.

Every protocol in this package exchanges *information-gathering messages*: a
mapping from label sequences (paths in the sender's tree) to values.  The
round-1 message from the source is the degenerate case of a single entry for
the root.  Messages are immutable once constructed so the adversary cannot
mutate a correct processor's outbox in place — it must construct new messages,
exactly like a real Byzantine sender would.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

from ..core.sequences import LabelSequence, ProcessorId
from ..core.values import Value
from .metrics import entry_bits


class Message:
    """An immutable information-gathering message.

    Parameters
    ----------
    entries:
        Mapping from label sequence to the value the sender claims for that
        node of its tree.
    sender:
        The (claimed) sender.  The model guarantees that a correct receiver
        can identify the true source of a message, so the network stamps this
        field; adversaries cannot spoof it.
    round_number:
        The communication round in which the message is sent.
    """

    __slots__ = ("_entries", "sender", "round_number")

    def __init__(self, entries: Mapping[LabelSequence, Value],
                 sender: ProcessorId, round_number: int) -> None:
        self._entries: Dict[LabelSequence, Value] = {
            tuple(seq): value for seq, value in entries.items()
        }
        self.sender = sender
        self.round_number = round_number

    # -- accessors -------------------------------------------------------
    @property
    def entries(self) -> Dict[LabelSequence, Value]:
        """A defensive copy of the entry mapping."""
        return dict(self._entries)

    def value_for(self, seq: LabelSequence) -> Optional[Value]:
        """The claimed value for *seq*, or ``None`` if the entry is missing.

        A missing entry models "an inappropriate message was received"; the
        receiver substitutes the default value per the paper.
        """
        return self._entries.get(tuple(seq))

    def sequences(self) -> Iterable[LabelSequence]:
        return self._entries.keys()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, seq: object) -> bool:
        return seq in self._entries

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Message):
            return NotImplemented
        return (self._entries == other._entries
                and self.sender == other.sender
                and self.round_number == other.round_number)

    def __hash__(self) -> int:  # pragma: no cover - messages rarely hashed
        return hash((frozenset(self._entries.items()), self.sender,
                     self.round_number))

    def __repr__(self) -> str:
        return (f"Message(sender={self.sender}, round={self.round_number}, "
                f"entries={len(self._entries)})")

    # -- cost accounting ---------------------------------------------------
    def entry_count(self) -> int:
        return len(self._entries)

    def size_bits(self, n: int, value_domain_size: int = 2) -> int:
        """Encoded size in bits under the accounting of :mod:`..runtime.metrics`."""
        return sum(entry_bits(len(seq), value_domain_size, n)
                   for seq in self._entries)

    # -- constructors ------------------------------------------------------
    @classmethod
    def single(cls, seq: LabelSequence, value: Value, sender: ProcessorId,
               round_number: int) -> "Message":
        """A one-entry message (the source's round-1 broadcast)."""
        return cls({tuple(seq): value}, sender, round_number)

    def replace_values(self, value: Value) -> "Message":
        """A copy of this message with every entry replaced by *value*.

        Used by the Fault Masking Rule, which substitutes the default value
        for every entry of a discovered-faulty sender's message.
        """
        return Message({seq: value for seq in self._entries},
                       self.sender, self.round_number)

    def with_entries(self, entries: Mapping[LabelSequence, Value]) -> "Message":
        """A copy with a different entry mapping (same sender and round)."""
        return Message(entries, self.sender, self.round_number)


Outbox = Dict[ProcessorId, Message]
"""Messages produced by one processor in one round, keyed by destination."""

Inbox = Dict[ProcessorId, Message]
"""Messages delivered to one processor in one round, keyed by sender."""


def broadcast(entries: Mapping[LabelSequence, Value], sender: ProcessorId,
              round_number: int, destinations: Iterable[ProcessorId]) -> Outbox:
    """Build an outbox sending the same entry mapping to every destination.

    The sender itself is excluded: processors account for their own
    contribution to their trees locally (storing ``tree(αp) = tree(α)``)
    rather than by sending themselves a message.
    """
    message = Message(entries, sender, round_number)
    return {dest: message for dest in destinations if dest != sender}


def total_entries(outbox: Outbox) -> int:
    return sum(message.entry_count() for message in outbox.values())


def total_bits(outbox: Outbox, n: int, value_domain_size: int = 2) -> int:
    return sum(message.size_bits(n, value_domain_size)
               for message in outbox.values())


def largest_message_entries(outbox: Outbox) -> int:
    return max((message.entry_count() for message in outbox.values()), default=0)


def stamp_sender(message: Message, true_sender: ProcessorId) -> Message:
    """Return *message* with the sender field forced to *true_sender*.

    The synchronous network calls this on every adversary-produced message so
    that a faulty processor can never impersonate another processor — the
    model's "a correct processor can always correctly identify the source of
    any message it receives".
    """
    if message.sender == true_sender:
        return message
    return Message(message.entries, true_sender, message.round_number)
