"""Exception hierarchy for the simulation runtime and protocol layer."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class ConfigurationError(ReproError):
    """A protocol or simulation was configured with inconsistent parameters.

    Typical causes: resilience exceeded (``n < 3t + 1`` for Algorithm A), an
    out-of-range block parameter ``b``, a faulty-set larger than ``t``, or an
    unknown processor identifier.
    """


class ProtocolViolationError(ReproError):
    """A protocol object was driven outside its legal round sequence.

    The synchronous scheduler calls ``send``/``receive`` with strictly
    increasing round numbers from 1 to ``total_rounds``; any other usage is a
    programming error in the harness and raises this exception rather than
    silently corrupting the run.
    """


class SimulationError(ReproError):
    """The synchronous network simulator reached an inconsistent state."""


class AdversaryError(ReproError):
    """An adversary produced output outside its power (e.g. forged a sender)."""


class FabricError(ReproError):
    """The execution fabric (workers, pipes, checkpoints) failed, not the run.

    Every infrastructure failure the supervision layer knows how to retry or
    degrade around derives from this class, so callers can distinguish "the
    substrate broke" from "the simulation is inconsistent" with one
    ``except`` clause.
    """


class WorkerDiedError(FabricError, SimulationError):
    """A worker process died or its pipe closed mid-run.

    Also a :class:`SimulationError` for compatibility: the sharded
    coordinator historically surfaced worker death as a plain simulation
    failure, and callers catching that still do the right thing.
    """


class WorkerTimeoutError(FabricError):
    """A worker missed its reply deadline (hung, or pathologically slow)."""


class WorkerShutdownError(FabricError):
    """A worker survived the full ``join -> terminate -> kill`` escalation."""


class CheckpointWriteError(FabricError):
    """A sweep checkpoint append kept failing past its bounded retry budget."""


class SupervisionExhaustedError(FabricError):
    """Every rung of the degradation ladder failed for one request."""
