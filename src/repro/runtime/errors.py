"""Exception hierarchy for the simulation runtime and protocol layer."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class ConfigurationError(ReproError):
    """A protocol or simulation was configured with inconsistent parameters.

    Typical causes: resilience exceeded (``n < 3t + 1`` for Algorithm A), an
    out-of-range block parameter ``b``, a faulty-set larger than ``t``, or an
    unknown processor identifier.
    """


class ProtocolViolationError(ReproError):
    """A protocol object was driven outside its legal round sequence.

    The synchronous scheduler calls ``send``/``receive`` with strictly
    increasing round numbers from 1 to ``total_rounds``; any other usage is a
    programming error in the harness and raises this exception rather than
    silently corrupting the run.
    """


class SimulationError(ReproError):
    """The synchronous network simulator reached an inconsistent state."""


class AdversaryError(ReproError):
    """An adversary produced output outside its power (e.g. forged a sender)."""
