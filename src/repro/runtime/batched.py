"""Batched whole-run stepping: one 2-D kernel per round for all processors.

The per-processor driver in :mod:`.simulation` interprets ``n − t`` identical
protocol state machines in lock step.  The synchronous-round model makes that
uniformity exploitable: every correct processor of an EIG execution holds a
tree of the *same shape*, gathers from the *same* broadcasts, and converts at
the *same* rounds — so the whole run can be stepped as a single
``(rows, nodes)`` ndarray per level (a
:class:`~repro.core.npsupport.BatchedEIGState`), with one fancy-indexed
gather, one ``bincount`` discovery kernel, and one ``bincount`` conversion
kernel per round for the *entire* run.  This amortises the numpy call
overhead that makes the per-processor ``"numpy"`` engine lose to the
pure-python ``"fast"`` engine on small levels.

The stacked state covers more than the correct processors: the faulty
processors' *shadows* (the correct machines a
:class:`~repro.adversary.base.ShadowAdversary` runs to know what a correct
processor would have sent) obey the same uniform round structure, so they are
extra rows of the same stack.  The adversary receives its shadows through a
spec proxy (:class:`_ShadowSpecProxy`): ``outgoing`` wraps the shadow's
current leaf row by reference, while the state stepping happens inside the
round kernels.

Observational identity is preserved exactly — decisions, discovered faults,
discovery logs, message metrics, and per-processor
:class:`~repro.runtime.metrics.ComputationMeter` units all match the three
per-processor engines:

* the adversary runs **unchanged**: it receives the documented
  ``correct_outboxes`` mapping (materialised lazily from a run-level
  broadcast table, so no per-destination dict is built unless the adversary
  actually indexes it), produces ordinary message dicts, observes the faulty
  processors' inboxes after every round, and its shadows' outboxes are
  byte-identical to per-processor shadows' — so tampering decisions and rng
  draw order cannot drift;
* gathering reads each correct sender's claims straight out of the previous
  level stack (a broadcast *is* the sender's level buffer); faulty messages
  become extra claim rows (deduplicated per message object, zero-copy for
  aligned :class:`~repro.runtime.messages.NumpyLevelMessage` broadcasts);
* discovery, masking, and conversion reuse the per-processor numpy kernels'
  shared internals row by row (see :mod:`repro.core.fault_discovery` and
  :mod:`repro.core.resolve`), including the reference meter accounting
  (shadow rows charge throwaway meters — nothing ever reads a shadow's
  units).

Eligibility: :func:`batched_supported` accepts exactly the specs whose
processors are plain :class:`~repro.core.shifting.ShiftingEIGProcessor`
machines (the Exponential Algorithm, Algorithms A and B) when numpy is
importable.  ``run_agreement(..., batched=True)`` falls back cleanly to the
per-processor driver for everything else (Algorithm C, the hybrid, the
baselines, or a numpy-less environment).

At large ``n`` the level stacks outgrow one interpreter's cache;
:mod:`repro.runtime.sharding` splits this run's row stack across worker
processes (the coordinator subclasses :class:`_BatchedRun`, keeping the
adversary plumbing here authoritative).
"""

from __future__ import annotations

from typing import (TYPE_CHECKING, Dict, FrozenSet, Iterator, List, Mapping,
                    Optional, Set, Tuple)

from ..adversary.base import Adversary, AdversaryContext, ShadowAdversary
from ..core.engine import NUMPY, numpy_available, use_engine
from ..core.fault_discovery import (FaultTracker,
                                    discover_during_conversion_batched)
from ..core.fault_masking import (discover_and_mask_batched,
                                  gather_level_batched)
from ..core.resolve import batched_resolve_levels
from ..core.sequences import ProcessorId, sequence_index
from ..core.shifting import ShiftingEIGProcessor
from ..core.values import coerce_value, is_bottom
from .errors import SimulationError
from .messages import (Inbox, Message, NumpyLevelMessage, Outbox, broadcast,
                       broadcast_message, stamp_sender)
from .metrics import ComputationMeter, RunMetrics, entry_bits

if TYPE_CHECKING:  # imported only for annotations, to avoid an import cycle
    from ..core.protocol import ProtocolConfig, ProtocolSpec
    from .simulation import RunResult


def batched_supported(spec: "ProtocolSpec", config: "ProtocolConfig") -> bool:
    """Whether ``run_agreement(..., batched=True)`` would take the batched path.

    True exactly when numpy is importable and *spec* builds plain
    :class:`ShiftingEIGProcessor` machines that decide at the end of their
    schedule (the Exponential Algorithm, Algorithms A and B).  Probing builds
    one processor, which is cheap (no rounds are run).
    """
    if not numpy_available():
        return False
    try:
        return _ProbeFacts(spec.build(config.source, config)).supported
    # repro-lint: waive[errors/broad-except] -- eligibility probe: a
    # protocol whose construction fails is simply not batchable, and the
    # serial path will surface the real error with full context
    except Exception:
        return False


class _ProbeFacts:
    """Everything the batched runner needs from one probe-built processor.

    Built fresh per run — caching on the spec object would serve a stale
    schedule if a caller mutated the spec between runs, and building one
    processor costs microseconds (no rounds are run).
    """

    __slots__ = ("supported", "total_rounds", "segment_ends",
                 "enable_fault_discovery")

    def __init__(self, probe) -> None:
        self.supported = (type(probe) is ShiftingEIGProcessor
                          and probe.decide_at_end)
        if self.supported:
            self.total_rounds = probe.total_rounds
            self.segment_ends = probe.schedule.segment_end_rounds()
            self.enable_fault_discovery = probe.enable_fault_discovery


def run_batched_if_supported(spec: "ProtocolSpec", config: "ProtocolConfig",
                             faulty_set: FrozenSet[ProcessorId],
                             adversary: Adversary,
                             seed: int) -> Optional["RunResult"]:
    """Run batched when the spec qualifies; ``None`` means "use the fallback".

    The support check happens *before* the adversary is bound, so a fallback
    leaves the adversary untouched for the per-processor driver.
    """
    if not numpy_available():
        return None
    if getattr(adversary, "batched_fallback_reason", None) is not None:
        # The strategy is not expressible as a claims-matrix edit (e.g. it
        # withholds deliveries from its own shadows, which are row-backed
        # here); the per-processor driver runs it with full shadow machines.
        return None
    probe = _ProbeFacts(spec.build(config.source, config))
    if not probe.supported:
        return None
    correct = [p for p in config.processors if p not in faulty_set]
    participants = [p for p in correct if p != config.source]
    if not participants:
        return None
    # The numpy engine becomes the process default for the duration of the
    # run so any protocol machine the adversary builds outside the shadow
    # proxy stores ndarray levels and broadcasts NumpyLevelMessages, which
    # the claim-row builder ingests zero-copy.
    with use_engine(NUMPY):
        return _BatchedRun(spec, config, faulty_set, adversary, seed, probe,
                           correct, participants).run()


class _BroadcastTable(Mapping):
    """Lazy run-level broadcast table standing in for per-sender outboxes.

    Maps every correct pid to the outbox dict the per-processor driver would
    have built.  The built-in (shadow-based) adversaries never index it, so
    no per-destination dict is materialised; a custom adversary that does
    sees exactly the documented ``{dest: message}`` shape, built on demand
    and cached.
    """

    __slots__ = ("_messages", "_destinations", "_built")

    def __init__(self, messages: Dict[ProcessorId, Optional[Message]],
                 destinations: Tuple[ProcessorId, ...]) -> None:
        self._messages = messages
        self._destinations = destinations
        self._built: Dict[ProcessorId, Outbox] = {}

    def __getitem__(self, pid: ProcessorId) -> Outbox:
        message = self._messages[pid]
        outbox = self._built.get(pid)
        if outbox is None:
            if message is None:
                outbox = {}
            else:
                outbox = {dest: message for dest in self._destinations
                          if dest != pid}
            self._built[pid] = outbox
        return outbox

    def __iter__(self) -> Iterator[ProcessorId]:
        return iter(self._messages)

    def __len__(self) -> int:
        return len(self._messages)


class _ShadowSpecProxy:
    """The spec the adversary sees: builds row-backed shadow processors.

    Delegates everything to the real spec but intercepts ``build`` — once per
    faulty pid — to hand out :class:`_ShadowProcessor` views of the run's
    shadow rows.  Builds for non-faulty pids (or repeated builds) fall
    through to the real spec.
    """

    __slots__ = ("_spec", "_runner")

    def __init__(self, spec, runner: "_BatchedRun") -> None:
        self._spec = spec
        self._runner = runner

    def build(self, pid: ProcessorId, config):
        shadow = self._runner.claim_shadow(pid, config)
        if shadow is not None:
            return shadow
        return self._spec.build(pid, config)

    def __getattr__(self, name):
        return getattr(self._spec, name)


class _ShadowProcessor:
    """One faulty processor's correct "shadow", backed by a stack row.

    Implements exactly the protocol surface
    :class:`~repro.adversary.base.ShadowAdversary` uses.  ``outgoing`` wraps
    the shadow's current leaf row by reference (byte-identical to what a
    per-processor shadow would broadcast); ``incoming`` is a no-op because
    the batched runner already steps the shadow rows — it *built* the faulty
    inboxes the adversary observes.
    """

    __slots__ = ("runner", "pid", "config", "row")

    def __init__(self, runner: "_BatchedRun", pid: ProcessorId, config,
                 row: Optional[int]) -> None:
        self.runner = runner
        self.pid = pid
        self.config = config
        self.row = row  # None for the source (it never relays tree levels)

    @property
    def total_rounds(self) -> int:
        return self.runner.total_rounds

    def outgoing(self, round_number: int) -> Outbox:
        config = self.config
        if round_number == 1:
            if self.pid != config.source:
                return {}
            # The source's round-1 broadcast, exactly as
            # ShiftingEIGProcessor builds it.
            return broadcast({(config.source,): config.initial_value},
                             self.pid, round_number, config.processors)
        if self.pid == config.source:
            return {}
        state = self.runner.state
        level = state.num_levels
        message = NumpyLevelMessage(self.runner.index, level,
                                    state.row_view(level, self.row),
                                    self.pid, round_number)
        return broadcast_message(message, config.processors)

    def incoming(self, round_number: int, inbox: Inbox) -> None:
        pass  # the batched runner steps the shadow rows itself

    def __getattr__(self, name):
        # Only reached for attributes outside the slots/protocol surface.
        raise AttributeError(
            f"row-backed shadow processor has no attribute {name!r}: under "
            f"run_agreement(batched=True) shadows expose only the "
            f"outgoing/incoming protocol surface. An adversary that "
            f"introspects deeper shadow state should run with batched=False "
            f"(the per-processor driver builds full protocol machines)")


def convert_stacked_rows(state, segment, t: int, trackers, meters,
                         discovery_logs, main_indices, decision_pids,
                         decisions, round_number: int, total_rounds: int,
                         enable_fault_discovery: bool) -> None:
    """Shift a whole row stack back to fresh roots: one conversion pass.

    The resolve votes, the Fault Discovery Rule During Conversion, the
    ``shift_{k→1}`` reset, the final-round decisions, and the exact
    per-processor meter charges live here **once**, shared by the
    single-process batched run and the sharded workers — their parity is
    structural, not maintained by hand.  All row-indexed sequences
    (*trackers*, *meters*, *discovery_logs*, *decision_pids*) align with
    *state*'s rows; *main_indices* lists the rows that belong to correct
    participants (shadow rows ride along charging the callers' shared
    sink), and at the final round ``decisions[decision_pids[i]]`` receives
    row *i*'s decided value.
    """
    from ..core.npsupport import (BOTTOM_CODE, DEFAULT_CODE, VALUE_CODEC,
                                  require_numpy)
    np = require_numpy()
    levels, charge = batched_resolve_levels(state, segment.conversion, t)
    for i in main_indices:
        meters[i].charge(charge)
    if segment.conversion_discovery and enable_fault_discovery:
        fresh_sets = discover_during_conversion_batched(
            state.index, levels, state.num_levels,
            [tracker.suspects for tracker in trackers], t, meters)
        main_set = set(main_indices)
        for i, fresh in enumerate(fresh_sets):
            added = trackers[i].add_all(fresh, round_number)
            if added and i in main_set:
                log = discovery_logs[i]
                log[round_number] = log.get(round_number, 0) + len(added)
    roots = levels[0][:, 0]
    roots = np.where(roots == BOTTOM_CODE, DEFAULT_CODE, roots)
    state.reset_to_roots(roots)
    for i in main_indices:
        meters[i].charge()  # reset_to_root stores one node
    if round_number == total_rounds:
        for i in main_indices:
            decisions[decision_pids[i]] = VALUE_CODEC.value(int(roots[i]))


class _BatchedRun:
    """One batched execution (see the module docstring)."""

    def __init__(self, spec, config, faulty_set, adversary, seed, probe,
                 correct, participants) -> None:
        from ..core.npsupport import (BatchedEIGState, CODE_DTYPE_NAME,
                                      VALUE_CODEC, require_numpy)
        self.np = require_numpy()
        self.spec = spec
        self.config = config
        self.faulty = faulty_set
        self.adversary = adversary
        self.seed = seed
        self.correct = correct
        #: correct processors holding trees (everyone but the source)
        self.participants = participants
        self.main_count = len(participants)
        #: faulty processors' shadow rows (the source's shadow is stateless)
        self.shadow_pids = [pid for pid in sorted(faulty_set)
                            if pid != config.source]
        self.row_pids = participants + self.shadow_pids
        self.count = len(self.row_pids)
        self.codec = VALUE_CODEC
        self.code_dtype = CODE_DTYPE_NAME
        self.index = sequence_index(config.source, config.processors, False)
        self.state = BatchedEIGState(self.index, self.count)
        self.trackers = [FaultTracker(pid, config.t) for pid in self.row_pids]
        shadow_meter = ComputationMeter()  # shared sink, never read
        self.meters = ([ComputationMeter() for _ in participants]
                       + [shadow_meter] * len(self.shadow_pids))
        self.discovery_logs: List[Dict[int, int]] = [{} for _ in participants]
        self.decisions: Dict[ProcessorId, object] = {}
        self.metrics = RunMetrics()
        self.total_rounds = probe.total_rounds
        self.segment_ends = probe.segment_ends
        self.enable_fault_discovery = probe.enable_fault_discovery
        self.source_correct = config.source not in faulty_set
        self.processor_set = set(config.processors)
        self.n = config.n
        self.domain_size = len(config.domain)
        self.domain_set = frozenset(v for v in config.domain
                                    if not is_bottom(v))
        self._domain_mask = None
        self._domain_mask_codes = -1
        self._claimed_shadows: Set[ProcessorId] = set()
        from .corruption import corruption_enabled
        self._corrupting = corruption_enabled(adversary)
        # claims-row template: column c → stack row of sender c's broadcast
        # (faulty/source/suspect columns are overridden per round); the
        # diagonal own-pid entries double as the echo rows.
        parts = self.np.asarray(participants, dtype=self.np.int64)
        self._row_indices = self.np.arange(self.count, dtype=self.np.int64)
        self._row_pids_arr = self.np.asarray(self.row_pids,
                                             dtype=self.np.int64)
        self._row_of_base = self.np.full((self.count, self.n), self.count,
                                         dtype=self.np.int64)
        if self.main_count:
            self._row_of_base[:, parts] = self._row_indices[:self.main_count]
        # For small runs the per-round row_of is assembled in plain python
        # (a handful of ndarray writes per row costs more than the whole
        # nested-list build).
        from ..core.npsupport import SMALL_KERNEL_ELEMENTS
        self._small_row_of = self.count * self.n <= SMALL_KERNEL_ELEMENTS
        self._row_of_base_py = self._row_of_base.tolist()

    def domain_mask(self):
        """The code-level domain mask, rebuilt only when the codec grew."""
        if len(self.codec) != self._domain_mask_codes:
            self._domain_mask_codes = len(self.codec)
            self._domain_mask = self.codec.domain_mask(self.domain_set)
        return self._domain_mask

    def claim_shadow(self, pid: ProcessorId,
                     config) -> Optional[_ShadowProcessor]:
        """The row-backed shadow for *pid*, once; ``None`` → use the real spec."""
        if (pid not in self.faulty or pid in self._claimed_shadows
                or config is not self.config):
            return None
        self._claimed_shadows.add(pid)
        if pid == config.source:
            return _ShadowProcessor(self, pid, config, None)
        return _ShadowProcessor(
            self, pid, config,
            self.main_count + self.shadow_pids.index(pid))

    # -- driver ----------------------------------------------------------------
    def run(self) -> "RunResult":
        self.adversary.bind(AdversaryContext(
            config=self.config, spec=_ShadowSpecProxy(self.spec, self),
            faulty=self.faulty, seed=self.seed))
        for round_number in range(1, self.total_rounds + 1):
            self.metrics.record_round(round_number)
            if round_number == 1:
                self._round_one()
            else:
                self._round(round_number)
        return self._build_result()

    def _build_result(self) -> "RunResult":
        """Collect the per-participant observations held by this process."""
        return self._assemble_result(
            [(tuple(sorted(self.trackers[i].suspects)),
              dict(self.discovery_logs[i]),
              self.meters[i].units)
             for i in range(self.main_count)])

    def _assemble_result(self, per_participant) -> "RunResult":
        """Build the :class:`RunResult` from ``(suspects, log, units)`` rows.

        *per_participant* is aligned with :attr:`participants`; the sharded
        coordinator feeds it rows gathered from worker processes, the
        single-process run feeds it its own trackers/meters.
        """
        from .simulation import RunResult
        discovered: Dict[ProcessorId, Tuple[ProcessorId, ...]] = {}
        discovery_logs: Dict[ProcessorId, Dict[int, int]] = {}
        if self.source_correct:
            source = self.config.source
            discovered[source] = ()
            discovery_logs[source] = {}
            self.metrics.record_computation(source, 0)
            self.metrics.record_discoveries(source, 0)
        for i, pid in enumerate(self.participants):
            suspects, log, units = per_participant[i]
            discovered[pid] = tuple(suspects)
            discovery_logs[pid] = dict(log)
            self.metrics.record_computation(pid, units)
            self.metrics.record_discoveries(pid, len(discovered[pid]))
        return RunResult(
            protocol=self.spec.name,
            adversary=self.adversary.name,
            config=self.config,
            faulty=self.faulty,
            decisions=dict(self.decisions),
            rounds=self.total_rounds,
            metrics=self.metrics,
            discovered=discovered,
            discovery_logs=discovery_logs,
        )

    # -- rounds ----------------------------------------------------------------
    def _round_one(self) -> None:
        config = self.config
        source = config.source
        messages: Dict[ProcessorId, Optional[Message]] = {
            pid: None for pid in self.correct}
        if self.source_correct:
            messages[source] = Message.single(
                (source,), config.initial_value, source, 1)
        table = _BroadcastTable(messages, config.processors)
        faulty_outboxes = self._faulty_outboxes(1, table)
        roots = self._initial_roots(faulty_outboxes)
        if self.source_correct:
            self._charge_sender(1, source, entry_count=1, level=1)
            # The source decides in round 1 and halts (it never sends again).
            self.decisions[source] = config.initial_value
        self._install_roots(roots)
        self._observe_delivery(1, messages, faulty_outboxes)
        self._corrupt(1)

    def _initial_roots(self, faulty_outboxes: Dict[ProcessorId, Outbox]):
        """Every row's root code: the source's (claimed) value, coerced."""
        np = self.np
        config = self.config
        if self.source_correct:
            return np.full(self.count,
                           self.codec.code(config.initial_value),
                           dtype=self.code_dtype)
        roots = np.empty(self.count, dtype=self.code_dtype)
        source_outbox = faulty_outboxes.get(config.source, {})
        root_seq = (config.source,)
        for i, pid in enumerate(self.row_pids):
            message = source_outbox.get(pid)
            claimed = None if message is None else message.value_for(root_seq)
            roots[i] = self.codec.code(coerce_value(claimed, config.domain))
        return roots

    def _install_roots(self, roots) -> None:
        self.state.set_roots(roots)
        for i in range(self.main_count):
            self.meters[i].charge()  # set_root stores one node

    def _round_broadcasts(self, round_number: int, prev_level: int
                          ) -> Dict[ProcessorId, Optional[Message]]:
        """Every correct participant's whole-round broadcast, by row reference."""
        messages: Dict[ProcessorId, Optional[Message]] = {
            pid: None for pid in self.correct}
        for i, pid in enumerate(self.participants):
            messages[pid] = NumpyLevelMessage(
                self.index, prev_level, self.state.row_view(prev_level, i),
                pid, round_number)
        return messages

    def _record_round_messages(self, round_number: int, prev_level: int,
                               prev_size: int) -> None:
        deliveries = self.n - 1
        round_entries = deliveries * prev_size
        round_bits = round_entries * entry_bits(prev_level, self.domain_size,
                                                self.n)
        for pid in self.participants:
            self.metrics.record_messages(round_number, pid, deliveries,
                                         round_entries, round_bits)

    def _round(self, round_number: int) -> None:
        np = self.np
        prev_level = self.state.num_levels
        prev_size = self.index.level_size(prev_level)
        messages = self._round_broadcasts(round_number, prev_level)
        table = _BroadcastTable(messages, self.config.processors)
        faulty_outboxes = self._faulty_outboxes(round_number, table)
        self._record_round_messages(round_number, prev_level, prev_size)

        # One claims row per distinct claim vector of the round: the previous
        # level stack itself (serving echoes and every correct broadcast),
        # an all-default row (missing or masked senders), and one row per
        # distinct faulty message.
        level = prev_level + 1
        default_idx = self.count
        # row_of rows support both layouts: nested python lists (small runs)
        # and ndarray row views — the faulty-message loop writes through
        # ``rows[i][sender]`` either way.
        if self._small_row_of:
            row_of_rows = [row[:] for row in self._row_of_base_py]
            for i, tracker in enumerate(self.trackers):
                suspects = tracker.suspects
                if suspects:
                    row = row_of_rows[i]
                    for pid in suspects:
                        row[pid] = default_idx
            for i in range(self.count):
                # A processor's own child slots echo its own stored values
                # even under (theoretical) self-suspicion — echo precedes the
                # masking check in the per-processor gather.
                row_of_rows[i][self.row_pids[i]] = i
        else:
            row_of_rows = self._row_of_base.copy()
            for i, tracker in enumerate(self.trackers):
                suspects = tracker.suspects
                if suspects:
                    row_of_rows[i, list(suspects)] = default_idx
            row_of_rows[self._row_indices, self._row_pids_arr] = (
                self._row_indices)
        extra_rows: List[object] = []
        row_cache: Dict[int, int] = {}
        for sender in sorted(self.faulty):
            outbox = faulty_outboxes.get(sender)
            if not outbox:
                continue
            for i, pid in enumerate(self.row_pids):
                if pid == sender or sender in self.trackers[i]:
                    continue  # masked sender: every claim becomes the default
                message = outbox.get(pid)
                if message is None:
                    continue
                row_idx = row_cache.get(id(message))
                if row_idx is None:
                    row_idx = default_idx + 1 + len(extra_rows)
                    extra_rows.append(
                        self._claim_row(message, prev_level, prev_size))
                    row_cache[id(message)] = row_idx
                row_of_rows[i][sender] = row_idx
        row_of = (np.asarray(row_of_rows, dtype=np.int64)
                  if self._small_row_of else row_of_rows)
        from ..core.npsupport import DEFAULT_CODE
        prev_stack = self.state.raw_stack(prev_level)
        default_row = np.full((1, prev_size), DEFAULT_CODE,
                              dtype=prev_stack.dtype)
        if extra_rows:
            claims = np.concatenate(
                [prev_stack, default_row, np.stack(extra_rows)])
        else:
            claims = np.concatenate([prev_stack, default_row])

        gather_level_batched(self.state, level, claims, row_of,
                             self.domain_mask())
        level_size = self.index.level_size(level)
        slots_table = self.index.slots_np(level)
        for i in range(self.main_count):
            # append (one unit per node) + the echo pass over the own-label
            # slots — the exact gather_level_numpy charges.
            self.meters[i].charge(level_size
                                  + len(slots_table[self.row_pids[i]][0]))

        if self.enable_fault_discovery:
            newly = discover_and_mask_batched(self.state, level,
                                              self.trackers, round_number,
                                              self.meters)
            for i in range(self.main_count):
                if newly[i]:
                    log = self.discovery_logs[i]
                    log[round_number] = (log.get(round_number, 0)
                                        + len(newly[i]))

        segment = self.segment_ends.get(round_number)
        if segment is not None:
            self._convert(round_number, segment)
        self._observe_delivery(round_number, messages, faulty_outboxes)
        self._corrupt(round_number)

    def _corrupt(self, round_number: int) -> None:
        """Run the adversary's state-corruption hook over the main rows.

        Invoked at the same point of the round as the per-processor driver —
        after every delivery and conversion, before the next round's
        broadcasts wrap the row views — over the same population (correct
        non-source participants; shadow rows are the adversary's own and are
        not exposed).
        """
        if not self._corrupting:
            return
        from .corruption import BatchedRowStateView
        level = self.state.num_levels
        stack = self.state.raw_stack(level)
        views = {pid: BatchedRowStateView(pid, level, stack[i])
                 for i, pid in enumerate(self.participants)}
        self.adversary.corrupt_state(round_number, views)

    def _convert(self, round_number: int, segment) -> None:
        convert_stacked_rows(
            self.state, segment, self.config.t, self.trackers, self.meters,
            self.discovery_logs, range(self.main_count), self.participants,
            self.decisions, round_number, self.total_rounds,
            self.enable_fault_discovery)

    # -- adversary plumbing -----------------------------------------------------
    def _faulty_outboxes(self, round_number: int,
                         table: _BroadcastTable) -> Dict[ProcessorId, Outbox]:
        """Collect, validate, and stamp the adversary's round messages.

        Performs the same checks — and raises the same
        :class:`SimulationError`\\ s — as the per-processor driver plus the
        synchronous network: no messages from non-faulty senders, no unknown
        destinations, no non-message payloads, no double delivery.
        """
        produced = self.adversary.round_messages(round_number, table)
        illegal = set(produced) - self.faulty
        if illegal:
            raise SimulationError(
                f"adversary produced messages for non-faulty processors "
                f"{sorted(illegal)}")
        normalized: Dict[ProcessorId, Outbox] = {}
        for sender, outbox in produced.items():
            clean: Outbox = {}
            for dest, message in outbox.items():
                if dest not in self.processor_set:
                    raise SimulationError(
                        f"message from {sender} addressed to unknown "
                        f"processor {dest}")
                if dest == sender:
                    continue
                if not isinstance(message, Message):
                    raise SimulationError(
                        f"sender {sender} produced a non-message payload "
                        f"for {dest}")
                if dest in clean:
                    raise SimulationError(
                        f"sender {sender} delivered twice to {dest} "
                        f"in round {round_number}")
                clean[dest] = stamp_sender(message, sender)
            normalized[sender] = clean
        return normalized

    def _claim_row(self, message: Message, prev_level: int, prev_size: int):
        """Encode one faulty message as a claims row (codes, index order).

        Aligned :class:`NumpyLevelMessage` broadcasts are taken by reference;
        anything else (round-1-style or adversary-built dict messages,
        cross-engine layouts) is decoded entry by entry — entries that name
        no node of the previous level are dropped and missing slots stay
        ``MISSING_CODE``, so the domain mask reproduces the per-processor
        foreign-layout fallback exactly.
        """
        if isinstance(message, NumpyLevelMessage) and message.matches(
                self.index, prev_level):
            return message.level_codes()
        from ..core.npsupport import MISSING_CODE
        row = self.np.full(prev_size, MISSING_CODE, dtype=self.code_dtype)
        id_map = self.index.id_map(prev_level)
        code_of = self.codec.code
        for seq, value in message.items():
            node_id = id_map.get(seq)
            if node_id is not None:
                row[node_id] = code_of(value)
        return row

    def _observe_delivery(self, round_number: int,
                          correct_messages: Dict[ProcessorId,
                                                 Optional[Message]],
                          faulty_outboxes: Dict[ProcessorId, Outbox]) -> None:
        """Hand the faulty processors' inboxes to the adversary.

        Builds the same per-faulty-pid ``{sender: message}`` dicts the
        network would have delivered (correct broadcasts first, then faulty
        senders in production order).  Row-backed shadows ignore them — the
        runner already stepped the shadow rows from the same messages — but
        a custom adversary's ``observe_delivery`` sees the full picture.
        """
        adversary = self.adversary
        observe = type(adversary).observe_delivery
        if observe is Adversary.observe_delivery or (
                observe is ShadowAdversary.observe_delivery
                and self._claimed_shadows >= self.faulty):
            # Provably a no-op: the base hook ignores its argument, and the
            # shadow hook only feeds shadows — all of which are row-backed
            # (their incoming() does nothing).  Skip building the inboxes.
            return
        if not self.faulty:
            adversary.observe_delivery(round_number, {})
            return
        inboxes: Dict[ProcessorId, Dict[ProcessorId, Message]] = {}
        for faulty_pid in self.faulty:
            inbox: Dict[ProcessorId, Message] = {}
            for pid in self.correct:
                message = correct_messages.get(pid)
                if message is not None:
                    inbox[pid] = message
            for sender, outbox in faulty_outboxes.items():
                message = outbox.get(faulty_pid)
                if message is not None:
                    inbox[sender] = message
            inboxes[faulty_pid] = inbox
        self.adversary.observe_delivery(round_number, inboxes)

    # -- metrics ----------------------------------------------------------------
    def _charge_sender(self, round_number: int, pid: ProcessorId,
                       entry_count: int, level: int) -> None:
        """Charge one correct sender's whole-round broadcast to the metrics.

        A broadcast reaches the ``n − 1`` other processors with *entry_count*
        entries of path length *level* each — the exact per-delivery totals
        the network records for a shared :class:`LevelMessage`.
        """
        deliveries = self.n - 1
        bits = entry_count * entry_bits(level, self.domain_size, self.n)
        self.metrics.record_messages(round_number, pid, deliveries,
                                     deliveries * entry_count,
                                     deliveries * bits)
