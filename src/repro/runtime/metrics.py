"""Cost accounting for protocol executions.

The paper's theorems bound three quantities per processor: the number of
rounds of communication, the message length in bits, and the local computation
time.  Wall-clock time of a Python simulation is not a faithful proxy for any
of these, so the simulator counts abstract units instead:

* **message values** — the number of (sequence, value) entries carried by a
  message; the paper's ``O(n^b)``-bit bounds count exactly these entries
  (times a constant for the value and the path encoding);
* **message bits** — entries × (value bits + path bits), a deterministic
  function of the entry count and the tree level, so growth *shapes* can be
  compared with the theorems;
* **local computation units** — one unit per tree-store operation and per
  node visited by a conversion function or the Fault Discovery Rule.

All counters are plain integers grouped per round and per processor so the
benchmark harness can print both totals and maxima (the theorems are
per-processor bounds).
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.sequences import ProcessorId


@dataclass
class ComputationMeter:
    """Per-processor counter of local computation units.

    Protocol objects own one meter each and bump it from their hot paths
    (tree stores, resolve visits, fault-discovery scans).  A meter can be
    shared read-only with :class:`RunMetrics` at the end of a run.
    """

    units: int = 0

    def charge(self, amount: int = 1) -> None:
        """Add *amount* computation units (no-op if amount is zero)."""
        self.units += amount


@dataclass
class MessageStats:
    """Aggregate size statistics for one processor's traffic in one round."""

    messages: int = 0
    value_entries: int = 0
    bits: int = 0

    def add(self, entries: int, bits: int) -> None:
        self.messages += 1
        self.value_entries += entries
        self.bits += bits


def entry_bits(path_length: int, value_domain_size: int = 2, n: int = 2) -> int:
    """Bits needed to encode one (path, value) entry of a message.

    A path of ``path_length`` labels over ``n`` processors costs
    ``path_length · ⌈log2 n⌉`` bits and the value costs ``⌈log2 |V|⌉`` bits
    (at least 1).  This is the accounting used for the ``O(n^b)`` message-size
    claims; absolute constants do not matter, growth does.
    """
    label_bits = max(1, math.ceil(math.log2(max(2, n))))
    value_bits = max(1, math.ceil(math.log2(max(2, value_domain_size))))
    return path_length * label_bits + value_bits


class RunMetrics:
    """All counters collected while simulating a single protocol execution."""

    def __init__(self) -> None:
        self.rounds_executed: int = 0
        #: round -> sender -> MessageStats
        self.sent: Dict[int, Dict[ProcessorId, MessageStats]] = defaultdict(
            lambda: defaultdict(MessageStats))
        #: pid -> local computation units (filled at the end of the run)
        self.computation_units: Dict[ProcessorId, int] = {}
        #: pid -> set size of discovered faults at decision time
        self.discovered_faults: Dict[ProcessorId, int] = {}

    # -- recording -----------------------------------------------------
    def record_round(self, round_number: int) -> None:
        self.rounds_executed = max(self.rounds_executed, round_number)

    def record_message(self, round_number: int, sender: ProcessorId,
                       entries: int, bits: int) -> None:
        self.sent[round_number][sender].add(entries, bits)

    def record_messages(self, round_number: int, sender: ProcessorId,
                        messages: int, entries: int, bits: int) -> None:
        """Record a whole round of one sender's traffic in one call.

        *entries* and *bits* are totals over the *messages* deliveries; the
        per-(round, sender) aggregates are identical to *messages* individual
        :meth:`record_message` calls, but the network makes one dictionary
        lookup per sender instead of one per delivery.
        """
        stats = self.sent[round_number][sender]
        stats.messages += messages
        stats.value_entries += entries
        stats.bits += bits

    def record_computation(self, pid: ProcessorId, units: int) -> None:
        self.computation_units[pid] = units

    def record_discoveries(self, pid: ProcessorId, count: int) -> None:
        self.discovered_faults[pid] = count

    # -- queries -------------------------------------------------------
    def total_messages(self) -> int:
        return sum(stats.messages
                   for per_round in self.sent.values()
                   for stats in per_round.values())

    def total_value_entries(self) -> int:
        return sum(stats.value_entries
                   for per_round in self.sent.values()
                   for stats in per_round.values())

    def total_bits(self) -> int:
        return sum(stats.bits
                   for per_round in self.sent.values()
                   for stats in per_round.values())

    def max_message_entries(self) -> int:
        """The largest single-round, single-sender entry count.

        The theorems bound the length of the *largest* message, so this is the
        number compared against ``O(n^b)``.
        """
        best = 0
        for per_round in self.sent.values():
            for stats in per_round.values():
                if stats.messages:
                    best = max(best, stats.value_entries // stats.messages)
        return best

    def max_message_bits(self) -> int:
        best = 0
        for per_round in self.sent.values():
            for stats in per_round.values():
                if stats.messages:
                    best = max(best, stats.bits // stats.messages)
        return best

    def per_round_entries(self) -> List[int]:
        """Total value entries sent by correct processors, indexed by round."""
        if not self.sent:
            return []
        horizon = max(self.sent)
        return [sum(stats.value_entries for stats in self.sent.get(r, {}).values())
                for r in range(1, horizon + 1)]

    def max_computation_units(self) -> int:
        return max(self.computation_units.values(), default=0)

    def total_computation_units(self) -> int:
        return sum(self.computation_units.values())

    def summary(self) -> Dict[str, int]:
        """A flat dictionary suitable for tabular reporting."""
        return {
            "rounds": self.rounds_executed,
            "total_messages": self.total_messages(),
            "total_value_entries": self.total_value_entries(),
            "total_bits": self.total_bits(),
            "max_message_entries": self.max_message_entries(),
            "max_message_bits": self.max_message_bits(),
            "max_computation_units": self.max_computation_units(),
        }


@dataclass
class CostModelPoint:
    """One point of an analytic or measured cost curve (used for figures)."""

    parameter: float
    rounds: float
    message_bits: float
    computation: float
    label: str = ""
    extra: Dict[str, float] = field(default_factory=dict)

    def as_row(self) -> Dict[str, float]:
        row = {
            "parameter": self.parameter,
            "rounds": self.rounds,
            "message_bits": self.message_bits,
            "computation": self.computation,
        }
        row.update(self.extra)
        return row


def geometric_mean(values: List[float]) -> Optional[float]:
    """Geometric mean helper used by the reporting layer (None for empty)."""
    cleaned = [v for v in values if v > 0]
    if not cleaned:
        return None
    return math.exp(sum(math.log(v) for v in cleaned) / len(cleaned))
