"""Supervision primitives: seeded backoff, audit trails, degradation ladders.

Self-stabilization practice says the substrate must recover from component
failure before anything durable can be layered above it.  This module is
that recovery machinery for the execution fabric: a
:class:`RetryPolicy` whose exponential backoff (including jitter) is a
**pure function** of a seed key and the attempt number — so a supervised
run is still a deterministic function of ``(request, seed)`` — and a
:class:`Supervisor` that walks a *degradation ladder* of execution rungs
(e.g. ``sharded → batched → pool → serial``), retrying each rung a bounded
number of times before downgrading to the next, and recording every retry,
downgrade, and skip as a structured audit trail.

The trail's records are plain JSON-ready dicts shared by everything that
reports resilience events — the supervised executor, the pool executor's
broken-pool recovery, and the sweep checkpoint writer — and end up in
``RunReport.metadata["resilience"]``:

``{"event": "retry", "stage": "sharded", "attempt": 1,
   "error": "WorkerDiedError", "detail": "...", "delay": 0.05}``
    one failed attempt, retried on the same rung after ``delay`` seconds;
``{"event": "downgrade", "from": "sharded", "to": "batched",
   "error": "WorkerTimeoutError", "detail": "..."}``
    a rung's retry budget is spent, the ladder steps down;
``{"event": "skip", "stage": "sharded", "reason": "..."}``
    a rung does not apply to this run (e.g. batched-ineligible);
``{"event": "completed", "stage": "batched", "attempt": 1}``
    the rung that finally produced the report.

A trail is reported only when something actually *failed* (a retry or a
downgrade happened); rungs that merely did not apply — the sharded rung on
a numpy-less interpreter, say — are an environment property, not a
recovery, so such runs are undisturbed and carry no metadata at all.

What counts as *recoverable* is deliberately narrow: fabric failures
(:class:`~repro.runtime.errors.FabricError`), simulation-substrate failures
(:class:`~repro.runtime.errors.SimulationError`), broken process pools, and
OS-level errors.  Configuration and registry errors propagate immediately —
retrying a malformed request would only mask the bug.
"""

from __future__ import annotations

import hashlib
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .errors import FabricError, SimulationError, SupervisionExhaustedError

#: The default degradation ladder, most capable rung first.
DEFAULT_LADDER: Tuple[str, ...] = ("sharded", "batched", "pool", "serial")

#: Exception types a supervisor retries / downgrades around.
RECOVERABLE: Tuple[type, ...] = (FabricError, SimulationError,
                                 BrokenProcessPool, OSError, EOFError)


class RungUnavailable(Exception):
    """Control flow: this rung does not apply to the run (not a failure)."""


def backoff_fraction(key: str, attempt: int) -> float:
    """A deterministic jitter fraction in ``[0, 1)`` for ``(key, attempt)``.

    A stable cryptographic hash, like
    :func:`repro.api.request.derive_seed`, so supervised executions are
    reproducible across processes and platforms.
    """
    digest = hashlib.sha256(
        f"repro-backoff:{key}:{attempt}".encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") / 2 ** 32


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic exponential backoff.

    ``delay(key, attempt)`` is a pure function: the base delay grows by
    ``backoff_factor`` per attempt, is capped at ``max_delay``, and is
    stretched by a seeded jitter of up to ``jitter`` (a fraction) derived
    from ``key`` — never from wall clock or a shared RNG.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    backoff_factor: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"a retry policy allows at least one attempt, "
                f"got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise ValueError("retry delays and jitter cannot be negative")

    def delay(self, key: str, attempt: int) -> float:
        """Seconds to wait after failed *attempt* (1-based) for *key*."""
        if attempt < 1:
            raise ValueError(f"attempts are 1-based, got {attempt}")
        raw = min(self.base_delay * self.backoff_factor ** (attempt - 1),
                  self.max_delay)
        return raw * (1.0 + self.jitter * backoff_fraction(key, attempt))


# ---------------------------------------------------------------------------
# Structured audit-trail records (the metadata["resilience"] vocabulary).
# ---------------------------------------------------------------------------

def _error_fields(error: BaseException) -> Dict[str, str]:
    return {"error": type(error).__name__, "detail": str(error)[:200]}


def retry_event(stage: str, attempt: int, error: BaseException,
                delay: float) -> Dict[str, Any]:
    return {"event": "retry", "stage": stage, "attempt": attempt,
            "delay": round(delay, 6), **_error_fields(error)}


def downgrade_event(from_stage: str, to_stage: Optional[str],
                    error: BaseException) -> Dict[str, Any]:
    return {"event": "downgrade", "from": from_stage, "to": to_stage,
            **_error_fields(error)}


def skip_event(stage: str, reason: str) -> Dict[str, Any]:
    return {"event": "skip", "stage": stage, "reason": reason}


def completed_event(stage: str, attempt: int) -> Dict[str, Any]:
    return {"event": "completed", "stage": stage, "attempt": attempt}


def pool_retry_record(attempt: int, error: BaseException,
                      fallback: str) -> Dict[str, Any]:
    """The structured successor of the pool executor's ``retried`` flag."""
    return {"event": "retry", "stage": "pool", "attempt": attempt,
            "fallback": fallback, **_error_fields(error)}


def checkpoint_retry_event(attempt: int, error: BaseException,
                           delay: float) -> Dict[str, Any]:
    return {"event": "retry", "stage": "checkpoint", "attempt": attempt,
            "delay": round(delay, 6), **_error_fields(error)}


class Supervisor:
    """Walk a degradation ladder of rungs with bounded, seeded retries.

    *rungs* is an ordered sequence of ``(stage_name, thunk)`` pairs.  Each
    thunk either returns the result, raises :class:`RungUnavailable` (the
    rung does not apply — recorded as a skip, no retries), raises a
    recoverable error (retried up to ``retry.max_attempts`` times with
    seeded backoff, then downgraded), or raises anything else (propagated
    immediately).  :meth:`run` returns ``(result, trail)`` where *trail* is
    the structured audit of everything that went wrong on the way — empty
    for an undisturbed first-rung success.
    """

    def __init__(self, rungs: Sequence[Tuple[str, Callable[[], Any]]],
                 retry: Optional[RetryPolicy] = None, key: str = "",
                 recoverable: Tuple[type, ...] = RECOVERABLE,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        if not rungs:
            raise ValueError("a supervisor needs at least one rung")
        self.rungs = list(rungs)
        self.retry = retry or RetryPolicy()
        self.key = key
        self.recoverable = recoverable
        self._sleep = sleep

    def run(self) -> Tuple[Any, List[Dict[str, Any]]]:
        trail: List[Dict[str, Any]] = []
        last_error: Optional[BaseException] = None
        for position, (stage, thunk) in enumerate(self.rungs):
            for attempt in range(1, self.retry.max_attempts + 1):
                try:
                    result = thunk()
                except RungUnavailable as skip:
                    trail.append(skip_event(stage, str(skip)))
                    break
                except self.recoverable as exc:
                    last_error = exc
                    if attempt < self.retry.max_attempts:
                        delay = self.retry.delay(f"{self.key}:{stage}",
                                                 attempt)
                        trail.append(retry_event(stage, attempt, exc, delay))
                        if delay > 0:
                            self._sleep(delay)
                    else:
                        next_stage = (self.rungs[position + 1][0]
                                      if position + 1 < len(self.rungs)
                                      else None)
                        trail.append(downgrade_event(stage, next_stage, exc))
                        break
                else:
                    if any(event["event"] in ("retry", "downgrade")
                           for event in trail):
                        trail.append(completed_event(stage, attempt))
                        return result, trail
                    # Nothing actually *failed*: rungs that merely did not
                    # apply (e.g. sharded without numpy) are an environment
                    # property, not a recovery — the run is undisturbed and
                    # reports no trail at all.
                    return result, []
        summary = "; ".join(
            f"{event.get('stage', event.get('from'))}: "
            f"{event.get('error', event.get('reason', '?'))}"
            for event in trail) or "no rung applied"
        raise SupervisionExhaustedError(
            f"every rung of the ladder "
            f"{tuple(stage for stage, _ in self.rungs)} failed "
            f"({summary})") from last_error
