"""Infrastructure chaos: injectable faults for the execution fabric.

The fault-model zoo (:mod:`repro.adversary`) attacks the *protocol*; this
module attacks the *substrate* the protocol runs on.  A
:class:`ChaosPolicy` is a JSON-round-trippable schedule of infrastructure
faults — worker kills and hangs, pipe closes and corruptions, slow shards,
checkpoint write failures — that the executor layer injects at well-defined
points, so the supervision machinery
(:mod:`repro.runtime.supervision`) can be exercised deterministically:
property tests assert that every schedule the fabric is specified to
survive yields reports byte-identical to an undisturbed run.

Fault kinds and where they fire
-------------------------------

=====================  ==================  =====================================
kind                   site                effect
=====================  ==================  =====================================
``worker-kill``        ``shard-round``     the targeted shard worker hard-exits
                                           at the start of the targeted round
                                           (shard 0 — the coordinator-local
                                           block — raises
                                           :class:`~repro.runtime.errors.WorkerDiedError`
                                           instead of killing the coordinator)
``worker-hang``        ``shard-round``     the worker sleeps ``delay`` seconds —
                                           pick ``delay`` past the supervisor's
                                           deadline to simulate a hang
``slow-shard``         ``shard-round``     the worker sleeps ``delay`` seconds
                                           but stays inside the deadline
``pipe-close``         ``shard-send``      the coordinator's pipe to the shard
                                           closes just before the round payload
                                           ships
``pipe-corrupt``       ``shard-send``      the round payload is replaced with
                                           garbage the worker cannot interpret
``checkpoint-write-fail``  ``checkpoint-write``  the Nth checkpoint append
                                           raises :class:`OSError`
``pool-worker-kill``   ``pool-request``    the pool worker executing the
                                           targeted request index hard-exits
                                           (poisoning the pool)
``cache-write-fail``   ``cache-write``     the Nth serve-cache store raises
                                           :class:`OSError` after leaving a
                                           torn entry file behind (the cache
                                           is best-effort: the service keeps
                                           serving and counts the failure)
``journal-torn-write`` ``journal-write``   the Nth serve-journal append writes
                                           only a prefix of its line and then
                                           raises — the on-disk torn tail is
                                           exactly what a ``kill -9``
                                           mid-``write`` leaves
``serve-worker-death`` ``serve-job``       the serve worker executing the
                                           targeted job index dies
                                           (:class:`~repro.runtime.errors.WorkerDiedError`);
                                           the service's supervision retries
                                           the journaled job
=====================  ==================  =====================================

Activation is ambient: :func:`chaos_scope` installs a
:class:`ChaosController` for the dynamic extent of a sweep or executor, and
the injection points (:mod:`repro.runtime.sharding`, :mod:`repro.api.sweep`,
:mod:`repro.api.executors`, and the serving layer :mod:`repro.serve`)
consult :func:`current_chaos`.  Each injection
fires a bounded number of ``times`` (default once) and every firing is
recorded on the controller, so a schedule is a *deterministic* function of
the execution it perturbs — no randomness, no wall-clock coupling.  Worker-
side faults are claimed by the coordinator at spawn time and shipped to the
worker as plain data, which is what makes "fire once, then the retry runs
clean" hold across process boundaries.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple, Union

from .errors import ConfigurationError

#: Every injectable fault kind, mapped to the site where it fires.
KIND_SITES: Dict[str, str] = {
    "worker-kill": "shard-round",
    "worker-hang": "shard-round",
    "slow-shard": "shard-round",
    "pipe-close": "shard-send",
    "pipe-corrupt": "shard-send",
    "checkpoint-write-fail": "checkpoint-write",
    "pool-worker-kill": "pool-request",
    "cache-write-fail": "cache-write",
    "journal-torn-write": "journal-write",
    "serve-worker-death": "serve-job",
}

#: Kinds the coordinator ships into shard workers (fired worker-side).
WORKER_KINDS = ("worker-kill", "worker-hang", "slow-shard")

#: Kinds that require a positive ``delay``.
_TIMED_KINDS = ("worker-hang", "slow-shard")


@dataclass(frozen=True)
class FaultInjection:
    """One scheduled infrastructure fault.

    ``shard``/``round``/``index`` narrow where the fault fires (``None`` is
    a wildcard), ``delay`` is the sleep for timed kinds, and ``times`` caps
    how often the injection fires before it is spent.
    """

    kind: str
    shard: Optional[int] = None
    round: Optional[int] = None
    index: Optional[int] = None
    delay: float = 0.0
    times: int = 1

    def __post_init__(self) -> None:
        if self.kind not in KIND_SITES:
            raise ConfigurationError(
                f"unknown chaos fault kind {self.kind!r}; known: "
                f"{sorted(KIND_SITES)}")
        if self.times < 1:
            raise ConfigurationError(
                f"a chaos fault fires at least once, got times={self.times}")
        if self.kind in _TIMED_KINDS and not self.delay > 0:
            raise ConfigurationError(
                f"{self.kind} needs a positive delay (seconds); "
                f"got {self.delay!r}")
        if self.delay < 0:
            raise ConfigurationError(
                f"a chaos delay cannot be negative, got {self.delay!r}")

    @property
    def site(self) -> str:
        return KIND_SITES[self.kind]

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"kind": self.kind}
        for name in ("shard", "round", "index"):
            value = getattr(self, name)
            if value is not None:
                data[name] = value
        if self.delay:
            data["delay"] = self.delay
        if self.times != 1:
            data["times"] = self.times
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultInjection":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown chaos fault field(s) {sorted(unknown)}; "
                f"accepted: {sorted(known)}")
        if "kind" not in data:
            raise ConfigurationError(
                "a chaos fault needs a \"kind\" field")
        return cls(**dict(data))


POLICY_KIND = "repro-chaos-policy"
POLICY_VERSION = 1


@dataclass(frozen=True)
class ChaosPolicy:
    """A named, serializable schedule of infrastructure faults."""

    faults: Tuple[FaultInjection, ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for fault in self.faults:
            if not isinstance(fault, FaultInjection):
                raise ConfigurationError(
                    f"a chaos policy holds FaultInjection values, "
                    f"got {fault!r}")

    def controller(self) -> "ChaosController":
        return ChaosController(self)

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "kind": POLICY_KIND,
            "version": POLICY_VERSION,
            "faults": [fault.to_dict() for fault in self.faults],
        }
        if self.name:
            data["name"] = self.name
        return data

    @classmethod
    def from_dict(cls, data: Union[Mapping[str, Any], List[Any]]
                  ) -> "ChaosPolicy":
        if isinstance(data, list):  # a bare fault list is a policy too
            return cls(faults=tuple(FaultInjection.from_dict(f)
                                    for f in data))
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"a chaos policy deserializes from an object or a fault "
                f"list, got {type(data).__name__}")
        if data.get("kind", POLICY_KIND) != POLICY_KIND:
            raise ConfigurationError(
                f"not a chaos policy (kind={data.get('kind')!r}; expected "
                f"{POLICY_KIND!r})")
        if data.get("version", POLICY_VERSION) != POLICY_VERSION:
            raise ConfigurationError(
                f"chaos policy version {data.get('version')!r} is not "
                f"readable by this build (version {POLICY_VERSION})")
        faults = data.get("faults", [])
        if not isinstance(faults, list):
            raise ConfigurationError(
                "a chaos policy's \"faults\" must be a list")
        return cls(faults=tuple(FaultInjection.from_dict(f) for f in faults),
                   name=str(data.get("name", "")))

    @classmethod
    def from_json_file(cls, path: str) -> "ChaosPolicy":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read chaos policy {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"chaos policy {path} is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)


def build_chaos(value: Union["ChaosPolicy", "ChaosController", Mapping,
                             List, None]) -> Optional["ChaosController"]:
    """Normalise a chaos argument (policy, controller, plain data, ``None``)."""
    if value is None:
        return None
    if isinstance(value, ChaosController):
        return value
    if isinstance(value, ChaosPolicy):
        return value.controller()
    return ChaosPolicy.from_dict(value).controller()


class ChaosController:
    """The live state of one policy: which injections have fired where.

    A controller is consumed by at most one execution context at a time;
    ``take`` methods decrement each matching injection's remaining budget
    and append an audit record to :attr:`fired`, so retried attempts see the
    already-spent injections as inert and run clean.
    """

    def __init__(self, policy: ChaosPolicy) -> None:
        self.policy = policy
        self._remaining: List[int] = [fault.times for fault in policy.faults]
        #: Audit log of every firing: ``(site, coords, fault dict)``.
        self.fired: List[Dict[str, Any]] = []

    def _matches(self, fault: FaultInjection, site: str,
                 coords: Dict[str, Optional[int]]) -> bool:
        if fault.site != site:
            return False
        for name, value in coords.items():
            wanted = getattr(fault, name)
            if wanted is not None and wanted != value:
                return False
        return True

    def _claim(self, position: int, site: str,
               coords: Dict[str, Optional[int]]) -> FaultInjection:
        self._remaining[position] -= 1
        fault = self.policy.faults[position]
        self.fired.append({"site": site, **{k: v for k, v in coords.items()
                                            if v is not None},
                           "fault": fault.to_dict()})
        return fault

    def take(self, site: str, **coords: Optional[int]
             ) -> List[FaultInjection]:
        """Claim every live injection matching *site* and *coords*."""
        taken = []
        for position, fault in enumerate(self.policy.faults):
            if self._remaining[position] > 0 and self._matches(fault, site,
                                                               coords):
                taken.append(self._claim(position, site, coords))
        return taken

    def take_for_shard(self, shard: int) -> List[Dict[str, Any]]:
        """Claim the worker-side faults for *shard*, as shippable plain data.

        Claimed at spawn time — the worker fires each entry once at its
        matching round — so a supervised retry that respawns the worker sees
        them spent and runs clean.
        """
        taken = []
        for position, fault in enumerate(self.policy.faults):
            if (self._remaining[position] > 0
                    and fault.kind in WORKER_KINDS
                    and fault.shard in (None, shard)):
                taken.append(self._claim(position, "shard-round",
                                         {"shard": shard}).to_dict())
        return taken

    def live_faults(self) -> List[FaultInjection]:
        """The injections that still have firings left."""
        return [fault for position, fault in enumerate(self.policy.faults)
                if self._remaining[position] > 0]


#: The ambient controller injection points consult; ``None`` means no chaos.
_ACTIVE: Optional[ChaosController] = None


def current_chaos() -> Optional[ChaosController]:
    """The controller active in this process, if any."""
    return _ACTIVE


@contextmanager
def chaos_scope(chaos: Union[ChaosPolicy, ChaosController, Mapping, List,
                             None]) -> Iterator[Optional[ChaosController]]:
    """Activate *chaos* (policy, controller, plain data) for a dynamic extent.

    ``None`` leaves whatever is already active untouched, so nested scopes
    compose: a sweep-level policy stays in force through an executor that
    was built without one.
    """
    global _ACTIVE
    controller = build_chaos(chaos)
    if controller is None:
        yield _ACTIVE
        return
    previous = _ACTIVE
    _ACTIVE = controller
    try:
        yield controller
    finally:
        _ACTIVE = previous
