"""Sharded whole-run stepping: one batched run split across worker processes.

The batched executor (:mod:`.batched`) already steps every correct processor
— and every adversary shadow — of a run as one ``(rows, nodes)`` ndarray per
level.  At large ``n`` those per-level stacks outgrow one interpreter's cache
(the ``n ≥ 16`` regime PERFORMANCE.md flags), and one process is the ceiling
on how much silicon a single run can use.  This module splits the row stack
itself: a **coordinator** keeps the run's control plane — the adversary, the
shadows' outgoing broadcasts, message metrics, and a mirror of the full
:class:`~repro.core.npsupport.BatchedEIGState` — while ``k`` **worker
processes** each own a contiguous block of rows and run the round kernels
(gather, the Fault Discovery/Masking fixpoint, conversion) over their block
only.

Per round the coordinator and the shards exchange exactly two payloads of
serialized code ndarrays:

* coordinator → every shard: the round's **claims matrix** (the previous
  level stack — a correct broadcast *is* the sender's row — plus the
  all-default row and one row per distinct faulty message), the per-row
  faulty-claim routing, and any values newly interned in the process-wide
  value codec (workers replay them with
  :meth:`~repro.core.npsupport.ValueCodec.adopt`, so codes decode
  identically on both sides);
* every shard → coordinator: its block of the new leaf level, post-masking
  (or the fresh roots after a conversion round) — one gather per shard per
  round, which the coordinator concatenates back into the mirror stack that
  feeds the next round's broadcasts and claims.

Observational identity to the single-process batched engine is exact, by
construction: the adversary runs **unchanged in the coordinator** (same
broadcast table, same row-backed shadows over the mirror stack, same rng
draw order — seeded liars reproduce byte-identically), and every kernel the
workers run is row-independent (each row's gather routing, discovery
fixpoint, meter charges, and conversion votes read only that row plus the
shared claims), so partitioning the rows cannot change any row's outcome.
The property tests in ``tests/test_sharding.py`` pin decisions, discoveries,
discovery logs, per-round message stats, computation units, and seeded-liar
reproducibility against the batched engine at small ``n``.

Eligibility is the batched executor's (plain
:class:`~repro.core.shifting.ShiftingEIGProcessor` specs, numpy importable);
:func:`run_sharded_if_supported` answers ``None`` for everything else, and
degenerate splits (one shard, fewer rows than shards, platforms that cannot
spawn processes) fall back to the single-process batched run.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from typing import Dict, List, Optional, Tuple

from ..core.engine import NUMPY, numpy_available, use_engine
from ..core.fault_discovery import FaultTracker
from ..core.fault_masking import (discover_and_mask_batched,
                                  gather_level_batched)
from ..core.sequences import ProcessorId, sequence_index
from ..core.values import is_bottom
from .batched import (_BatchedRun, _BroadcastTable, _ProbeFacts,
                      convert_stacked_rows)
from .chaos import current_chaos
from .errors import (SimulationError, WorkerDiedError, WorkerShutdownError,
                     WorkerTimeoutError)
from .metrics import ComputationMeter

#: Payload tags of the coordinator → worker protocol.
_ROUND_ONE, _ROUND, _FINISH, _STOP = "round1", "round", "finish", "stop"
#: Heartbeat: the coordinator pings, a live worker answers ``("ok", "pong")``.
_PING = "ping"

#: Per-stage grace (seconds) of the shutdown escalation: a worker that has
#: not exited *join* seconds after STOP is terminated; one that survives
#: SIGTERM another *term* seconds is killed; surviving SIGKILL for *kill*
#: seconds more raises :class:`WorkerShutdownError` instead of hanging.
_SHUTDOWN_GRACE = (1.0, 1.0, 2.0)


def shard_supported(spec, config) -> bool:
    """Whether a run of *spec* could take the sharded path (batched eligibility)."""
    from .batched import batched_supported
    return batched_supported(spec, config)


def run_sharded_if_supported(spec, config, faulty_set, adversary, seed: int,
                             shards: Optional[int] = None,
                             deadline: Optional[float] = None):
    """Run one agreement instance row-sharded; ``None`` means "use a fallback".

    Mirrors :func:`repro.runtime.batched.run_batched_if_supported`: support
    is checked *before* the adversary is bound, so a ``None`` return leaves
    the adversary untouched for whichever driver the caller falls back to.
    Degenerate splits (``shards <= 1`` after clamping to the row count) run
    the single-process batched executor instead — same observations, no
    worker processes.

    *deadline* (seconds, per worker reply) arms the supervision guards: a
    heartbeat handshake after spawn, and a bounded wait on every round
    reply — a worker that hangs past it raises a named
    :class:`~repro.runtime.errors.WorkerTimeoutError` instead of stalling
    the coordinator forever.  ``None`` (the default) keeps the historical
    blocking behaviour.
    """
    if not numpy_available():
        return None
    if getattr(adversary, "batched_fallback_reason", None) is not None:
        return None  # not expressible batched at all — per-processor fallback
    probe = _ProbeFacts(spec.build(config.source, config))
    if not probe.supported:
        return None
    correct = [p for p in config.processors if p not in faulty_set]
    participants = [p for p in correct if p != config.source]
    if not participants:
        return None
    from .corruption import corruption_enabled
    if corruption_enabled(adversary):
        # State corruption edits rows in place; the sharded workers own their
        # row blocks while the coordinator keeps a mirror stack, so in-place
        # edits would desync them.  The single-process batched run honours
        # the hook and is observationally identical.
        with use_engine(NUMPY):
            return _BatchedRun(spec, config, faulty_set, adversary, seed,
                               probe, correct, participants).run()
    rows = len(participants) + sum(1 for p in faulty_set
                                   if p != config.source)
    if shards is None:
        shards = multiprocessing.cpu_count()
    shards = max(1, min(int(shards), rows))
    with use_engine(NUMPY):
        if shards <= 1:
            return _BatchedRun(spec, config, faulty_set, adversary, seed,
                               probe, correct, participants).run()
        runner = _ShardedRun(spec, config, faulty_set, adversary, seed,
                             probe, correct, participants, shards,
                             deadline=deadline)
        try:
            runner.start_workers()
        except (OSError, PermissionError):  # pragma: no cover - sandboxes
            runner.shutdown()
            return _BatchedRun(spec, config, faulty_set, adversary, seed,
                               probe, correct, participants).run()
        try:
            return runner.run()
        finally:
            runner.shutdown()


class _ShardedRun(_BatchedRun):
    """The coordinator: the batched run with its row stepping delegated.

    Inherits every piece of the batched run's control plane unchanged — the
    adversary plumbing (:meth:`_faulty_outboxes`, the lazy broadcast table,
    :meth:`_observe_delivery`), the row-backed shadow processors (they wrap
    rows of the coordinator's *mirror* stack), metrics accounting, and the
    result assembly — and overrides only where stepping happens:
    :meth:`_install_roots` and :meth:`_round` ship payloads to the shard
    workers instead of running the kernels, and :meth:`_build_result`
    collects each worker's trackers/logs/meters/decisions.
    """

    def __init__(self, spec, config, faulty_set, adversary, seed, probe,
                 correct, participants, shards: int,
                 deadline: Optional[float] = None) -> None:
        super().__init__(spec, config, faulty_set, adversary, seed, probe,
                         correct, participants)
        from ..core.npsupport import shard_bounds
        self.bounds = shard_bounds(self.count, shards)
        self.shards = len(self.bounds)
        self.deadline = deadline
        #: Shard 0 runs in-process (the coordinator already holds the full
        #: mirror, so stepping its own block costs no claims shipment —
        #: halving IPC for the common two-shard split); shards 1.. are
        #: worker processes.
        self._local_shard: Optional[_ShardWorker] = None
        self._conns: List[object] = []
        self._procs: List[object] = []
        self._codec_sent = 1

    # -- worker lifecycle ---------------------------------------------------
    def _shard_init(self, start: int, stop: int,
                    shard_index: int) -> Dict[str, object]:
        config = self.config
        controller = current_chaos()
        return {
            "source": config.source,
            "processors": tuple(config.processors),
            "n": self.n,
            "t": config.t,
            "domain": tuple(config.domain),
            "participants": list(self.participants),
            "row_pids": self.row_pids[start:stop],
            "row_start": start,
            "main_count": self.main_count,
            "count": self.count,
            "total_rounds": self.total_rounds,
            "segment_ends": self.segment_ends,
            "enable_fault_discovery": self.enable_fault_discovery,
            "chaos": (controller.take_for_shard(shard_index)
                      if controller is not None else []),
        }

    def start_workers(self) -> None:
        context = multiprocessing.get_context()
        for shard_index, (start, stop) in enumerate(self.bounds[1:], 1):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_shard_worker_main,
                args=(child_conn, self._shard_init(start, stop, shard_index)),
                daemon=True)
            process.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(process)
        # Built after the spawns so fork-started workers do not inherit it.
        self._local_shard = _ShardWorker(self._shard_init(*self.bounds[0], 0))
        if self.deadline is not None:
            self.heartbeat()

    def heartbeat(self) -> None:
        """Ping every worker and await its reply within the deadline.

        The supervision handshake: catches workers that died on spawn (bad
        import, immediate OOM kill) before the first round ships, and gives
        tests a liveness probe.  Raises the same named errors as a round
        reply would.
        """
        self._send_all([(_PING,)] * len(self._conns))
        self._recv_all()

    def shutdown(self) -> None:
        """Escalating teardown: STOP → join → terminate → kill → named error.

        Never hangs: each stage waits a bounded grace
        (:data:`_SHUTDOWN_GRACE`), exited workers are reaped, and a worker
        that somehow survives SIGKILL surfaces as a
        :class:`WorkerShutdownError` instead of a stuck coordinator.
        """
        join_grace, term_grace, kill_grace = _SHUTDOWN_GRACE
        for conn in self._conns:
            try:
                conn.send((_STOP,))
            except (OSError, BrokenPipeError):
                pass
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        stragglers = []
        for process in self._procs:
            process.join(timeout=join_grace)
            if process.is_alive():
                process.terminate()
                process.join(timeout=term_grace)
            if process.is_alive():  # pragma: no cover - needs SIGTERM immunity
                process.kill()
                process.join(timeout=kill_grace)
            if process.is_alive():  # pragma: no cover - unkillable worker
                stragglers.append(process.pid)
            else:
                try:
                    process.close()  # reap: releases the zombie entry
                except ValueError:  # pragma: no cover - raced an exit
                    pass
        self._conns = []
        self._procs = []
        if stragglers:  # pragma: no cover - unkillable worker
            raise WorkerShutdownError(
                f"shard worker process(es) {stragglers} survived "
                f"terminate and kill; abandoning them un-reaped")

    # -- shard messaging ----------------------------------------------------
    def _codec_update(self) -> Tuple[int, list]:
        """The codec slice interned since the last shipment."""
        start = self._codec_sent
        values = self.codec.snapshot(start)
        self._codec_sent = start + len(values)
        return start, values

    def _send_all(self, payloads, round_number: Optional[int] = None) -> None:
        controller = current_chaos()
        for offset, (conn, payload) in enumerate(zip(self._conns, payloads)):
            shard = offset + 1
            if controller is not None and round_number is not None:
                for fault in controller.take("shard-send", shard=shard,
                                             round=round_number):
                    if fault.kind == "pipe-close":
                        try:
                            conn.close()
                        except OSError:
                            pass
                    elif fault.kind == "pipe-corrupt":
                        payload = ("chaos-corrupted-payload",)
            try:
                conn.send(payload)
            except (OSError, BrokenPipeError, ValueError) as exc:
                raise WorkerDiedError(
                    f"pipe to shard worker {shard} is closed: {exc}"
                ) from exc

    def _recv_all(self) -> List[object]:
        replies = []
        for offset, conn in enumerate(self._conns):
            shard = offset + 1
            if self.deadline is not None:
                try:
                    ready = conn.poll(self.deadline)
                except (OSError, EOFError) as exc:
                    raise WorkerDiedError(
                        f"shard worker {shard} died mid-round: {exc}"
                    ) from exc
                if not ready:
                    raise WorkerTimeoutError(
                        f"shard worker {shard} missed its "
                        f"{self.deadline:g}s reply deadline")
            try:
                status, payload = conn.recv()
            except (EOFError, OSError) as exc:
                raise WorkerDiedError(
                    f"shard worker {shard} died mid-round: {exc}") from exc
            if status != "ok":
                raise SimulationError(
                    f"sharded run worker failed:\n{payload}")
            replies.append(payload)
        return replies

    # -- overridden stepping -------------------------------------------------
    def _install_roots(self, roots) -> None:
        # Mirror first (shadow broadcasts wrap mirror rows), then the shards.
        self.state.set_roots(roots)
        start, values = self._codec_update()
        self._send_all([(_ROUND_ONE, roots[lo:hi], start, values)
                        for lo, hi in self.bounds[1:]], round_number=1)
        self._local_shard.round_one(roots[self.bounds[0][0]:
                                          self.bounds[0][1]])
        self._recv_all()

    def _round(self, round_number: int) -> None:
        np = self.np
        prev_level = self.state.num_levels
        prev_size = self.index.level_size(prev_level)
        messages = self._round_broadcasts(round_number, prev_level)
        table = _BroadcastTable(messages, self.config.processors)
        faulty_outboxes = self._faulty_outboxes(round_number, table)
        self._record_round_messages(round_number, prev_level, prev_size)

        # The claims matrix: previous level stack + the all-default row +
        # one row per distinct faulty message.  Unlike the single-process
        # round, rows are deduplicated per message object *without* the
        # receiver-side masking check (the coordinator holds no trackers);
        # workers drop routings whose sender their row already masks, so a
        # claims row every receiver masks simply goes unread.
        default_idx = self.count
        extra_rows: List[object] = []
        row_cache: Dict[int, int] = {}
        routing: List[Dict[ProcessorId, int]] = [{} for _ in
                                                 range(self.count)]
        for sender in sorted(self.faulty):
            outbox = faulty_outboxes.get(sender)
            if not outbox:
                continue
            for i, pid in enumerate(self.row_pids):
                if pid == sender:
                    continue  # own child slots echo the shadow's stored values
                message = outbox.get(pid)
                if message is None:
                    continue
                row_idx = row_cache.get(id(message))
                if row_idx is None:
                    row_idx = default_idx + 1 + len(extra_rows)
                    extra_rows.append(
                        self._claim_row(message, prev_level, prev_size))
                    row_cache[id(message)] = row_idx
                routing[i][sender] = row_idx
        from ..core.npsupport import DEFAULT_CODE
        prev_stack = self.state.raw_stack(prev_level)
        default_row = np.full((1, prev_size), DEFAULT_CODE,
                              dtype=prev_stack.dtype)
        stacks = [prev_stack, default_row]
        if extra_rows:
            stacks.append(np.stack(extra_rows))
        claims = np.ascontiguousarray(np.concatenate(stacks))

        start, values = self._codec_update()
        self._send_all([(_ROUND, round_number, claims, routing[lo:hi],
                         start, values) for lo, hi in self.bounds[1:]],
                       round_number=round_number)
        # Step the coordinator's own block while the workers chew theirs.
        local_block = self._local_shard.round(
            round_number, claims, routing[self.bounds[0][0]:
                                          self.bounds[0][1]])
        blocks = [local_block] + self._recv_all()
        assembled = np.concatenate(blocks)
        if round_number in self.segment_ends:
            self.state.reset_to_roots(assembled)
        else:
            self.state.append_level(assembled)
        self._observe_delivery(round_number, messages, faulty_outboxes)

    def _build_result(self):
        self._send_all([(_FINISH,)] * (self.shards - 1))
        per_participant = [None] * self.main_count
        finals = [self._local_shard.finish()] + self._recv_all()
        for final in finals:
            for global_row, suspects, log, units in final["mains"]:
                per_participant[global_row] = (suspects, log, units)
            self.decisions.update(final["decisions"])
        return self._assemble_result(per_participant)


# ---------------------------------------------------------------------------
# The worker side: pure kernel execution over one contiguous row block.
# ---------------------------------------------------------------------------

def _shard_worker_main(conn, init) -> None:  # pragma: no cover - subprocess
    """Worker process entry point: serve round payloads until stopped."""
    try:
        shard = _ShardWorker(init, in_subprocess=True)
        while True:
            try:
                payload = conn.recv()
            except EOFError:
                return
            kind = payload[0] if isinstance(payload, tuple) and payload \
                else payload
            if kind == _ROUND_ONE:
                _, roots, start, values = payload
                shard.adopt_codec(start, values)
                shard.round_one(roots)
                conn.send(("ok", None))
            elif kind == _ROUND:
                _, round_number, claims, routing, start, values = payload
                shard.adopt_codec(start, values)
                conn.send(("ok", shard.round(round_number, claims, routing)))
            elif kind == _FINISH:
                conn.send(("ok", shard.finish()))
            elif kind == _PING:
                conn.send(("ok", "pong"))
            elif kind == _STOP:
                return
            else:
                # An unrecognised payload (e.g. a corrupted pipe) is an
                # error the coordinator must see, never a silent exit that
                # would leave it waiting on a vanished worker.
                raise SimulationError(
                    f"shard worker received an unintelligible payload: "
                    f"{kind!r}")
    # repro-lint: waive[errors/broad-except] -- worker-process top level:
    # the traceback is shipped over the pipe as an ("error", ...) payload
    # so the coordinator fail-stops with the real cause
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (OSError, BrokenPipeError):
            pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


class _ShardWorker:
    """One worker's state: a row block stepped with the batched kernels.

    Holds the local :class:`BatchedEIGState` (``local_count`` rows), the
    local trackers/meters/logs, and the gather routing table.  Claims-row
    indices stay **global** (the claims matrix always ships whole), so the
    routing base maps sender pid → the sender's global row, ``count`` is the
    all-default row, and faulty routings arrive pre-assigned from the
    coordinator.
    """

    def __init__(self, init, in_subprocess: bool = False) -> None:
        from ..core.npsupport import (BatchedEIGState, CODE_DTYPE_NAME,
                                      VALUE_CODEC, require_numpy)
        #: Chaos faults claimed for this shard at spawn time, each a plain
        #: dict firing once at its matching round (see repro.runtime.chaos).
        self.chaos = [dict(fault) for fault in init.get("chaos") or []]
        self._in_subprocess = in_subprocess
        np = self.np = require_numpy()
        self.index = sequence_index(init["source"], init["processors"], False)
        self.n = init["n"]
        self.t = init["t"]
        self.codec = VALUE_CODEC
        self.code_dtype = CODE_DTYPE_NAME
        self.domain = tuple(init["domain"])
        self.domain_set = frozenset(v for v in self.domain
                                    if not is_bottom(v))
        self.row_pids = list(init["row_pids"])
        self.row_start = init["row_start"]
        self.local_count = len(self.row_pids)
        self.main_count = init["main_count"]
        self.count = init["count"]
        self.total_rounds = init["total_rounds"]
        self.segment_ends = init["segment_ends"]
        self.enable_fault_discovery = init["enable_fault_discovery"]
        self.state = BatchedEIGState(self.index, self.local_count)
        self.trackers = [FaultTracker(pid, self.t) for pid in self.row_pids]
        shadow_meter = ComputationMeter()  # shared sink, never read
        self.meters = [ComputationMeter()
                       if self.row_start + i < self.main_count
                       else shadow_meter
                       for i in range(self.local_count)]
        #: local indices of the rows that belong to correct participants
        self.local_mains = [i for i in range(self.local_count)
                            if self.row_start + i < self.main_count]
        self.discovery_logs: List[Dict[int, int]] = [
            {} for _ in range(self.local_count)]
        self.decisions: Dict[ProcessorId, object] = {}
        self._domain_mask = None
        self._domain_mask_codes = -1
        # Routing base (global claims indices): sender pid → its global row,
        # everything else → the all-default row.
        participants = list(init["participants"])
        self._row_of_base = np.full((self.local_count, self.n), self.count,
                                    dtype=np.int64)
        if participants:
            parts = np.asarray(participants, dtype=np.int64)
            self._row_of_base[:, parts] = np.arange(len(participants),
                                                    dtype=np.int64)
        self._local_indices = np.arange(self.local_count, dtype=np.int64)
        self._global_rows = self._local_indices + self.row_start
        self._row_pids_arr = np.asarray(self.row_pids, dtype=np.int64)

    def adopt_codec(self, start: int, values) -> None:
        self.codec.adopt(values, start)

    def domain_mask(self):
        if len(self.codec) != self._domain_mask_codes:
            self._domain_mask_codes = len(self.codec)
            self._domain_mask = self.codec.domain_mask(self.domain_set)
        return self._domain_mask

    def _chaos_round(self, round_number: int) -> None:
        """Fire any claimed chaos fault scheduled for this round."""
        for fault in self.chaos:
            if fault.get("_spent") or fault.get("round") not in (None,
                                                                 round_number):
                continue
            fault["_spent"] = True
            kind = fault["kind"]
            if kind in ("worker-hang", "slow-shard"):
                time.sleep(float(fault.get("delay", 0.0)))
            elif kind == "worker-kill":
                if self._in_subprocess:
                    os._exit(1)
                # Shard 0 shares the coordinator's process: simulate the
                # death as the named error the coordinator would observe.
                raise WorkerDiedError(
                    "chaos: simulated death of the coordinator-local shard")

    # -- rounds --------------------------------------------------------------
    def round_one(self, roots) -> None:
        self._chaos_round(1)
        self.state.set_roots(self.np.asarray(roots, dtype=self.code_dtype))
        for i in self.local_mains:
            self.meters[i].charge()  # set_root stores one node

    def round(self, round_number: int, claims, routing):
        """Run one round's kernels over the local rows; return the leaf block."""
        self._chaos_round(round_number)
        np = self.np
        prev_level = self.state.num_levels
        level = prev_level + 1
        # Same construction order as the single-process round: suspects
        # collapse to the default row, then the own-pid echo (which wins even
        # under theoretical self-suspicion), then the faulty-claim routing
        # minus the senders this row already masks.
        row_of = self._row_of_base.copy()
        for i, tracker in enumerate(self.trackers):
            suspects = tracker.suspects
            if suspects:
                row_of[i, list(suspects)] = self.count
        row_of[self._local_indices, self._row_pids_arr] = self._global_rows
        for i, assigned in enumerate(routing):
            if not assigned:
                continue
            tracker = self.trackers[i]
            for sender, row_idx in assigned.items():
                if sender in tracker:
                    continue  # masked sender: every claim becomes the default
                row_of[i, sender] = row_idx

        gather_level_batched(self.state, level, claims, row_of,
                             self.domain_mask())
        level_size = self.index.level_size(level)
        slots_table = self.index.slots_np(level)
        for i in self.local_mains:
            # append (one unit per node) + the echo pass over the own-label
            # slots — the exact gather_level_numpy charges.
            self.meters[i].charge(level_size
                                  + len(slots_table[self.row_pids[i]][0]))

        if self.enable_fault_discovery:
            newly = discover_and_mask_batched(self.state, level,
                                              self.trackers, round_number,
                                              self.meters)
            for i in self.local_mains:
                if newly[i]:
                    log = self.discovery_logs[i]
                    log[round_number] = (log.get(round_number, 0)
                                         + len(newly[i]))

        segment = self.segment_ends.get(round_number)
        if segment is not None:
            self._convert(round_number, segment)
        return self.state.raw_stack(self.state.num_levels)

    def _convert(self, round_number: int, segment) -> None:
        convert_stacked_rows(
            self.state, segment, self.t, self.trackers, self.meters,
            self.discovery_logs, self.local_mains, self.row_pids,
            self.decisions, round_number, self.total_rounds,
            self.enable_fault_discovery)

    def finish(self) -> Dict[str, object]:
        return {
            "mains": [(self.row_start + i,
                       tuple(sorted(self.trackers[i].suspects)),
                       dict(self.discovery_logs[i]),
                       self.meters[i].units)
                      for i in self.local_mains],
            "decisions": dict(self.decisions),
        }
