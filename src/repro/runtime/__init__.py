"""The synchronous-system substrate: messages, network, metrics, and the driver."""

from __future__ import annotations

from .chaos import (ChaosController, ChaosPolicy, FaultInjection, build_chaos,
                    chaos_scope, current_chaos)
from .errors import (AdversaryError, CheckpointWriteError, ConfigurationError,
                     FabricError, ProtocolViolationError, ReproError,
                     SimulationError, SupervisionExhaustedError,
                     WorkerDiedError, WorkerShutdownError, WorkerTimeoutError)
from .messages import Inbox, Message, Outbox, broadcast
from .metrics import ComputationMeter, CostModelPoint, RunMetrics, entry_bits
from .network import SynchronousNetwork
from .simulation import RunResult, choose_faulty, run_agreement, run_many
from .supervision import (DEFAULT_LADDER, RetryPolicy, Supervisor,
                          backoff_fraction)

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ProtocolViolationError",
    "SimulationError",
    "AdversaryError",
    "FabricError",
    "WorkerDiedError",
    "WorkerTimeoutError",
    "WorkerShutdownError",
    "CheckpointWriteError",
    "SupervisionExhaustedError",
    "RetryPolicy",
    "Supervisor",
    "DEFAULT_LADDER",
    "backoff_fraction",
    "ChaosPolicy",
    "ChaosController",
    "FaultInjection",
    "build_chaos",
    "chaos_scope",
    "current_chaos",
    "Message",
    "Inbox",
    "Outbox",
    "broadcast",
    "RunMetrics",
    "ComputationMeter",
    "CostModelPoint",
    "entry_bits",
    "SynchronousNetwork",
    "RunResult",
    "run_agreement",
    "run_many",
    "choose_faulty",
]
