"""The synchronous-system substrate: messages, network, metrics, and the driver."""

from __future__ import annotations

from .errors import (AdversaryError, ConfigurationError, ProtocolViolationError,
                     ReproError, SimulationError)
from .messages import Inbox, Message, Outbox, broadcast
from .metrics import ComputationMeter, CostModelPoint, RunMetrics, entry_bits
from .network import SynchronousNetwork
from .simulation import RunResult, choose_faulty, run_agreement, run_many

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ProtocolViolationError",
    "SimulationError",
    "AdversaryError",
    "Message",
    "Inbox",
    "Outbox",
    "broadcast",
    "RunMetrics",
    "ComputationMeter",
    "CostModelPoint",
    "entry_bits",
    "SynchronousNetwork",
    "RunResult",
    "run_agreement",
    "run_many",
    "choose_faulty",
]
