"""The synchronous, fully reliable, complete network of the paper's model.

Every processor is connected to every other; communication proceeds in
lock-step rounds; messages sent in a round are delivered in the same round;
and a correct processor can always identify the true sender of a message
(faulty processors cannot forge sender identities).  The network is also
where message-size metrics are recorded, because "bits on the wire" is a
property of delivery, not of protocol state.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Set

from ..core.sequences import ProcessorId
from .errors import SimulationError
from .messages import Inbox, Message, Outbox, stamp_sender
from .metrics import RunMetrics


class SynchronousNetwork:
    """Delivers one round of messages between processors.

    Parameters
    ----------
    processors:
        All processor identifiers.
    metrics:
        The :class:`RunMetrics` collector for this execution.
    value_domain_size:
        Size of the value set, used for the bit-accounting of message sizes.
    """

    def __init__(self, processors: Iterable[ProcessorId], metrics: RunMetrics,
                 value_domain_size: int = 2) -> None:
        self.processors: Set[ProcessorId] = set(processors)
        self.n = len(self.processors)
        self.metrics = metrics
        self.value_domain_size = value_domain_size

    def deliver(self, round_number: int,
                outboxes: Mapping[ProcessorId, Outbox],
                count_senders: Iterable[ProcessorId]) -> Dict[ProcessorId, Inbox]:
        """Deliver all outboxes for *round_number* and return per-processor inboxes.

        ``outboxes`` maps each sender to its outbox (destination → message).
        Only messages from ``count_senders`` are charged to the metrics — the
        theorems bound the traffic of *correct* processors, and Byzantine
        processors could otherwise inflate the measured totals arbitrarily.

        The returned mapping contains an inbox only for processors that
        actually received something this round; callers use
        ``inboxes.get(pid, {})``.  Metrics are recorded once per sender per
        round (batched), and since an outbox is almost always a broadcast of
        one shared message object, its entry count and bit size are computed
        once rather than once per destination.
        """
        self.metrics.record_round(round_number)
        counted = set(count_senders)
        inboxes: Dict[ProcessorId, Inbox] = {}
        for sender, outbox in outboxes.items():
            if sender not in self.processors:
                raise SimulationError(f"unknown sender {sender}")
            charged = sender in counted
            shared = self._shared_broadcast(outbox)
            if shared is not None:
                self._deliver_broadcast(round_number, sender, outbox, shared,
                                        charged, inboxes)
                continue
            delivered_count = 0
            entry_total = 0
            bit_total = 0
            costed: Optional[Message] = None
            costed_entries = 0
            costed_bits = 0
            for dest, message in outbox.items():
                if dest not in self.processors:
                    raise SimulationError(
                        f"message from {sender} addressed to unknown processor {dest}")
                if dest == sender:
                    continue
                if not isinstance(message, Message):
                    raise SimulationError(
                        f"sender {sender} produced a non-message payload for {dest}")
                delivered = stamp_sender(message, sender)
                inbox = inboxes.get(dest)
                if inbox is None:
                    inbox = inboxes[dest] = {}
                if sender in inbox:
                    # Defense in depth: unreachable for dict-shaped outboxes
                    # (one entry per (sender, dest)), but a custom Mapping
                    # yielding a destination twice must not silently drop a
                    # delivery.
                    raise SimulationError(
                        f"sender {sender} delivered twice to {dest} "
                        f"in round {round_number}")
                inbox[sender] = delivered
                if charged:
                    if delivered is not costed:
                        costed = delivered
                        costed_entries = delivered.entry_count()
                        costed_bits = delivered.size_bits(
                            self.n, self.value_domain_size)
                    delivered_count += 1
                    entry_total += costed_entries
                    bit_total += costed_bits
            if delivered_count:
                self.metrics.record_messages(round_number, sender,
                                             delivered_count, entry_total,
                                             bit_total)
        return inboxes

    @staticmethod
    def _shared_broadcast(outbox: Mapping[ProcessorId, Message]
                          ) -> Optional[Message]:
        """The single message object a broadcast outbox shares, else ``None``.

        Correct processors broadcast one shared message to every destination
        (see :func:`~repro.runtime.messages.broadcast_message`); detecting
        that lets :meth:`deliver` validate, stamp, and cost the message once
        instead of ``n − 1`` times.  The identity scan is O(destinations)
        with no per-destination allocation.
        """
        if len(outbox) < 2:
            return None
        iterator = iter(outbox.values())
        first = next(iterator)
        for message in iterator:
            if message is not first:
                return None
        return first

    def _deliver_broadcast(self, round_number: int, sender: ProcessorId,
                           outbox: Mapping[ProcessorId, Message],
                           message: Message, charged: bool,
                           inboxes: Dict[ProcessorId, Inbox]) -> None:
        """Deliver one shared message to every destination of *outbox*.

        Per-destination work shrinks to the membership checks and the inbox
        insert; the ``isinstance`` validation, the sender stamp, and the
        entry/bit cost run once for the whole broadcast.
        """
        if not isinstance(message, Message):
            raise SimulationError(
                f"sender {sender} produced a non-message payload for "
                f"{next(iter(outbox))}")
        delivered = stamp_sender(message, sender)
        delivered_count = 0
        for dest in outbox:
            if dest not in self.processors:
                raise SimulationError(
                    f"message from {sender} addressed to unknown processor {dest}")
            if dest == sender:
                continue
            inbox = inboxes.get(dest)
            if inbox is None:
                inbox = inboxes[dest] = {}
            if sender in inbox:
                # Defense in depth, as in deliver(): a custom Mapping outbox
                # yielding a destination twice must not silently drop one.
                raise SimulationError(
                    f"sender {sender} delivered twice to {dest} "
                    f"in round {round_number}")
            inbox[sender] = delivered
            delivered_count += 1
        if charged and delivered_count:
            entries = delivered.entry_count()
            bits = delivered.size_bits(self.n, self.value_domain_size)
            self.metrics.record_messages(round_number, sender,
                                         delivered_count,
                                         delivered_count * entries,
                                         delivered_count * bits)
