"""The execution driver: run one agreement instance under an adversary.

This is the top of the substrate stack.  Given a protocol spec, a
configuration, a faulty set, and an adversary, :func:`run_agreement` builds
one protocol instance per correct processor, drives the synchronous rounds,
lets the (rushing, full-information) adversary pick the faulty processors'
messages after seeing the correct ones, and returns a :class:`RunResult`
containing the decisions, the agreement/validity verdicts, and the cost
metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, Optional, Sequence, Tuple

from ..adversary.base import Adversary, AdversaryContext, BenignAdversary
from ..core.sequences import ProcessorId
from ..core.values import Value

if TYPE_CHECKING:  # imported only for annotations, to avoid an import cycle
    from ..core.protocol import AgreementProtocol, ProtocolConfig, ProtocolSpec
from .errors import ConfigurationError, SimulationError
from .messages import Outbox
from .metrics import RunMetrics
from .network import SynchronousNetwork


@dataclass
class RunResult:
    """Everything observable about one completed execution."""

    protocol: str
    adversary: str
    config: ProtocolConfig
    faulty: FrozenSet[ProcessorId]
    decisions: Dict[ProcessorId, Value]
    rounds: int
    metrics: RunMetrics
    discovered: Dict[ProcessorId, Tuple[ProcessorId, ...]] = field(default_factory=dict)
    discovery_logs: Dict[ProcessorId, Dict[int, int]] = field(default_factory=dict)

    # -- verdicts -----------------------------------------------------------
    @property
    def correct(self) -> Tuple[ProcessorId, ...]:
        return tuple(p for p in self.config.processors if p not in self.faulty)

    @property
    def agreement(self) -> bool:
        """No two correct processors decide differently."""
        values = {self.decisions[p] for p in self.correct}
        return len(values) <= 1

    @property
    def validity(self) -> Optional[bool]:
        """If the source is correct, every correct processor decides its value.

        ``None`` when the source is faulty (the condition is vacuous).
        """
        if self.config.source in self.faulty:
            return None
        expected = self.config.initial_value
        return all(self.decisions[p] == expected for p in self.correct)

    @property
    def succeeded(self) -> bool:
        """Agreement holds and validity holds whenever it applies."""
        validity = self.validity
        return self.agreement and (validity is None or validity)

    @property
    def decision_value(self) -> Value:
        """The common decision of the correct processors (requires agreement)."""
        if not self.agreement:
            raise SimulationError("no common decision: agreement was violated")
        return self.decisions[self.correct[0]]

    def soundness_of_discovery(self) -> bool:
        """Every processor a correct processor lists as faulty is faulty."""
        faulty = set(self.faulty)
        return all(set(listed) <= faulty for listed in self.discovered.values())

    def summary(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "protocol": self.protocol,
            "adversary": self.adversary,
            "n": self.config.n,
            "t": self.config.t,
            "faults": len(self.faulty),
            "rounds": self.rounds,
            "agreement": self.agreement,
            "validity": self.validity,
        }
        row.update(self.metrics.summary())
        return row


def choose_faulty(n: int, count: int, source_faulty: bool = False,
                  source: ProcessorId = 0) -> FrozenSet[ProcessorId]:
    """A deterministic faulty set of the requested size.

    The source is included exactly when *source_faulty* is set; the remaining
    faulty processors are the highest-numbered ones, which keeps small test
    configurations readable.
    """
    if count < 0 or count > n:
        raise ConfigurationError(f"cannot make {count} of {n} processors faulty")
    chosen = set()
    if source_faulty and count > 0:
        chosen.add(source)
    candidate = n - 1
    while len(chosen) < count:
        if candidate != source:
            chosen.add(candidate)
        candidate -= 1
        if candidate < 0:
            raise ConfigurationError("ran out of processors to mark faulty")
    return frozenset(chosen)


def run_agreement(spec: ProtocolSpec, config: ProtocolConfig,
                  faulty: Iterable[ProcessorId] = (),
                  adversary: Optional[Adversary] = None,
                  seed: int = 0, batched: bool = False) -> RunResult:
    """Execute one agreement instance and return its :class:`RunResult`.

    Parameters
    ----------
    spec:
        The algorithm to run (e.g. :class:`repro.core.hybrid.HybridSpec`).
    config:
        The instance parameters (``n``, ``t``, source, initial value, domain).
    faulty:
        The set of Byzantine processors (at most ``t`` for the guarantees of
        the theorems to apply; larger sets are allowed for stress testing).
    adversary:
        Strategy controlling the faulty processors; defaults to
        :class:`~repro.adversary.base.BenignAdversary`.
    seed:
        Seed forwarded to the adversary for reproducible randomised behaviour.
    batched:
        When ``True``, execute all correct processors' rounds as whole-run
        2-D numpy kernels (:mod:`repro.runtime.batched`) instead of stepping
        ``n − t`` per-processor state machines.  Observationally identical to
        the per-processor engines; falls back cleanly to the per-processor
        driver for non-EIG specs (Algorithm C, the hybrid, the baselines) or
        when numpy is unavailable.
    """
    spec.validate(config)
    faulty_set = frozenset(faulty)
    unknown = faulty_set - set(config.processors)
    if unknown:
        raise ConfigurationError(f"faulty set mentions unknown processors {sorted(unknown)}")

    adversary = adversary if adversary is not None else BenignAdversary()
    if batched:
        from .batched import run_batched_if_supported
        result = run_batched_if_supported(spec, config, faulty_set, adversary,
                                          seed)
        if result is not None:
            return result
    adversary.bind(AdversaryContext(config=config, spec=spec,
                                    faulty=faulty_set, seed=seed))

    correct = [p for p in config.processors if p not in faulty_set]
    processors: Dict[ProcessorId, AgreementProtocol] = {
        pid: spec.build(pid, config) for pid in correct
    }

    total_rounds = max((proc.total_rounds for proc in processors.values()),
                       default=spec.total_rounds(config))
    metrics = RunMetrics()
    network = SynchronousNetwork(config.processors, metrics,
                                 value_domain_size=len(config.domain))

    from .corruption import corruption_enabled, tree_state_views
    corrupting = corruption_enabled(adversary)

    for round_number in range(1, total_rounds + 1):
        correct_outboxes: Dict[ProcessorId, Outbox] = {
            pid: processors[pid].outgoing(round_number) for pid in correct
        }
        faulty_outboxes = adversary.round_messages(round_number, correct_outboxes)
        illegal = set(faulty_outboxes) - faulty_set
        if illegal:
            raise SimulationError(
                f"adversary produced messages for non-faulty processors {sorted(illegal)}")
        outboxes: Dict[ProcessorId, Outbox] = dict(correct_outboxes)
        outboxes.update(faulty_outboxes)
        inboxes = network.deliver(round_number, outboxes, count_senders=correct)
        # Each pid's inbox is the per-dest dict deliver() built for it (or a
        # fresh empty one); correct and faulty pids are disjoint, so no two
        # consumers here ever receive the same dict object.
        for pid in correct:
            processors[pid].incoming(round_number, inboxes.get(pid) or {})
        adversary.observe_delivery(
            round_number, {pid: inboxes.get(pid) or {} for pid in faulty_set})
        if corrupting:
            # After every delivery and conversion of the round, before the
            # next round's broadcasts wrap the level buffers — the same point
            # the batched driver invokes the hook.
            adversary.corrupt_state(round_number,
                                    tree_state_views(processors, config))

    decisions = {pid: processors[pid].decision() for pid in correct}
    discovered = {pid: tuple(processors[pid].discovered_faults()) for pid in correct}
    discovery_logs = {
        pid: dict(getattr(processors[pid], "discovery_log", {})) for pid in correct
    }
    for pid in correct:
        metrics.record_computation(pid, processors[pid].computation_units())
        metrics.record_discoveries(pid, len(discovered[pid]))

    return RunResult(
        protocol=spec.name,
        adversary=adversary.name,
        config=config,
        faulty=faulty_set,
        decisions=decisions,
        rounds=total_rounds,
        metrics=metrics,
        discovered=discovered,
        discovery_logs=discovery_logs,
    )


def run_many(spec: ProtocolSpec, config: ProtocolConfig,
             scenarios: Sequence[Tuple[Iterable[ProcessorId], Adversary]],
             seed: int = 0, batched: bool = False) -> Tuple[RunResult, ...]:
    """Run the same protocol/config under several (faulty set, adversary) pairs."""
    return tuple(run_agreement(spec, config, faulty, adversary,
                               seed=seed + index, batched=batched)
                 for index, (faulty, adversary) in enumerate(scenarios))
