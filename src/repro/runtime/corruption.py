"""State-corruption views: the transient-corruption fault model's surface.

Dolev–Herman-style adversarial environments corrupt *stored state* between
rounds rather than lying on the wire.  The :meth:`Adversary.corrupt_state
<repro.adversary.base.Adversary.corrupt_state>` hook receives, once per
round, one :class:`StateView` per correct non-source EIG participant — a
read/write window onto the processor's **current top tree level** in
canonical node-id order.  Both execution paths construct observationally
identical views:

* the per-processor driver wraps each participant's
  :class:`~repro.core.tree.InfoGatheringTree` (any engine) in a
  :class:`TreeStateView`, reading and writing through the meter-free
  ``peek``/``poke`` accessors (corruption is the adversary's doing, not the
  victim's computation);
* the batched whole-run driver wraps each participant's row of the stacked
  claims matrix in a :class:`BatchedRowStateView`.

Timing is aliasing-safe by construction: the hook runs after every delivery
and conversion of a round and before the next round's broadcasts wrap the
level buffers, so an in-place edit is indistinguishable from the processor
having stored the corrupted value in the first place.  Written values must
stay inside the configured value domain — the batched state never stores a
missing sentinel, and the kernels rely on that invariant.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from ..core.sequences import ProcessorId, sequence_index
from ..core.tree import MISSING
from ..core.values import Value
from .errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..adversary.base import Adversary
    from ..core.protocol import AgreementProtocol, ProtocolConfig


class StateView:
    """Read/write access to one processor's current top tree level.

    Slots are indexed ``0 .. width - 1`` in the canonical node-id order of
    the level (the shared :class:`~repro.core.sequences.SequenceIndex`
    enumeration), identically in every execution mode.
    """

    pid: ProcessorId
    level: int

    @property
    def width(self) -> int:
        raise NotImplementedError

    def get(self, slot: int) -> Value:
        raise NotImplementedError

    def set(self, slot: int, value: Value) -> None:
        raise NotImplementedError

    def values(self) -> List[Value]:
        return [self.get(slot) for slot in range(self.width)]


class TreeStateView(StateView):
    """Per-processor view backed by an Information Gathering Tree."""

    def __init__(self, pid: ProcessorId, tree) -> None:
        self.pid = pid
        self._tree = tree
        self.level = tree.num_levels
        index = sequence_index(tree.source, tree.processors,
                               tree.allow_repetitions)
        self._sequences = index.sequences(self.level)

    @property
    def width(self) -> int:
        return len(self._sequences)

    def get(self, slot: int) -> Value:
        value = self._tree.peek(self._sequences[slot])
        if value is MISSING:
            raise SimulationError(
                f"corruption view read an absent node of processor "
                f"{self.pid} (level {self.level}, slot {slot})")
        return value

    def set(self, slot: int, value: Value) -> None:
        self._tree.poke(self._sequences[slot], value)


class BatchedRowStateView(StateView):
    """Batched-driver view backed by one row of the stacked claims state."""

    def __init__(self, pid: ProcessorId, level: int, row) -> None:
        from ..core.npsupport import VALUE_CODEC
        self.pid = pid
        self.level = level
        self._row = row
        self._code = VALUE_CODEC.code
        self._value = VALUE_CODEC.value

    @property
    def width(self) -> int:
        return len(self._row)

    def get(self, slot: int) -> Value:
        return self._value(int(self._row[slot]))

    def set(self, slot: int, value: Value) -> None:
        self._row[slot] = self._code(value)


def corruption_enabled(adversary: "Adversary") -> bool:
    """True when *adversary* overrides the ``corrupt_state`` hook.

    Drivers skip view construction entirely for the (vast) majority of
    adversaries that never corrupt state.
    """
    from ..adversary.base import Adversary
    return type(adversary).corrupt_state is not Adversary.corrupt_state


def tree_state_views(processors: Dict[ProcessorId, "AgreementProtocol"],
                     config: "ProtocolConfig"
                     ) -> Dict[ProcessorId, TreeStateView]:
    """Views over the correct non-source EIG participants of one round.

    Only processors of the exact EIG shifting class expose corruption
    surface — the same family the batched driver accelerates — so the view
    population is identical across all four execution modes.  Protocols
    outside the family (Algorithm C, the hybrid, the baselines) present no
    views and transient corruption degrades to a no-op for them.
    """
    from ..core.shifting import ShiftingEIGProcessor
    views: Dict[ProcessorId, TreeStateView] = {}
    for pid, proc in processors.items():
        if pid == config.source or type(proc) is not ShiftingEIGProcessor:
            continue
        if proc.tree.num_levels < 1:
            continue
        views[pid] = TreeStateView(pid, proc.tree)
    return views
