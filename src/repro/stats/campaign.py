"""The streaming Monte-Carlo driver: chunked execution, durable state.

:func:`run_mc` streams a campaign through an executor **without ever holding
a report list**: trials are derived on demand from the spec
(:meth:`~.spec.McSpec.trial_request`), executed in chunks, and folded into
per-cell :class:`~.cells.CellAggregate` state in deterministic global-index
order.  The only per-run buffer is the current chunk's completion map
(bounded by ``chunk_size``), so memory is flat from 10³ to 10⁷ trials.

Determinism is what makes crash recovery exact.  Executor backends complete
out of order, but each chunk is aggregated *after* it drains, sorted by
global trial index — so the fold order is a pure function of the spec, and
the cumulative state after chunk *c* is too.  The checkpoint exploits that:
one JSONL line per completed chunk carrying the **entire cumulative state**
(a few KB — aggregates are constant-space), under a header that pins
:func:`~.spec.mc_digest`.  Resume reads the last intact state line and
continues from the next chunk; because per-trial seeds are positional
(:func:`~repro.api.request.derive_seed`) and aggregator serialization is
IEEE-754-exact, a killed-and-resumed campaign finishes **bit-identical** to
an uninterrupted one — the property ``tests/test_mc.py`` pins with a real
``SIGKILL``.

Checkpoint format (one JSON object per line)::

    {"kind": "repro-mc-checkpoint", "version": 1,
     "total_trials": 1000000, "mc_sha256": "..."}   # header (atomic create)
    {"chunk": 0, "trials_done": 256, "state": {...}}  # cumulative snapshots
    {"chunk": 1, "trials_done": 512, "state": {...}}
    ...

The reading discipline is the shared one of :mod:`repro.api.jsonl`: a torn
final line is a crash artifact and is ignored; earlier corruption is
refused; a header for a *different* campaign is refused.
"""

from __future__ import annotations

import json
import logging
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..api.executors import ExecutorSpec, resolve_executor
from ..api.jsonl import scan_jsonl
from ..api.request import RunReport
from ..runtime.errors import ConfigurationError
from .cells import CellAggregate
from .spec import McSpec, mc_digest

MC_CHECKPOINT_KIND = "repro-mc-checkpoint"
MC_CHECKPOINT_VERSION = 1

logger = logging.getLogger("repro.stats")

#: Optional per-chunk progress hook: ``(chunk, trials_done, total_trials)``.
ProgressHook = Callable[[int, int, int], None]


@dataclass
class McState:
    """The cumulative campaign state: one aggregate per cell, a frontier."""

    aggregates: List[CellAggregate]
    trials_done: int = 0

    @classmethod
    def fresh(cls, spec: McSpec) -> "McState":
        return cls(aggregates=[CellAggregate(cell) for cell in spec.cells])

    def fold(self, spec: McSpec, completions: Mapping[int, RunReport]
             ) -> None:
        """Aggregate one drained chunk, in global-index order, and advance.

        Sorting here is what makes the fold order — and therefore the
        cumulative floating-point state — a pure function of the spec,
        regardless of the executor's completion order.
        """
        for global_index in sorted(completions):
            cell_index = spec.cell_index(global_index)
            self.aggregates[cell_index].update(completions[global_index])
        self.trials_done += len(completions)

    def problems(self) -> Tuple[str, ...]:
        found: List[str] = []
        for aggregate in self.aggregates:
            found.extend(aggregate.problems())
        return tuple(found)

    def to_dict(self) -> Dict[str, Any]:
        return {"trials_done": self.trials_done,
                "aggregates": [a.to_dict() for a in self.aggregates]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "McState":
        return cls(aggregates=[CellAggregate.from_dict(entry)
                               for entry in data["aggregates"]],
                   trials_done=int(data["trials_done"]))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, McState):
            return NotImplemented
        return self.to_dict() == other.to_dict()


@dataclass
class McResult:
    """What a campaign (or a deliberately bounded slice of one) produced."""

    spec: McSpec
    state: McState
    #: Whether every trial of the spec has been aggregated.
    complete: bool
    #: Trials executed by *this* invocation (resumed trials excluded).
    executed: int
    elapsed_seconds: float
    resumed_trials: int = 0

    @property
    def runs_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.executed / self.elapsed_seconds

    @property
    def problems(self) -> Tuple[str, ...]:
        return self.state.problems()

    @property
    def ok(self) -> bool:
        """True iff the campaign completed and contradicted no theorem."""
        return self.complete and not self.problems


def _create_mc_checkpoint(path: str, spec: McSpec) -> None:
    """Atomic header creation: temp file + rename, like sweep checkpoints."""
    header = json.dumps({
        "kind": MC_CHECKPOINT_KIND,
        "version": MC_CHECKPOINT_VERSION,
        "total_trials": spec.total_trials,
        "mc_sha256": mc_digest(spec),
    }, sort_keys=True) + "\n"
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(header)
            handle.flush()
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def read_mc_checkpoint(path: str, spec: McSpec
                       ) -> Tuple[Optional[McState], int]:
    """The latest intact cumulative state of a checkpoint, plus next chunk.

    Returns ``(state, next_chunk)`` — ``(None, 0)`` for a missing or empty
    file.  The header must name this exact campaign
    (:func:`~.spec.mc_digest`); a torn final line is tolerated (the crash
    happened mid-append, the previous snapshot stands); corruption earlier
    in the file is refused loudly.
    """
    if not os.path.exists(path) or os.path.getsize(path) == 0:
        return None, 0
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError:
        raise ConfigurationError(
            f"{path} is not an MC checkpoint (unreadable header line); "
            f"delete the file to start the campaign fresh") from None
    if not isinstance(header, dict) \
            or header.get("kind") != MC_CHECKPOINT_KIND:
        raise ConfigurationError(
            f"{path} is not an MC checkpoint (expected a "
            f"{MC_CHECKPOINT_KIND!r} header)")
    if header.get("version") != MC_CHECKPOINT_VERSION:
        raise ConfigurationError(
            f"{path} is a version {header.get('version')} MC checkpoint; "
            f"this build reads version {MC_CHECKPOINT_VERSION}")
    digest = mc_digest(spec)
    if header.get("mc_sha256") != digest:
        raise ConfigurationError(
            f"{path} was recorded for a different campaign "
            f"(checkpoint {str(header.get('mc_sha256'))[:12]}…, this "
            f"campaign {digest[:12]}…); refusing to merge unrelated "
            f"statistics")
    body = scan_jsonl(path, lines[1:], first_line=2,
                      description="MC checkpoint")
    if body.torn_tail:
        logger.warning("MC checkpoint %s ends in a truncated line (crash "
                       "mid-append); resuming from the previous snapshot",
                       path)
    latest: Optional[Mapping[str, Any]] = None
    last_chunk = -1
    for line_number, entry in body.entries:
        if (not isinstance(entry, dict) or "chunk" not in entry
                or not isinstance(entry.get("state"), dict)):
            raise ConfigurationError(
                f"{path} has a malformed snapshot line (expected an object "
                f"with \"chunk\" and \"state\"): line {line_number}")
        chunk = entry["chunk"]
        if not isinstance(chunk, int) or not 0 <= chunk < spec.total_chunks:
            raise ConfigurationError(
                f"{path} names chunk {chunk!r}, outside this campaign's "
                f"0..{spec.total_chunks - 1}")
        # Snapshots are cumulative, so the latest line supersedes all
        # earlier ones — the same last-write-wins rule as sweep logs.
        if chunk >= last_chunk:
            last_chunk, latest = chunk, entry
    if latest is None:
        return None, 0
    state = McState.from_dict(latest["state"])
    expected = spec.chunk_indices(last_chunk).stop
    if state.trials_done != expected:
        raise ConfigurationError(
            f"{path} snapshot for chunk {last_chunk} records "
            f"{state.trials_done} trials, expected {expected}; the "
            f"checkpoint is corrupt")
    return state, last_chunk + 1


def run_mc(spec: McSpec, checkpoint: Optional[str] = None,
           resume: bool = False, executor: ExecutorSpec = None,
           max_chunks: Optional[int] = None,
           progress: Optional[ProgressHook] = None) -> McResult:
    """Stream a campaign to completion (or a bounded number of chunks).

    *executor* overrides the spec's backend choice (an
    :class:`~repro.api.executors.Executor` instance or registry name);
    ``None`` builds the spec's own ``executor``/``executor_params``.  One
    executor instance is built for the whole campaign and reused across
    chunks, so pool/sharded workers spawn once, not once per chunk.

    *max_chunks* bounds how many chunks this invocation executes — an
    operational aid for slicing very long campaigns across sessions (the
    checkpoint makes the slices add up exactly); the result reports
    ``complete=False`` until the last chunk has been aggregated.
    """
    state: Optional[McState] = None
    start_chunk = 0
    resumed_trials = 0
    if checkpoint:
        exists = (os.path.exists(checkpoint)
                  and os.path.getsize(checkpoint) > 0)
        if resume:
            state, start_chunk = read_mc_checkpoint(checkpoint, spec)
            resumed_trials = state.trials_done if state else 0
        elif exists:
            raise ConfigurationError(
                f"checkpoint {checkpoint} already exists; pass resume=True "
                f"(repro mc --resume) to continue it, or delete the file "
                f"to start the campaign fresh")
        if state is None:
            _create_mc_checkpoint(checkpoint, spec)
    elif resume:
        raise ConfigurationError(
            "resume needs a checkpoint path to resume from")
    if state is None:
        state = McState.fresh(spec)

    total = spec.total_trials
    executed = 0
    # repro-lint: waive[determinism/wall-clock] -- feeds elapsed_seconds
    # only, which is diagnostic: aggregates and checkpoints never read it
    started = time.perf_counter()
    if start_chunk >= spec.total_chunks:
        return McResult(spec=spec, state=state, complete=True, executed=0,
                        elapsed_seconds=0.0, resumed_trials=resumed_trials)

    if executor is None and spec.executor:
        runner, owned = resolve_executor(spec.executor,
                                         dict(spec.executor_params))
    else:
        runner, owned = resolve_executor(executor)
    log = open(checkpoint, "a", encoding="utf-8") if checkpoint else None
    end_chunk = spec.total_chunks
    if max_chunks is not None:
        end_chunk = min(end_chunk, start_chunk + max(0, max_chunks))
    try:
        for chunk in range(start_chunk, end_chunk):
            indices = spec.chunk_indices(chunk)
            tickets: Dict[int, int] = {}
            for global_index in indices:
                tickets[runner.submit(spec.trial_request(global_index))] = \
                    global_index
            completions: Dict[int, RunReport] = {}
            for ticket, report in runner.iter_reports():
                completions[tickets[ticket]] = report
            if len(completions) != len(indices):  # pragma: no cover
                raise ConfigurationError(
                    f"chunk {chunk} drained {len(completions)} of "
                    f"{len(indices)} trials")
            state.fold(spec, completions)
            executed += len(indices)
            if log is not None:
                log.write(json.dumps(
                    {"chunk": chunk, "trials_done": state.trials_done,
                     "state": state.to_dict()}, sort_keys=True) + "\n")
                log.flush()
            if progress is not None:
                progress(chunk, state.trials_done, total)
    finally:
        if log is not None:
            log.close()
        if owned:
            runner.close()
    # repro-lint: waive[determinism/wall-clock] -- feeds elapsed_seconds
    # only, which is diagnostic: aggregates and checkpoints never read it
    elapsed = time.perf_counter() - started
    return McResult(spec=spec, state=state,
                    complete=state.trials_done >= total,
                    executed=executed, elapsed_seconds=elapsed,
                    resumed_trials=resumed_trials)
