"""Composable streaming aggregators: Welford moments, extrema, histograms.

A million-run Monte-Carlo campaign must never hold its report list in
memory, so every statistic the campaign publishes is computed by a
constant-space aggregator with a one-report ``update`` step.  The three
primitives here share one contract:

* **streaming ≡ batch** — folding values one at a time produces *bit-
  identical* state to folding the same sequence in one pass (there is no
  separate batch formula; a batch is the same fold), which is what lets a
  checkpoint-resumed campaign equal an uninterrupted one exactly;
* **exact serialization** — ``to_dict``/``from_dict`` round-trip through
  ``json.dumps``/``json.loads`` without loss (Python's ``json`` emits
  shortest-round-trip ``repr`` floats), so aggregator state can ride a
  JSONL checkpoint line and resume to the very same IEEE-754 bits;
* **value equality** — two aggregators compare equal iff their states do,
  the property the streaming-vs-batch and resume-vs-uninterrupted tests
  pin down.

:class:`Welford` is the numerically stable one-pass mean/variance recurrence
(Welford 1962); :class:`Extrema` tracks min/max/last; :class:`BoundedHistogram`
counts small non-negative integers (round counts) in a fixed number of bins
with an explicit overflow bucket, so its footprint is independent of the
campaign length.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping, Optional

from ..runtime.errors import ConfigurationError


class Welford:
    """One-pass mean/variance accumulator (Welford's recurrence).

    ``update`` is O(1) and carries three numbers: the count, the running
    mean, and the sum of squared deviations (``m2``).  Population and
    sample variance are both derivable; ``std`` reports the sample standard
    deviation (what a confidence interval over trials wants).
    """

    __slots__ = ("count", "mean", "m2")

    def __init__(self, count: int = 0, mean: float = 0.0,
                 m2: float = 0.0) -> None:
        self.count = count
        self.mean = mean
        self.m2 = m2

    def update(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    def variance(self) -> float:
        """Sample variance (``n − 1`` denominator); 0.0 below two values."""
        if self.count < 2:
            return 0.0
        return self.m2 / (self.count - 1)

    def std(self) -> float:
        return math.sqrt(self.variance())

    def to_dict(self) -> Dict[str, Any]:
        return {"count": self.count, "mean": self.mean, "m2": self.m2}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Welford":
        return cls(count=int(data["count"]), mean=float(data["mean"]),
                   m2=float(data["m2"]))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Welford):
            return NotImplemented
        return (self.count, self.mean, self.m2) == (other.count, other.mean,
                                                    other.m2)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Welford(count={self.count}, mean={self.mean!r}, "
                f"m2={self.m2!r})")


class Extrema:
    """Running min/max over a stream of numbers (``None`` until fed)."""

    __slots__ = ("count", "minimum", "maximum")

    def __init__(self, count: int = 0, minimum: Optional[float] = None,
                 maximum: Optional[float] = None) -> None:
        self.count = count
        self.minimum = minimum
        self.maximum = maximum

    def update(self, value: float) -> None:
        self.count += 1
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def to_dict(self) -> Dict[str, Any]:
        return {"count": self.count, "min": self.minimum,
                "max": self.maximum}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Extrema":
        return cls(count=int(data["count"]), minimum=data["min"],
                   maximum=data["max"])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Extrema):
            return NotImplemented
        return ((self.count, self.minimum, self.maximum)
                == (other.count, other.minimum, other.maximum))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Extrema(count={self.count}, min={self.minimum}, "
                f"max={self.maximum})")


class BoundedHistogram:
    """Counts of small non-negative integers with a fixed bin budget.

    Values ``0 .. bins − 1`` land in their own bucket; anything at or above
    ``bins`` (or negative, which a round count never is, but garbage input
    should not corrupt memory) lands in the ``overflow`` bucket — so the
    histogram's size is a constant of the *spec*, never of the stream.
    """

    __slots__ = ("bins", "counts", "overflow")

    def __init__(self, bins: int, counts: Optional[List[int]] = None,
                 overflow: int = 0) -> None:
        if bins < 1:
            raise ConfigurationError(
                f"a histogram needs at least one bin, got {bins}")
        self.bins = bins
        self.counts = list(counts) if counts is not None else [0] * bins
        if len(self.counts) != bins:
            raise ConfigurationError(
                f"histogram state carries {len(self.counts)} bins, "
                f"expected {bins}")
        self.overflow = overflow

    def update(self, value: int) -> None:
        if 0 <= value < self.bins:
            self.counts[value] += 1
        else:
            self.overflow += 1

    def total(self) -> int:
        return sum(self.counts) + self.overflow

    def nonzero(self) -> Dict[int, int]:
        """The populated buckets, for compact reporting."""
        return {value: count for value, count in enumerate(self.counts)
                if count}

    def to_dict(self) -> Dict[str, Any]:
        return {"bins": self.bins, "counts": list(self.counts),
                "overflow": self.overflow}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BoundedHistogram":
        return cls(bins=int(data["bins"]),
                   counts=[int(c) for c in data["counts"]],
                   overflow=int(data["overflow"]))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BoundedHistogram):
            return NotImplemented
        return ((self.bins, self.counts, self.overflow)
                == (other.bins, other.counts, other.overflow))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BoundedHistogram(bins={self.bins}, "
                f"nonzero={self.nonzero()}, overflow={self.overflow})")
