"""``McSpec``: a serializable Monte-Carlo campaign description.

The campaign twin of :class:`~repro.api.request.SweepSpec` — everything
needed to (re)run a whole verification campaign survives
``json.dumps``/``json.loads`` exactly: the grid of :class:`~.cells.McCell`
points, the per-cell trial count, the master sweep seed, the executor
backend, and the chunk size the streaming driver aggregates in.  Unlike a
``SweepSpec``, an ``McSpec`` never materialises its requests — a 10⁶-trial
campaign is described by a few hundred bytes, and
:meth:`McSpec.trial_request` derives request *i* on demand:

* the **seed** is :func:`~repro.api.request.derive_seed(sweep_seed, i)
  <repro.api.request.derive_seed>` — the same positional contract sweeps
  and the search harness use, so resumed and re-executed campaigns
  reproduce the exact executions of the original;
* the **faulty set** and (when the cell doesn't pin one) the **initial
  value** are drawn from a dedicated SHA-256-derived placement stream, so
  the Monte-Carlo actually explores fault placements rather than re-running
  one configuration a million times.

Checkpoints (:mod:`repro.stats.campaign`) pin :func:`mc_digest` — the
canonical SHA-256 of the serialized spec — so resuming against an edited
campaign fails loudly instead of merging unrelated statistics.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Mapping, Sequence, Tuple

from ..api.request import RunRequest, derive_seed
from ..runtime.errors import ConfigurationError
from .cells import McCell


def placement_seed(sweep_seed: int, index: int) -> int:
    """The fault-placement stream seed of trial *index*.

    A distinct SHA-256 domain from :func:`~repro.api.request.derive_seed`
    (``repro-mc-placement:`` vs ``repro-sweep:``), so the faulty-set draw
    and the adversary's run RNG never share a stream.
    """
    digest = hashlib.sha256(
        f"repro-mc-placement:{sweep_seed}:{index}".encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class McSpec:
    """A serializable Monte-Carlo campaign: grid × trials × seed × executor."""

    cells: Tuple[McCell, ...]
    trials: int
    sweep_seed: int = 0
    executor: str = "serial"
    executor_params: Mapping[str, Any] = field(default_factory=dict)
    #: Trials aggregated (and checkpointed) per chunk: the only buffer the
    #: streaming driver keeps, so memory is O(chunk_size), never O(trials).
    chunk_size: int = 256

    def __post_init__(self) -> None:
        object.__setattr__(self, "cells", tuple(self.cells))
        object.__setattr__(self, "executor_params",
                           dict(self.executor_params))
        if not self.cells:
            raise ConfigurationError("a campaign needs at least one cell")
        for cell in self.cells:
            if not isinstance(cell, McCell):
                raise ConfigurationError(
                    f"a campaign holds McCell values, got {cell!r}")
        if self.trials < 1:
            raise ConfigurationError(
                f"a campaign needs at least one trial per cell, "
                f"got {self.trials}")
        if self.chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be positive, got {self.chunk_size}")

    # -- trial addressing ----------------------------------------------------
    @property
    def total_trials(self) -> int:
        return len(self.cells) * self.trials

    @property
    def total_chunks(self) -> int:
        return -(-self.total_trials // self.chunk_size)

    def cell_index(self, global_index: int) -> int:
        """Which cell trial *global_index* belongs to (cell-major order)."""
        if not 0 <= global_index < self.total_trials:
            raise ConfigurationError(
                f"trial index {global_index} outside this campaign's "
                f"0..{self.total_trials - 1}")
        return global_index // self.trials

    def chunk_indices(self, chunk: int) -> range:
        """The global trial indices of checkpoint chunk *chunk*."""
        if not 0 <= chunk < self.total_chunks:
            raise ConfigurationError(
                f"chunk {chunk} outside this campaign's "
                f"0..{self.total_chunks - 1}")
        low = chunk * self.chunk_size
        return range(low, min(low + self.chunk_size, self.total_trials))

    def trial_request(self, global_index: int) -> RunRequest:
        """Derive the concrete :class:`RunRequest` of one trial, on demand."""
        cell = self.cells[self.cell_index(global_index)]
        seed = derive_seed(self.sweep_seed, global_index)
        rng = random.Random(placement_seed(self.sweep_seed, global_index))
        count = cell.fault_count()
        source = 0
        if cell.source_placement == "always":
            others = [p for p in range(cell.n) if p != source]
            faulty = {source, *rng.sample(others, count - 1)}
        elif cell.source_placement == "never":
            others = [p for p in range(cell.n) if p != source]
            faulty = set(rng.sample(others, count))
        else:
            faulty = set(rng.sample(range(cell.n), count))
        value = cell.initial_value
        if value is None:
            value = rng.choice(cell.domain())
        return RunRequest(
            protocol=cell.protocol,
            protocol_params=dict(cell.protocol_params),
            n=cell.n, t=cell.t, initial_value=value,
            faulty=tuple(sorted(faulty)),
            adversary=cell.adversary,
            adversary_params=dict(cell.adversary_params),
            seed=seed, engine=cell.engine,
            allow_unsafe=cell.allow_unsafe)

    def iter_requests(self, indices: Sequence[int]
                      ) -> Iterator[RunRequest]:
        for global_index in indices:
            yield self.trial_request(global_index)

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "cells": [cell.to_dict() for cell in self.cells],
            "trials": self.trials,
            "sweep_seed": self.sweep_seed,
            "executor": self.executor,
            "executor_params": dict(self.executor_params),
            "chunk_size": self.chunk_size,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "McSpec":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown McSpec field(s) {sorted(unknown)}; "
                f"accepted: {sorted(known)}")
        cells = data.get("cells")
        if not isinstance(cells, Sequence) or isinstance(cells, str):
            raise ConfigurationError(
                "a serialized campaign needs a \"cells\" list")
        kwargs = dict(data)
        kwargs["cells"] = tuple(
            cell if isinstance(cell, McCell) else McCell.from_dict(cell)
            for cell in cells)
        return cls(**kwargs)


def mc_digest(spec: McSpec) -> str:
    """The canonical SHA-256 of a campaign (what a checkpoint header pins)."""
    canonical = json.dumps(spec.to_dict(), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
