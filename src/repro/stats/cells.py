"""Grid cells and their streaming aggregates: one state per (protocol,
adversary, n, t) point of a Monte-Carlo campaign.

An :class:`McCell` names one point of the verification grid — protocol and
parameters, instance size, adversary, and how each trial's faulty set and
initial value are drawn.  A :class:`CellAggregate` is that cell's entire
statistical state: correctness counters (agreement/validity/discovery
failures), constant-space moments and extrema of the measured quantities
the theorems bound (rounds, largest message, local computation), and a
bounded round-count histogram.  Nothing here ever stores a report.

The aggregate also knows how to confront itself with the paper:
:meth:`CellAggregate.bound` resolves the theorem row via
:func:`repro.analysis.bounds.protocol_bound`, and
:meth:`CellAggregate.guarantees_apply` says whether the theorems *claim*
anything for this cell — the adversary must be inside the Byzantine model
(transient corruption of *correct* processors is not), the cell must be
resilient (``t`` within the algorithm's threshold, faults within ``t``),
and ``allow_unsafe`` must be off.  Where guarantees apply, any observed
agreement/validity failure or bound excess is a hard verdict failure;
elsewhere the same numbers are reported without a verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from ..analysis.bounds import TheoremBound, protocol_bound
from ..api.request import RunReport
from ..core.values import Value, default_domain
from ..runtime.errors import ConfigurationError
from .aggregators import BoundedHistogram, Extrema, Welford
from .intervals import wilson_interval

#: Adversaries whose faults sit outside the Byzantine model the theorems
#: cover: transient corruption flips state on *correct* processors, so it
#: can legitimately break agreement even at ``n ≥ 3t + 1`` (the adversary
#: search CI job excludes it for the same reason).
OUT_OF_MODEL_ADVERSARIES = frozenset({"transient-corruption"})

#: Hard-verdict slack on the local-computation bound.  The theorems state
#: ``O(·)`` growth shapes; the simulator's accounting charges several units
#: per tree node (stores + resolve visits + discovery scans), so measured
#: units exceed the shape by a bounded constant — ratios between 0.05 and
#: 7.4 across the protocol zoo at the cells the suite exercises.  16 pins
#: that constant with ~2× headroom while still failing loudly on any
#: complexity-class regression.  Rounds and message entries are exact
#: counts and get slack 1.
COMPUTATION_SLACK = 16.0

#: How many round-count buckets a cell histogram carries; protocol rounds
#: are ≤ t + O(√t) + O(b), far below this for every cell the grid admits.
ROUND_BINS = 64

#: How a cell places the source relative to each trial's faulty set:
#: sampled uniformly with everything else, always faulty, or never faulty.
SOURCE_PLACEMENTS = ("vary", "always", "never")


@dataclass(frozen=True)
class McCell:
    """One point of the Monte-Carlo grid, JSON-round-trippable."""

    protocol: str
    n: int
    t: int
    adversary: str = "two-faced"
    protocol_params: Mapping[str, Any] = field(default_factory=dict)
    adversary_params: Mapping[str, Any] = field(default_factory=dict)
    #: Faulty processors per trial (default: the full budget ``t``).
    faults: Optional[int] = None
    #: Source placement per trial: ``"vary"`` samples the source like any
    #: other processor, ``"always"``/``"never"`` pin it in/out.
    source_placement: str = "vary"
    #: Fixed initial value, or ``None`` to sample uniformly from the domain.
    initial_value: Optional[Value] = None
    allow_unsafe: bool = False
    engine: str = "auto"

    def __post_init__(self) -> None:
        object.__setattr__(self, "protocol_params",
                           dict(self.protocol_params))
        object.__setattr__(self, "adversary_params",
                           dict(self.adversary_params))
        if self.source_placement not in SOURCE_PLACEMENTS:
            raise ConfigurationError(
                f"unknown source placement {self.source_placement!r}; "
                f"expected one of {SOURCE_PLACEMENTS}")
        count = self.fault_count()
        if not 0 <= count <= self.n:
            raise ConfigurationError(
                f"cell {self.label()} cannot make {count} of {self.n} "
                f"processors faulty")
        if self.source_placement == "always" and count == 0:
            raise ConfigurationError(
                f"cell {self.label()} pins the source faulty but has a "
                f"zero fault budget")

    def fault_count(self) -> int:
        return self.faults if self.faults is not None else self.t

    def label(self) -> str:
        return f"{self.protocol}/{self.adversary} n={self.n} t={self.t}"

    def key(self) -> Tuple[str, str, int, int]:
        return (self.protocol, self.adversary, self.n, self.t)

    def domain(self) -> Tuple[Value, ...]:
        return default_domain()

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "protocol": self.protocol,
            "n": self.n,
            "t": self.t,
            "adversary": self.adversary,
            "protocol_params": dict(self.protocol_params),
            "adversary_params": dict(self.adversary_params),
            "faults": self.faults,
            "source_placement": self.source_placement,
            "initial_value": self.initial_value,
            "allow_unsafe": self.allow_unsafe,
            "engine": self.engine,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "McCell":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown McCell field(s) {sorted(unknown)}; "
                f"accepted: {sorted(known)}")
        return cls(**dict(data))


class CellAggregate:
    """The entire statistical state of one cell — constant space, exact
    serialization, streaming-equals-batch by construction."""

    __slots__ = ("cell", "trials", "agreement_failures", "validity_checked",
                 "validity_failures", "discovery_unsound", "succeeded",
                 "rounds", "rounds_hist", "rounds_extrema", "entries",
                 "entries_extrema", "units", "units_extrema", "messages")

    def __init__(self, cell: McCell) -> None:
        self.cell = cell
        self.trials = 0
        self.agreement_failures = 0
        self.validity_checked = 0
        self.validity_failures = 0
        self.discovery_unsound = 0
        self.succeeded = 0
        self.rounds = Welford()
        self.rounds_hist = BoundedHistogram(ROUND_BINS)
        self.rounds_extrema = Extrema()
        self.entries = Welford()
        self.entries_extrema = Extrema()
        self.units = Welford()
        self.units_extrema = Extrema()
        self.messages = Welford()

    # -- streaming -----------------------------------------------------------
    def update(self, report: RunReport) -> None:
        """Fold one report into the cell state (the report is not kept)."""
        self.trials += 1
        if not report.agreement:
            self.agreement_failures += 1
        if report.validity is not None:
            self.validity_checked += 1
            if not report.validity:
                self.validity_failures += 1
        if not report.discovery_sound:
            self.discovery_unsound += 1
        if report.succeeded:
            self.succeeded += 1
        self.rounds.update(report.rounds)
        self.rounds_hist.update(report.rounds)
        self.rounds_extrema.update(report.rounds)
        entries = report.metrics["max_message_entries"]
        self.entries.update(entries)
        self.entries_extrema.update(entries)
        units = report.metrics["max_computation_units"]
        self.units.update(units)
        self.units_extrema.update(units)
        self.messages.update(report.metrics["total_messages"])

    # -- theorem confrontation ----------------------------------------------
    def bound(self) -> Optional[TheoremBound]:
        """The theorem row this cell is measured against (baselines: None)."""
        return protocol_bound(self.cell.protocol,
                              dict(self.cell.protocol_params),
                              self.cell.n, self.cell.t)

    def guarantees_apply(self) -> bool:
        """Whether the paper claims anything for this cell's executions."""
        if self.cell.allow_unsafe:
            return False
        if self.cell.adversary in OUT_OF_MODEL_ADVERSARIES:
            return False
        bound = self.bound()
        if bound is None:
            return False
        return (self.cell.t <= bound.resilience_limit
                and self.cell.fault_count() <= self.cell.t)

    def failure_rates(self, confidence: float = 0.95) -> Dict[str, Any]:
        """Point rates plus Wilson bounds for the correctness conditions."""
        agree_low, agree_high = wilson_interval(
            self.agreement_failures, self.trials, confidence)
        valid_low, valid_high = wilson_interval(
            self.validity_failures, self.validity_checked, confidence)
        return {
            "trials": self.trials,
            "agreement_failures": self.agreement_failures,
            "agreement_rate": (self.agreement_failures / self.trials
                               if self.trials else 0.0),
            "agreement_ci": (agree_low, agree_high),
            "validity_checked": self.validity_checked,
            "validity_failures": self.validity_failures,
            "validity_rate": (self.validity_failures / self.validity_checked
                              if self.validity_checked else 0.0),
            "validity_ci": (valid_low, valid_high),
            "confidence": confidence,
        }

    def bound_rows(self) -> Tuple[Dict[str, Any], ...]:
        """Observed-vs-theorem rows for every quantity the paper bounds.

        One row per quantity: the bound, the observed maximum, their ratio,
        the slack the verdict grants, and whether the observation stayed
        within ``bound × slack``.  A cell with no theorem (a baseline)
        yields no rows.
        """
        bound = self.bound()
        if bound is None:
            return ()
        quantities = (
            ("rounds", bound.rounds, self.rounds_extrema.maximum, 1.0),
            ("max_message_entries", bound.max_message_entries,
             self.entries_extrema.maximum, 1.0),
            ("max_computation_units", bound.local_computation,
             self.units_extrema.maximum, COMPUTATION_SLACK),
        )
        rows = []
        for quantity, promised, observed, slack in quantities:
            observed = 0 if observed is None else observed
            rows.append({
                "cell": self.cell.label(),
                "quantity": quantity,
                "bound": promised,
                "observed_max": observed,
                "ratio": observed / promised if promised else None,
                "slack": slack,
                "within": observed <= promised * slack,
            })
        return tuple(rows)

    def problems(self) -> Tuple[str, ...]:
        """Hard verdict failures — empty unless a theorem was contradicted."""
        if not self.guarantees_apply():
            return ()
        found = []
        label = self.cell.label()
        if self.agreement_failures:
            found.append(f"{label}: agreement failed in "
                         f"{self.agreement_failures}/{self.trials} trials")
        if self.validity_failures:
            found.append(f"{label}: validity failed in "
                         f"{self.validity_failures}/{self.validity_checked} "
                         f"source-correct trials")
        if self.discovery_unsound:
            found.append(f"{label}: fault discovery unsound in "
                         f"{self.discovery_unsound}/{self.trials} trials")
        for row in self.bound_rows():
            if not row["within"]:
                found.append(
                    f"{label}: observed {row['quantity']} "
                    f"{row['observed_max']} exceeds bound {row['bound']}"
                    + (f" × slack {row['slack']}" if row["slack"] != 1.0
                       else ""))
        return tuple(found)

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "cell": self.cell.to_dict(),
            "trials": self.trials,
            "agreement_failures": self.agreement_failures,
            "validity_checked": self.validity_checked,
            "validity_failures": self.validity_failures,
            "discovery_unsound": self.discovery_unsound,
            "succeeded": self.succeeded,
            "rounds": self.rounds.to_dict(),
            "rounds_hist": self.rounds_hist.to_dict(),
            "rounds_extrema": self.rounds_extrema.to_dict(),
            "entries": self.entries.to_dict(),
            "entries_extrema": self.entries_extrema.to_dict(),
            "units": self.units.to_dict(),
            "units_extrema": self.units_extrema.to_dict(),
            "messages": self.messages.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CellAggregate":
        aggregate = cls(McCell.from_dict(data["cell"]))
        aggregate.trials = int(data["trials"])
        aggregate.agreement_failures = int(data["agreement_failures"])
        aggregate.validity_checked = int(data["validity_checked"])
        aggregate.validity_failures = int(data["validity_failures"])
        aggregate.discovery_unsound = int(data["discovery_unsound"])
        aggregate.succeeded = int(data["succeeded"])
        aggregate.rounds = Welford.from_dict(data["rounds"])
        aggregate.rounds_hist = BoundedHistogram.from_dict(data["rounds_hist"])
        aggregate.rounds_extrema = Extrema.from_dict(data["rounds_extrema"])
        aggregate.entries = Welford.from_dict(data["entries"])
        aggregate.entries_extrema = Extrema.from_dict(data["entries_extrema"])
        aggregate.units = Welford.from_dict(data["units"])
        aggregate.units_extrema = Extrema.from_dict(data["units_extrema"])
        aggregate.messages = Welford.from_dict(data["messages"])
        return aggregate

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CellAggregate):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CellAggregate({self.cell.label()}, trials={self.trials}, "
                f"agreement_failures={self.agreement_failures})")
