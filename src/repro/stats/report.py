"""Campaign reporting: cell tables, bound confrontation rows, verdicts.

A completed (or partial) :class:`~.campaign.McResult` renders three ways:

* :func:`render_text` — aligned ASCII tables for the terminal;
* :func:`render_markdown` — GitHub-flavoured tables for EXPERIMENTS.md-style
  artifacts;
* :func:`to_json` — the full machine-readable report (``repro mc --json``),
  carrying every aggregate, CI, and bound row plus the verdict.

The verdict discipline matches :mod:`repro.analysis.checkers`: a problem is
only *hard* where the paper actually claims something
(:meth:`~.cells.CellAggregate.guarantees_apply`); cells under out-of-model
adversaries or past the resilience threshold report their numbers with a
``guarantees`` column of ``no`` and never fail the campaign.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ..analysis.reporting import format_markdown_table, format_table
from .campaign import McResult

#: Column order of the per-cell correctness table.
CELL_COLUMNS = ("cell", "guarantees", "trials", "agree_fail", "agree_rate",
                "agree_ci", "valid_fail", "valid_rate", "valid_ci",
                "rounds_mean", "rounds_max", "msgs_mean")

#: Column order of the observed-vs-theorem table.
BOUND_COLUMNS = ("cell", "quantity", "bound", "observed_max", "ratio",
                 "slack", "within")


def _ci(interval: Tuple[float, float]) -> str:
    low, high = interval
    return f"[{low:.4f}, {high:.4f}]"


def cell_rows(result: McResult, confidence: float = 0.95
              ) -> List[Dict[str, Any]]:
    """One correctness row per cell: counts, rates, Wilson intervals."""
    rows = []
    for aggregate in result.state.aggregates:
        rates = aggregate.failure_rates(confidence)
        rows.append({
            "cell": aggregate.cell.label(),
            "guarantees": aggregate.guarantees_apply(),
            "trials": aggregate.trials,
            "agree_fail": aggregate.agreement_failures,
            "agree_rate": rates["agreement_rate"],
            "agree_ci": _ci(rates["agreement_ci"]),
            "valid_fail": aggregate.validity_failures,
            "valid_rate": rates["validity_rate"],
            "valid_ci": _ci(rates["validity_ci"]),
            "rounds_mean": aggregate.rounds.mean,
            "rounds_max": aggregate.rounds_extrema.maximum,
            "msgs_mean": aggregate.messages.mean,
        })
    return rows


def bound_rows(result: McResult) -> List[Dict[str, Any]]:
    """Observed-vs-theorem rows across every cell that has a theorem."""
    rows: List[Dict[str, Any]] = []
    for aggregate in result.state.aggregates:
        rows.extend(aggregate.bound_rows())
    return rows


def verdict(result: McResult) -> Tuple[bool, Tuple[str, ...]]:
    """``(ok, problems)`` — ok iff complete and no theorem was contradicted."""
    problems = list(result.problems)
    if not result.complete:
        problems.insert(0, f"campaign incomplete: "
                           f"{result.state.trials_done}/"
                           f"{result.spec.total_trials} trials aggregated")
    return (not problems), tuple(problems)


def _summary_lines(result: McResult) -> List[str]:
    lines = [f"trials: {result.state.trials_done}/"
             f"{result.spec.total_trials}"
             + (f" (resumed past {result.resumed_trials})"
                if result.resumed_trials else "")]
    if result.executed:
        lines.append(f"throughput: {result.runs_per_second:.1f} runs/s "
                     f"({result.executed} trials in "
                     f"{result.elapsed_seconds:.2f}s, "
                     f"executor={result.spec.executor})")
    return lines


def render_text(result: McResult, confidence: float = 0.95) -> str:
    """The terminal report: summary, cell table, bound table, verdict."""
    ok, problems = verdict(result)
    parts = _summary_lines(result)
    parts.append("")
    parts.append(format_table(cell_rows(result, confidence),
                              columns=CELL_COLUMNS,
                              title=f"Correctness (Wilson "
                                    f"{confidence:.0%} CIs)"))
    rows = bound_rows(result)
    if rows:
        parts.append("")
        parts.append(format_table(rows, columns=BOUND_COLUMNS,
                                  title="Observed vs theorem bounds"))
    parts.append("")
    if ok:
        parts.append("VERDICT: ok — all observations within the paper's "
                     "guarantees")
    else:
        parts.append("VERDICT: FAIL")
        parts.extend(f"  - {problem}" for problem in problems)
    return "\n".join(parts)


def render_markdown(result: McResult, confidence: float = 0.95) -> str:
    """The same report as GitHub-flavoured Markdown sections."""
    ok, problems = verdict(result)
    parts = ["# Monte-Carlo verification report", ""]
    parts.extend(f"- {line}" for line in _summary_lines(result))
    parts.append(f"- verdict: {'ok' if ok else 'FAIL'}")
    parts.extend(f"  - {problem}" for problem in problems)
    parts.append("")
    parts.append(f"## Correctness (Wilson {confidence:.0%} CIs)")
    parts.append("")
    parts.append(format_markdown_table(cell_rows(result, confidence),
                                       columns=CELL_COLUMNS))
    rows = bound_rows(result)
    if rows:
        parts.append("")
        parts.append("## Observed vs theorem bounds")
        parts.append("")
        parts.append(format_markdown_table(rows, columns=BOUND_COLUMNS))
    return "\n".join(parts) + "\n"


def to_json(result: McResult, confidence: float = 0.95) -> Dict[str, Any]:
    """The machine-readable report of ``repro mc --json``."""
    ok, problems = verdict(result)
    return {
        "spec": result.spec.to_dict(),
        "complete": result.complete,
        "trials_done": result.state.trials_done,
        "executed": result.executed,
        "resumed_trials": result.resumed_trials,
        "elapsed_seconds": result.elapsed_seconds,
        "runs_per_second": result.runs_per_second,
        "confidence": confidence,
        "cells": [{
            **aggregate.to_dict(),
            "failure_rates": aggregate.failure_rates(confidence),
            "bound_rows": list(aggregate.bound_rows()),
            "guarantees_apply": aggregate.guarantees_apply(),
        } for aggregate in result.state.aggregates],
        "ok": ok,
        "problems": list(problems),
    }
