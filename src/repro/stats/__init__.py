"""Streaming Monte-Carlo verification at millions-of-runs scale.

The subsystem that turns the engine's single-run verdicts into statistical
evidence: constant-space aggregators (:mod:`~repro.stats.aggregators`),
Wilson confidence intervals (:mod:`~repro.stats.intervals`), per-cell
streaming state confronted with the paper's theorem bounds
(:mod:`~repro.stats.cells`), a serializable campaign description
(:mod:`~repro.stats.spec`), the chunked crash-safe driver
(:mod:`~repro.stats.campaign`), and report rendering
(:mod:`~repro.stats.report`).  ``repro mc`` is the CLI face.
"""

from __future__ import annotations

from .aggregators import BoundedHistogram, Extrema, Welford
from .campaign import (MC_CHECKPOINT_KIND, MC_CHECKPOINT_VERSION, McResult,
                       McState, read_mc_checkpoint, run_mc)
from .cells import (COMPUTATION_SLACK, OUT_OF_MODEL_ADVERSARIES,
                    CellAggregate, McCell)
from .intervals import Z_SCORES, wilson_interval, z_score
from .report import (bound_rows, cell_rows, render_markdown, render_text,
                     to_json, verdict)
from .spec import McSpec, mc_digest, placement_seed

__all__ = [
    "Welford", "Extrema", "BoundedHistogram",
    "wilson_interval", "z_score", "Z_SCORES",
    "McCell", "CellAggregate", "OUT_OF_MODEL_ADVERSARIES",
    "COMPUTATION_SLACK",
    "McSpec", "mc_digest", "placement_seed",
    "McState", "McResult", "run_mc", "read_mc_checkpoint",
    "MC_CHECKPOINT_KIND", "MC_CHECKPOINT_VERSION",
    "cell_rows", "bound_rows", "verdict", "render_text", "render_markdown",
    "to_json",
]
