"""Wilson-score confidence intervals for observed failure rates.

A Monte-Carlo campaign observing ``k`` failures in ``n`` trials reports not
just the point rate ``k/n`` but a confidence interval on the underlying
probability.  The Wilson score interval is the standard choice for
proportions near 0 or 1 — exactly where agreement/validity failure rates
live (0 failures in 10⁶ trials must yield a *non-trivial* upper bound,
which the naive Wald interval cannot do).
"""

from __future__ import annotations

import math
from typing import Tuple

from ..runtime.errors import ConfigurationError

#: Two-sided normal quantiles for the confidence levels the CLI accepts.
#: Held as literals (no scipy in the container) at full double precision.
Z_SCORES = {
    0.90: 1.6448536269514722,
    0.95: 1.959963984540054,
    0.99: 2.5758293035489004,
}


def z_score(confidence: float) -> float:
    """The two-sided normal quantile for *confidence* (a supported level)."""
    try:
        return Z_SCORES[confidence]
    except KeyError:
        raise ConfigurationError(
            f"unsupported confidence level {confidence}; choose one of "
            f"{sorted(Z_SCORES)}") from None


def wilson_interval(successes: int, trials: int,
                    confidence: float = 0.95) -> Tuple[float, float]:
    """The Wilson score interval for a binomial proportion.

    Returns ``(low, high)`` bounds on the underlying probability given
    *successes* out of *trials*.  Zero trials yield the vacuous ``(0, 1)``;
    the bounds are always inside ``[0, 1]`` and contain the point estimate.
    """
    if not 0 <= successes <= trials:
        raise ConfigurationError(
            f"{successes} successes out of {trials} trials is not a "
            f"proportion")
    if trials == 0:
        return 0.0, 1.0
    z = z_score(confidence)
    phat = successes / trials
    z2 = z * z
    denominator = 1.0 + z2 / trials
    centre = phat + z2 / (2.0 * trials)
    margin = z * math.sqrt(phat * (1.0 - phat) / trials
                           + z2 / (4.0 * trials * trials))
    low = (centre - margin) / denominator
    high = (centre + margin) / denominator
    # At p̂ = 0 (or 1) the boundary endpoint is exactly 0 (or 1); pin it so
    # floating-point residue like 1.7e-18 never leaks into reports.
    if successes == 0:
        low = 0.0
    if successes == trials:
        high = 1.0
    return max(0.0, low), min(1.0, high)
