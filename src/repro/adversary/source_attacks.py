"""Adversaries that centre on a faulty source.

The hardest executions of Byzantine broadcast have a faulty source that
equivocates in round 1 and accomplice relays that keep the two world views
alive for as long as possible.  These strategies implement that pattern with
increasing sophistication; they are the primary stressors used by the
agreement tests and by the block-progress experiment (E7).
"""

from __future__ import annotations

from typing import Mapping

from ..core.sequences import ProcessorId
from ..core.values import Value
from ..runtime.messages import Message, Outbox
from .base import ShadowAdversary
from .liars import another_value


class TwoFacedSourceAdversary(ShadowAdversary):
    """The source sends its value to half of the processors and a different
    value to the other half; the remaining faulty processors relay honestly.

    This isolates the effect of source equivocation: with all relays honest,
    every algorithm must converge on *some* common value (validity does not
    apply), and fault discovery should quickly pin the source.
    """

    name = "two-faced-source"

    def tamper(self, round_number: int, sender: ProcessorId, dest: ProcessorId,
               message: Message,
               correct_outboxes: Mapping[ProcessorId, Outbox]) -> Message:
        context = self._require_context()
        if sender != context.config.source or round_number != 1:
            return message
        if dest % 2 == 0:
            return message
        domain = context.config.domain
        return self.cached_rewrite(
            message, "flip",
            lambda: message.map_values(lambda value: another_value(value,
                                                                   domain)))


class EquivocatingSourceWithAlliesAdversary(ShadowAdversary):
    """A two-faced source whose faulty accomplices amplify the split.

    The source tells even-numbered processors ``v`` and odd-numbered ones the
    flipped value.  Every other faulty processor then *always* reports, about
    every tree node, the value that matches the destination's side of the
    split — so each side keeps hearing a consistent world in which its own
    round-1 value is corroborated.  This is the strongest value-splitting
    strategy expressible without violating sender authentication and is the
    default "worst case" adversary of the benchmark harness.
    """

    name = "equivocating-source-allies"

    def _side_value(self, dest: ProcessorId, original: Value) -> Value:
        domain = self._require_context().config.domain
        if dest % 2 == 0:
            return original
        return another_value(original, domain)

    def tamper(self, round_number: int, sender: ProcessorId, dest: ProcessorId,
               message: Message,
               correct_outboxes: Mapping[ProcessorId, Outbox]) -> Message:
        context = self._require_context()
        source = context.config.source
        side = dest % 2
        if sender == source:
            if round_number != 1:
                return message
            return self.cached_rewrite(
                message, ("source-side", side),
                lambda: message.map_values(
                    lambda value: self._side_value(dest, value)))
        # Accomplices: bias every relayed entry toward the destination's side
        # (a constant per destination parity, so the slot-wise rewrite is one
        # fill per side, shared by all destinations on that side).
        return self.cached_rewrite(
            message, ("ally-side", side),
            lambda: message.replace_values(
                self._side_value(dest, context.config.initial_value)))


class DelayedEquivocationAdversary(ShadowAdversary):
    """Accomplices behave correctly for the first ``honest_rounds`` rounds and
    only then start splitting the world.

    The paper's persistence property says early honesty is fatal for the
    adversary — once enough correct processors share a preferred value it
    persists through every later shift.  This strategy exists to exercise that
    property: lies that start late must not be able to destroy agreement.
    """

    name = "delayed-equivocation"

    def __init__(self, honest_rounds: int = 2) -> None:
        super().__init__()
        self.honest_rounds = honest_rounds
        self.name = f"delayed-equivocation(honest={honest_rounds})"

    def tamper(self, round_number: int, sender: ProcessorId, dest: ProcessorId,
               message: Message,
               correct_outboxes: Mapping[ProcessorId, Outbox]) -> Message:
        context = self._require_context()
        if round_number <= self.honest_rounds:
            return message
        domain = context.config.domain
        if dest % 2 == 0:
            return message
        return self.cached_rewrite(
            message, "flip",
            lambda: message.map_values(lambda value: another_value(value,
                                                                   domain)))
