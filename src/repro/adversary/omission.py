"""Omission and recovery failures: lossy senders, deaf receivers, rejoiners.

The omission family sits between crash faults and full Byzantine behaviour:
processors follow the protocol but *lose* messages.

* :class:`SendOmissionAdversary` — each faulty sender's message to each
  destination is dropped independently with a configurable rate.
* :class:`ReceiveOmissionAdversary` — faulty processors fail to *receive*:
  their (otherwise correct) shadows are fed a filtered inbox, so their later
  relays honestly reflect a corrupted view.
* :class:`CrashRecoveryAdversary` — processors go silent for ``k`` rounds
  and then *rejoin with stale state*: during the outage their shadows neither
  send nor receive, so the post-recovery relays broadcast the tree as it was
  when the outage began.

Every drop decision is derived from the bound seed and the message
coordinates ``(round, sender, dest)`` — never from the shared rng stream —
so the decisions are identical whatever order an execution mode evaluates
them in.

Send omission is a pure suppression pattern and rides the batched executor
unchanged.  Receive omission and crash-recovery manipulate what the shadows
*receive*, which the batched executor cannot express (its shadow rows are
stepped uniformly by the runner and their ``incoming`` is a no-op), so both
declare a :attr:`~repro.adversary.base.Adversary.batched_fallback_reason`
and run on the per-processor driver.
"""

from __future__ import annotations

import random
from typing import Mapping

from ..core.sequences import ProcessorId
from ..runtime.messages import Inbox
from .base import ShadowAdversary


def _drops(base_seed: int, round_number: int, sender: ProcessorId,
           dest: ProcessorId, rate_percent: int) -> bool:
    """Deterministic per-edge drop decision, independent of evaluation order."""
    if rate_percent <= 0:
        return False
    if rate_percent >= 100:
        return True
    coords = f"omission:{base_seed}:{round_number}:{sender}:{dest}"
    return random.Random(coords).randrange(100) < rate_percent


class SendOmissionAdversary(ShadowAdversary):
    """Faulty senders whose messages are dropped per destination.

    Parameters
    ----------
    rate_percent:
        Probability (percent, 0–100) that any one (round, sender, dest)
        delivery is omitted.  100 degenerates to
        :class:`~repro.adversary.crash.SilentAdversary`.
    """

    name = "send-omission"

    def __init__(self, rate_percent: int = 50) -> None:
        super().__init__()
        self.rate_percent = int(rate_percent)
        self._base_seed = 0

    def bind(self, context) -> None:
        super().bind(context)
        self._base_seed = self._effective_seed(context)
        self.name = f"send-omission(rate={self.rate_percent}%)"

    def suppress(self, round_number: int, sender: ProcessorId,
                 dest: ProcessorId) -> bool:
        return _drops(self._base_seed, round_number, sender, dest,
                      self.rate_percent)


class ReceiveOmissionAdversary(ShadowAdversary):
    """Faulty processors that fail to receive, then relay their gapped view.

    The shadows are fed inboxes with a rate of deliveries removed; gather
    substitutes the default value for the gaps, so subsequent (honest) relays
    propagate the receiver-side corruption into the correct processors'
    trees.
    """

    name = "receive-omission"
    batched_fallback_reason = ("receive omission withholds deliveries from "
                               "the faulty shadows, which are row-backed "
                               "(stepped by the runner) under the batched "
                               "executor")

    def __init__(self, rate_percent: int = 50) -> None:
        super().__init__()
        self.rate_percent = int(rate_percent)
        self._base_seed = 0

    def bind(self, context) -> None:
        super().bind(context)
        self._base_seed = self._effective_seed(context)
        self.name = f"receive-omission(rate={self.rate_percent}%)"

    def observe_delivery(self, round_number: int,
                         faulty_inboxes: Mapping[ProcessorId, Inbox]) -> None:
        filtered = {
            pid: {sender: message for sender, message in inbox.items()
                  if not _drops(self._base_seed, round_number, sender, pid,
                                self.rate_percent)}
            for pid, inbox in faulty_inboxes.items()
        }
        super().observe_delivery(round_number, filtered)


class CrashRecoveryAdversary(ShadowAdversary):
    """Processors that go silent for ``k`` rounds and rejoin with stale state.

    Parameters
    ----------
    crash_round:
        First round of the outage (the processors behave correctly strictly
        before it).  Clamped to ≥ 2: a processor that crashes before storing
        its root has no state to rejoin with — that is
        :class:`~repro.adversary.crash.SilentAdversary`, not recovery.
    silent_rounds:
        Length of the outage: during rounds ``crash_round ..
        crash_round + silent_rounds - 1`` the faulty processors neither send
        nor receive.  Afterwards they resume the protocol from the tree they
        held when the outage began — their relays broadcast stale levels,
        which receivers treat exactly like missing messages (defaults).
    """

    name = "crash-recovery"
    batched_fallback_reason = ("crash-recovery shadows skip rounds and "
                               "rejoin with stale state, which the "
                               "uniformly-stepped batched shadow rows "
                               "cannot represent")

    def __init__(self, crash_round: int = 2, silent_rounds: int = 2) -> None:
        super().__init__()
        self.crash_round = max(2, int(crash_round))
        self.silent_rounds = max(0, int(silent_rounds))

    def bind(self, context) -> None:
        super().bind(context)
        self.name = (f"crash-recovery(round={self.crash_round},"
                     f"silent={self.silent_rounds})")

    def _down(self, round_number: int) -> bool:
        return (self.crash_round <= round_number
                < self.crash_round + self.silent_rounds)

    def suppress(self, round_number: int, sender: ProcessorId,
                 dest: ProcessorId) -> bool:
        return self._down(round_number)

    def observe_delivery(self, round_number: int,
                         faulty_inboxes: Mapping[ProcessorId, Inbox]) -> None:
        if self._down(round_number):
            return  # the outage: shadows receive nothing, state goes stale
        super().observe_delivery(round_number, faulty_inboxes)
