"""Byzantine adversary strategies.

Every strategy controls the whole faulty set at once, sees the correct
processors' messages before choosing its own (rushing), and cannot forge
sender identities.  :func:`standard_adversaries` returns the battery used by
the agreement test-suite and by the experiment harness.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .base import Adversary, AdversaryContext, BenignAdversary, ShadowAdversary
from .crash import CrashAdversary, SilentAdversary, StaggeredCrashAdversary
from .liars import (ConsistentLiarAdversary, EchoSuppressorAdversary,
                    RandomLiarAdversary, TwoFacedAdversary, another_value)
from .moving import MovingTargetAdversary
from .omission import (CrashRecoveryAdversary, ReceiveOmissionAdversary,
                       SendOmissionAdversary)
from .source_attacks import (DelayedEquivocationAdversary,
                             EquivocatingSourceWithAlliesAdversary,
                             TwoFacedSourceAdversary)
from .stealth import MinimalExposureAdversary, StealthPathAdversary
from .transient import TransientCorruptionAdversary

__all__ = [
    "Adversary",
    "AdversaryContext",
    "BenignAdversary",
    "ShadowAdversary",
    "CrashAdversary",
    "SilentAdversary",
    "StaggeredCrashAdversary",
    "ConsistentLiarAdversary",
    "RandomLiarAdversary",
    "TwoFacedAdversary",
    "EchoSuppressorAdversary",
    "TwoFacedSourceAdversary",
    "EquivocatingSourceWithAlliesAdversary",
    "DelayedEquivocationAdversary",
    "StealthPathAdversary",
    "MinimalExposureAdversary",
    "TransientCorruptionAdversary",
    "SendOmissionAdversary",
    "ReceiveOmissionAdversary",
    "CrashRecoveryAdversary",
    "MovingTargetAdversary",
    "another_value",
    "standard_adversaries",
    "adversary_registry",
]


def adversary_registry() -> Dict[str, Callable[[], Adversary]]:
    """Factories for every named adversary strategy."""
    return {
        "benign": BenignAdversary,
        "crash": CrashAdversary,
        "staggered-crash": StaggeredCrashAdversary,
        "silent": SilentAdversary,
        "consistent-liar": ConsistentLiarAdversary,
        "random-liar": RandomLiarAdversary,
        "two-faced": TwoFacedAdversary,
        "echo-suppressor": EchoSuppressorAdversary,
        "two-faced-source": TwoFacedSourceAdversary,
        "equivocating-source-allies": EquivocatingSourceWithAlliesAdversary,
        "delayed-equivocation": DelayedEquivocationAdversary,
        "stealth-path": StealthPathAdversary,
        "minimal-exposure": MinimalExposureAdversary,
        "transient-corruption": TransientCorruptionAdversary,
        "send-omission": SendOmissionAdversary,
        "receive-omission": ReceiveOmissionAdversary,
        "crash-recovery": CrashRecoveryAdversary,
        "moving-target": MovingTargetAdversary,
    }


def standard_adversaries() -> List[Adversary]:
    """A fresh instance of every strategy in the registry (test battery)."""
    return [factory() for factory in adversary_registry().values()]
