"""Lying adversaries: consistent, random, and destination-dependent lies.

These strategies perturb the *values* carried by otherwise well-formed
messages.  A consistent liar tells the same lie to everyone (easy to out-vote,
hard to detect); a random liar injects noise (easy to detect); a two-faced
liar partitions the correct processors and tells each side a different story
(the behaviour the agreement lower bounds are built on).

All of them rewrite through the message's own slot-wise helpers
(:meth:`~repro.runtime.messages.Message.map_values` and friends), so a lie
about an array-backed level broadcast flips the value buffer directly instead
of materialising a ``{sequence: value}`` dictionary per destination.
"""

from __future__ import annotations

from typing import Mapping

from ..core.sequences import ProcessorId
from ..core.values import DEFAULT_VALUE, Value
from ..runtime.messages import LevelMessage, Message, Outbox
from .base import ShadowAdversary


def another_value(value: Value, domain) -> Value:
    """A domain element different from *value* (the "lie" about it).

    Raises :class:`ValueError` when no such element exists (a degenerate
    domain whose only element is *value*): silently returning the original
    value would turn every lying adversary into a benign one, which is a
    configuration error, not a strategy.  :class:`ProtocolConfig` rejects
    domains with fewer than two distinct elements, so the raise is
    unreachable from a simulation; the contract matters for direct users of
    the adversary toolbox — and it is preserved verbatim by the slot-wise
    rewrite paths, which apply this function per (distinct) buffered value.
    """
    for candidate in domain:
        if candidate != value:
            return candidate
    raise ValueError(
        f"domain {tuple(domain)!r} has no element different from {value!r}; "
        f"a lying adversary needs at least two values to choose from")


class ConsistentLiarAdversary(ShadowAdversary):
    """Every faulty processor flips every value it relays, identically for all
    destinations.

    Because the lie is consistent, correct processors store identical trees
    and agreement is never in danger; what the strategy stresses is validity
    (out-voting the lies about the source's value) and the fault-discovery
    thresholds.
    """

    name = "consistent-liar"

    def tamper(self, round_number: int, sender: ProcessorId, dest: ProcessorId,
               message: Message,
               correct_outboxes: Mapping[ProcessorId, Outbox]) -> Message:
        domain = self._require_context().config.domain
        # One flipped buffer serves every destination (the lie is consistent).
        return self.cached_rewrite(
            message, "flip",
            lambda: message.map_values(lambda value: another_value(value,
                                                                   domain)))


class RandomLiarAdversary(ShadowAdversary):
    """Every relayed value is replaced by a uniformly random domain element,
    chosen independently per destination and per entry.

    This is maximal noise: it almost always triggers the Fault Discovery Rule
    quickly, which makes it a good exerciser of masking rather than a strong
    attack on agreement.
    """

    name = "random-liar"

    def tamper(self, round_number: int, sender: ProcessorId, dest: ProcessorId,
               message: Message,
               correct_outboxes: Mapping[ProcessorId, Outbox]) -> Message:
        domain = self._require_context().config.domain
        if isinstance(message, LevelMessage):
            # One rng draw per entry, in node-id order — the same draw
            # sequence as the dict path below (dict order is node-id order),
            # so executions are seed-reproducible across engines.
            noise = [self.rng.choice(domain)
                     for _ in range(message.entry_count())]
            return message.with_level_values(noise)
        noisy = {seq: self.rng.choice(domain)
                 for seq in message.sequences()}
        return message.with_entries(noisy)


class TwoFacedAdversary(ShadowAdversary):
    """Destination-dependent lies: one story for even correct processors,
    another for odd ones.

    Every faulty processor reports the true (shadow) value to one half of the
    correct processors and the flipped value to the other half, on every entry
    it relays.  This is the canonical equivocation pattern that forces
    agreement protocols to spend rounds reconciling views.
    """

    name = "two-faced"

    def tamper(self, round_number: int, sender: ProcessorId, dest: ProcessorId,
               message: Message,
               correct_outboxes: Mapping[ProcessorId, Outbox]) -> Message:
        domain = self._require_context().config.domain
        if dest % 2 == 0:
            return message
        # Every odd destination hears the same flipped story: build it once.
        return self.cached_rewrite(
            message, "flip",
            lambda: message.map_values(lambda value: another_value(value,
                                                                   domain)))


class EchoSuppressorAdversary(ShadowAdversary):
    """Faulty processors always report the default value for every entry.

    Unlike :class:`~repro.adversary.crash.SilentAdversary` the messages *are*
    sent (well-formed, on time), so no omission is detectable — the lie is in
    the content.  Under fault masking this is exactly how a globally detected
    processor is forced to behave, so the strategy doubles as a check that
    masked and unmasked "all-zeros" senders are treated identically.
    """

    name = "echo-suppressor"

    def tamper(self, round_number: int, sender: ProcessorId, dest: ProcessorId,
               message: Message,
               correct_outboxes: Mapping[ProcessorId, Outbox]) -> Message:
        # The all-default report is destination-independent: one fill.
        return self.cached_rewrite(
            message, "default",
            lambda: message.replace_values(DEFAULT_VALUE))
