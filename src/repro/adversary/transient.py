"""Transient state corruption: the self-stabilization-style fault model.

Dolev–Herman's *unsupportive environments* corrupt a processor's **stored
state** between rounds instead of (or in addition to) lying on the wire.
:class:`TransientCorruptionAdversary` models the bounded variant relevant to
fixed-round agreement: for a prefix of ``corrupt_rounds`` rounds it flips
stored tree values of otherwise-*correct* processors through the
:meth:`~repro.adversary.base.Adversary.corrupt_state` hook, which both the
per-processor and the batched driver honour at the same point of every round
(see :mod:`repro.runtime.corruption`).

The corrupted processors are not members of the faulty set — the interesting
question is precisely whether the protocol's redundancy absorbs a bounded
amount of state corruption of *correct* participants on top of ``t``
Byzantine processors.
"""

from __future__ import annotations

from .base import ShadowAdversary
from .liars import another_value


class TransientCorruptionAdversary(ShadowAdversary):
    """Flips stored tree state of correct processors for a bounded prefix.

    Parameters
    ----------
    corrupt_rounds:
        Corruption happens after the deliveries of rounds ``1 ..
        corrupt_rounds`` and never again (the transient window).
    victims:
        How many correct participants are corrupted per round (the
        lowest-numbered eligible ones, deterministically).
    flips:
        How many stored values are flipped per victim per round; slots are
        drawn from the bound rng, values flip to a different domain element.

    The faulty set behaves correctly on the wire (benign shadows) — state
    corruption is this strategy's entire attack surface, so runs with an
    empty faulty set isolate the fault model.  Eligible for the batched
    executor: a state flip is a claims-matrix edit.
    """

    name = "transient-corruption"

    def __init__(self, corrupt_rounds: int = 1, victims: int = 1,
                 flips: int = 1) -> None:
        super().__init__()
        self.corrupt_rounds = int(corrupt_rounds)
        self.victims = int(victims)
        self.flips = int(flips)

    def bind(self, context) -> None:
        super().bind(context)
        self.name = (f"transient-corruption(rounds={self.corrupt_rounds},"
                     f"victims={self.victims},flips={self.flips})")

    def corrupt_state(self, round_number, state_views) -> None:
        if round_number > self.corrupt_rounds:
            return
        domain = self._require_context().config.domain
        for pid in sorted(state_views)[:self.victims]:
            view = state_views[pid]
            for _ in range(self.flips):
                slot = self.rng.randrange(view.width)
                view.set(slot, another_value(view.get(slot), domain))
