"""A moving faulty set: misbehaviour migrates between processors per round.

The paper's fault model fixes the faulty set for the whole execution; the
*moving-target* model lets the actively-misbehaving subset migrate between
rounds while the cumulative set of processors that ever misbehaved stays
within the ``t`` budget — the bound faulty set **is** that cumulative budget.
Each round only a rotating window of it actively lies; the others behave
correctly (their shadows' messages pass through untouched).

This is strictly weaker than the static model (the adversary reveals at most
``t`` distinct identities in total) but strictly harder to *discover*: no
single processor accumulates enough inconsistent claims per round to cross
the discovery thresholds quickly, so the rotation probes the Fault Discovery
Rule's bookkeeping across rounds.

Pure per-destination tampering — eligible for the batched executor.
"""

from __future__ import annotations

from typing import Mapping, Tuple

from ..core.sequences import ProcessorId
from ..runtime.messages import Message, Outbox
from .base import ShadowAdversary
from .liars import another_value


class MovingTargetAdversary(ShadowAdversary):
    """Rotates the actively-lying subset of the faulty budget per round.

    Parameters
    ----------
    active:
        How many of the bound faulty processors lie in any one round.
    rotate_every:
        Rounds between rotations: the active window advances by ``active``
        positions (cyclically, in id order) every ``rotate_every`` rounds.
    """

    name = "moving-target"

    def __init__(self, active: int = 1, rotate_every: int = 1) -> None:
        super().__init__()
        self.active = max(1, int(active))
        self.rotate_every = max(1, int(rotate_every))
        self._members: Tuple[ProcessorId, ...] = ()

    def bind(self, context) -> None:
        super().bind(context)
        self._members = tuple(sorted(context.faulty))
        self.name = (f"moving-target(active={self.active},"
                     f"every={self.rotate_every})")

    def active_set(self, round_number: int) -> Tuple[ProcessorId, ...]:
        """The processors actively lying in *round_number* (id order)."""
        members = self._members
        if not members:
            return ()
        width = min(self.active, len(members))
        start = (((round_number - 1) // self.rotate_every) * width
                 % len(members))
        return tuple(members[(start + i) % len(members)]
                     for i in range(width))

    def tamper(self, round_number: int, sender: ProcessorId,
               dest: ProcessorId, message: Message,
               correct_outboxes: Mapping[ProcessorId, Outbox]) -> Message:
        if sender not in self.active_set(round_number):
            return message
        domain = self._require_context().config.domain
        # The active liar tells everyone the same flipped story this round.
        return self.cached_rewrite(
            message, "flip",
            lambda: message.map_values(lambda value: another_value(value,
                                                                   domain)))
