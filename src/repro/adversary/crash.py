"""Crash and omission failures.

Crash faults are the mildest Byzantine behaviour: a processor follows the
protocol until some round, possibly sends to only a subset of the
destinations in that round (the classic "crash in the middle of a broadcast"),
and is silent forever after.  They are useful both as an easy correctness
check and because staggered crashes are the classic worst case for
round-count lower bounds.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..core.sequences import ProcessorId
from .base import ShadowAdversary


class CrashAdversary(ShadowAdversary):
    """Faulty processors crash at configurable rounds.

    Parameters
    ----------
    crash_round:
        Either a single round number applied to every faulty processor or a
        mapping from processor id to its crash round.  A processor behaves
        correctly strictly before its crash round, delivers to only its first
        ``partial_deliveries`` destinations (in id order) during the crash
        round, and sends nothing afterwards.
    partial_deliveries:
        How many destinations still receive the crash-round message.
        0 models a clean stop before sending; a positive value models the
        mid-broadcast crash that makes crash faults non-trivial.
    """

    name = "crash"

    def __init__(self, crash_round=2, partial_deliveries: int = 0) -> None:
        super().__init__()
        self._crash_round_config = crash_round
        self.partial_deliveries = partial_deliveries
        self._crash_rounds: Dict[ProcessorId, int] = {}

    def bind(self, context) -> None:
        super().bind(context)
        if isinstance(self._crash_round_config, Mapping):
            rounds = dict(self._crash_round_config)
        else:
            rounds = {pid: int(self._crash_round_config) for pid in context.faulty}
        self._crash_rounds = {
            pid: max(1, rounds.get(pid, 1)) for pid in context.faulty
        }
        self.name = f"crash(round={sorted(set(self._crash_rounds.values()))})"

    def crash_round_of(self, pid: ProcessorId) -> int:
        return self._crash_rounds[pid]

    def suppress(self, round_number: int, sender: ProcessorId,
                 dest: ProcessorId) -> bool:
        crash_round = self._crash_rounds[sender]
        if round_number < crash_round:
            return False
        if round_number > crash_round:
            return True
        correct_destinations = sorted(
            p for p in self._require_context().correct if p != sender)
        allowed = set(correct_destinations[:self.partial_deliveries])
        return dest not in allowed


class StaggeredCrashAdversary(CrashAdversary):
    """One crash per round, the classic worst case for early stopping.

    The ``i``-th faulty processor (in id order) crashes in round ``i + 1``
    while mid-broadcast, so the adversary reveals exactly one new fault per
    round for as long as it can.
    """

    name = "staggered-crash"

    def __init__(self, partial_deliveries: int = 1, first_round: int = 1) -> None:
        super().__init__(crash_round=first_round,
                         partial_deliveries=partial_deliveries)
        self.first_round = first_round

    def bind(self, context) -> None:
        schedule = {
            pid: self.first_round + index
            for index, pid in enumerate(sorted(context.faulty))
        }
        self._crash_round_config = schedule
        super().bind(context)
        self.name = "staggered-crash"


class SilentAdversary(ShadowAdversary):
    """Faulty processors that never send anything at all.

    Receivers substitute the default value for every missing message, so this
    adversary exercises the "inappropriate message" path of every protocol.
    """

    name = "silent"

    def suppress(self, round_number: int, sender: ProcessorId,
                 dest: ProcessorId) -> bool:
        return True
