"""Detection-avoiding ("stealth") adversaries.

The shifting technique's progress argument is a dichotomy: every block either
produces a persistent value or globally detects a batch of new faults.  The
adversary that stresses this argument hardest is one that lies *only where a
lie cannot be pinned on it* — at tree nodes whose entire label sequence
consists of faulty processors — and keeps every other report honest, so the
Fault Discovery Rule has as little to work with as possible.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from ..core.sequences import ProcessorId, SequenceIndex
from ..core.values import Value
from ..runtime.messages import LevelMessage, Message, Outbox
from .base import ShadowAdversary
from .liars import another_value


class StealthPathAdversary(ShadowAdversary):
    """Lie only about nodes whose path is entirely faulty, differently per side.

    For an entry keyed by sequence ``α`` the message is left untouched unless
    every processor named in ``α`` is faulty; in that case even-numbered
    destinations get the shadow's (honest) value and odd-numbered destinations
    get the flipped value.  Because every correct processor on a path forces
    commonness (the Correctness Lemma), these all-faulty paths are exactly the
    places where disagreement can survive a conversion — and exactly the nodes
    the Hidden Fault Lemma reasons about.

    The all-faulty node-ids of a level depend only on the tree shape and the
    faulty set, so they are computed once per ``(index, level)`` and reused by
    the slot-wise rewrite of every level broadcast — the dict walk survives
    only for round-1-style explicit messages.
    """

    name = "stealth-path"

    def __init__(self) -> None:
        super().__init__()
        #: (index identity, level) -> node-ids whose path is entirely faulty
        self._all_faulty_ids: Dict[Tuple[int, int], List[int]] = {}

    def bind(self, context) -> None:
        # The cached ids depend on the bound faulty set; clearing keeps the
        # cache tied to this binding (rebinding itself raises in the base
        # class, so this is belt-and-braces for subclasses).
        super().bind(context)
        self._all_faulty_ids.clear()

    def _all_faulty_node_ids(self, index: SequenceIndex,
                             level: int) -> List[int]:
        key = (id(index), level)
        ids = self._all_faulty_ids.get(key)
        if ids is None:
            faulty = self._require_context().faulty
            ids = [node_id
                   for node_id, seq in enumerate(index.sequences(level))
                   if all(pid in faulty for pid in seq)]
            self._all_faulty_ids[key] = ids
        return ids

    def tamper(self, round_number: int, sender: ProcessorId, dest: ProcessorId,
               message: Message,
               correct_outboxes: Mapping[ProcessorId, Outbox]) -> Message:
        context = self._require_context()
        faulty = context.faulty
        domain = context.config.domain
        if dest % 2 == 0:
            return message
        # Every odd destination gets the same selectively flipped buffer.
        return self.cached_rewrite(
            message, "stealth-flip", lambda: self._flip_all_faulty(message,
                                                                   faulty,
                                                                   domain))

    def _flip_all_faulty(self, message: Message, faulty, domain) -> Message:
        if isinstance(message, LevelMessage):
            ids = self._all_faulty_node_ids(message.index, message.level)
            return message.map_values_at(
                ids, lambda value: another_value(value, domain))
        tampered = {}
        for seq, value in message.items():
            path_all_faulty = all(pid in faulty for pid in seq)
            if path_all_faulty:
                tampered[seq] = another_value(value, domain)
            else:
                tampered[seq] = value
        return message.with_entries(tampered)


class MinimalExposureAdversary(ShadowAdversary):
    """Sacrifice the faulty processors one at a time.

    Faulty processors are ordered; in any round only the first not-yet-exposed
    one lies (two-faced, about every entry), while the rest behave correctly.
    Once a block completes, the next faulty processor takes over as the liar.
    This approximates the paper's worst case in which each block without a
    persistent value costs the adversary only the minimum number of newly
    detected faults, so executions run close to the worst-case round bounds.
    """

    name = "minimal-exposure"

    def __init__(self, rounds_per_liar: int = 2) -> None:
        super().__init__()
        self.rounds_per_liar = max(1, rounds_per_liar)
        self.name = f"minimal-exposure(block={self.rounds_per_liar})"

    def _active_liar(self, round_number: int) -> ProcessorId:
        context = self._require_context()
        order = sorted(context.faulty)
        index = ((round_number - 1) // self.rounds_per_liar) % len(order)
        return order[index]

    def tamper(self, round_number: int, sender: ProcessorId, dest: ProcessorId,
               message: Message,
               correct_outboxes: Mapping[ProcessorId, Outbox]) -> Message:
        context = self._require_context()
        if sender != self._active_liar(round_number):
            return message
        domain = context.config.domain
        if dest % 2 == 0:
            return message
        return self.cached_rewrite(
            message, "flip",
            lambda: message.map_values(lambda value: another_value(value,
                                                                   domain)))
