"""Adversary interfaces and the shadow-processor machinery.

The paper's fault model places no restriction on faulty behaviour: the
adversary is a single coordinating entity that controls every faulty
processor, sees the complete state of the system (a *full-information*
adversary), and in each round may choose the faulty processors' messages
*after* seeing what the correct processors send (a *rushing* adversary).
The only power it lacks is forging sender identities — the network stamps
those.

Concrete strategies usually want to deviate *from what a correct processor
would have sent*, so :class:`ShadowAdversary` maintains a correct protocol
instance ("shadow") for every faulty processor, feeds it the messages the
faulty processor actually receives, and lets subclasses tamper with the
shadows' outgoing messages per destination.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, Mapping, Optional

from ..core.sequences import ProcessorId
from ..runtime.errors import AdversaryError, SimulationError
from ..runtime.messages import Inbox, Message, Outbox

if TYPE_CHECKING:  # imported only for annotations, to avoid an import cycle
    from ..core.protocol import AgreementProtocol, ProtocolConfig, ProtocolSpec
    from ..runtime.corruption import StateView


@dataclass(frozen=True)
class AdversaryContext:
    """Everything an adversary is allowed to know before the execution starts."""

    config: ProtocolConfig
    spec: ProtocolSpec
    faulty: FrozenSet[ProcessorId]
    seed: int = 0

    def rng(self) -> random.Random:
        return random.Random(self.seed)

    @property
    def correct(self) -> FrozenSet[ProcessorId]:
        return frozenset(set(self.config.processors) - self.faulty)

    @property
    def source_is_faulty(self) -> bool:
        return self.config.source in self.faulty


class Adversary(abc.ABC):
    """Coordinated Byzantine behaviour for the whole faulty set."""

    name = "adversary"

    #: ``None`` when the strategy is expressible under the batched whole-run
    #: executor (a claims-matrix edit); otherwise a one-line reason string.
    #: The batched and sharded drivers fall back to the per-processor path
    #: when set, and the planner/``repro validate`` surface the reason.
    batched_fallback_reason: Optional[str] = None

    def __init__(self) -> None:
        self.context: Optional[AdversaryContext] = None
        self._seed_override: Optional[int] = None

    def bind(self, context: AdversaryContext) -> None:
        """Attach the adversary to one execution.  Called once by the driver.

        Rebinding an already-bound adversary raises: strategy state built for
        the previous execution (shadow protocol machines, rng position,
        cached node-id tables) would silently leak into the new one.  Use a
        fresh adversary instance per run — the workload scenarios hand out
        factories for exactly this reason.
        """
        if self.context is not None:
            raise SimulationError(
                f"adversary {self.describe()!r} is already bound to an "
                f"execution context; create a fresh adversary instance per "
                f"run (stale shadow/rng state must not leak across "
                f"executions)")
        self.context = context

    def reseed(self, seed: int) -> None:
        """Override the rng seed the next :meth:`bind` will use.

        Every randomised strategy draws from one :class:`random.Random`
        seeded at bind time; the search mutator perturbs that stream through
        this single hook instead of knowing each subclass's rng fields.
        Reseeding after bind raises — the rng position already belongs to an
        execution.
        """
        if self.context is not None:
            raise SimulationError(
                f"adversary {self.describe()!r} is already bound; reseed() "
                f"must be called before bind()")
        self._seed_override = seed

    def _effective_seed(self, context: AdversaryContext) -> int:
        return self._seed_override if self._seed_override is not None else context.seed

    def _require_context(self) -> AdversaryContext:
        if self.context is None:
            raise AdversaryError("adversary used before bind()")
        return self.context

    @abc.abstractmethod
    def round_messages(self, round_number: int,
                       correct_outboxes: Mapping[ProcessorId, Outbox]
                       ) -> Dict[ProcessorId, Outbox]:
        """The faulty processors' messages for *round_number*.

        The adversary is rushing: ``correct_outboxes`` contains what every
        correct processor is sending this round.  The return value maps each
        faulty sender to its outbox; omitted senders send nothing.
        """

    def observe_delivery(self, round_number: int,
                         faulty_inboxes: Mapping[ProcessorId, Inbox]) -> None:
        """Hook invoked after delivery with the messages the faulty processors
        received.  Default: ignore."""

    def corrupt_state(self, round_number: int,
                      state_views: Mapping[ProcessorId, "StateView"]) -> None:
        """Flip stored state of *correct* processors after a round's delivery.

        ``state_views`` maps every correct non-source participant to a
        read/write view of its current top tree level (node-id order); see
        :mod:`repro.runtime.corruption`.  Both the per-processor and the
        batched driver invoke this at the same point — after every delivery
        and conversion of the round, before the next round's broadcasts are
        built — so in-place edits are observationally identical across
        engines.  Written values must stay inside ``config.domain`` (the
        batched state never stores a missing sentinel).  Default: no state
        corruption; drivers skip the hook entirely when it is not overridden.
        """

    def describe(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Adversary {self.describe()}>"


class ShadowAdversary(Adversary):
    """Base class that runs a correct "shadow" protocol per faulty processor.

    Subclasses override :meth:`tamper` (per-destination message rewriting)
    and/or :meth:`suppress` (dropping messages entirely).  By default the
    shadows' messages are forwarded untouched, i.e. the faulty processors
    behave correctly.
    """

    name = "shadow"

    def __init__(self) -> None:
        super().__init__()
        self._shadows: Dict[ProcessorId, AgreementProtocol] = {}
        self._rng: Optional[random.Random] = None
        self._rewrite_cache: tuple = (None, {})

    def bind(self, context: AdversaryContext) -> None:
        super().bind(context)
        self._rng = random.Random(self._effective_seed(context))
        self._rewrite_cache = (None, {})
        self._shadows = {
            pid: context.spec.build(pid, context.config)
            for pid in sorted(context.faulty)
        }

    # -- knobs for subclasses ------------------------------------------------
    @property
    def rng(self) -> random.Random:
        if self._rng is None:
            raise AdversaryError("adversary used before bind()")
        return self._rng

    def shadow(self, pid: ProcessorId) -> AgreementProtocol:
        return self._shadows[pid]

    def cached_rewrite(self, message: Message, key, build) -> Message:
        """Memoise a deterministic per-destination rewrite of one broadcast.

        Most tampering strategies send each destination one of a *few*
        deterministic rewrites of the shadow's broadcast (e.g. the honest
        buffer or the flipped buffer) — rebuilding the rewritten message per
        destination costs ``n − 1`` buffer fills where two suffice.  The
        cache is keyed by the identity of the *current* broadcast message
        (tamper calls for one round's broadcast arrive consecutively, and the
        cache holds a strong reference, so the identity cannot be recycled)
        plus a caller-chosen *key* naming the rewrite.  Messages are
        immutable, so sharing one rewritten object across destinations is
        indistinguishable from rebuilding it — except to the wall clock, and
        to the batched executor, which dedupes claim rows per object.

        Never use this for non-deterministic rewrites (per-destination
        randomness must stay one draw per destination).
        """
        cached_message, by_key = self._rewrite_cache
        if cached_message is not message:
            by_key = {}
            self._rewrite_cache = (message, by_key)
        rewritten = by_key.get(key)
        if rewritten is None:
            rewritten = by_key[key] = build()
        return rewritten

    def suppress(self, round_number: int, sender: ProcessorId,
                 dest: ProcessorId) -> bool:
        """Return True to drop the message from *sender* to *dest* entirely."""
        return False

    def tamper(self, round_number: int, sender: ProcessorId, dest: ProcessorId,
               message: Message,
               correct_outboxes: Mapping[ProcessorId, Outbox]) -> Message:
        """Rewrite the shadow's message for one destination (default: no-op).

        Implementations must return a *new* message (messages are immutable)
        and should rewrite through the message's slot-wise helpers —
        :meth:`~repro.runtime.messages.Message.map_values`,
        :meth:`~repro.runtime.messages.Message.replace_values`,
        :meth:`~repro.runtime.messages.LevelMessage.map_values_at`,
        :meth:`~repro.runtime.messages.LevelMessage.with_level_values` — so
        that a lie about an array-backed level broadcast flips the value
        buffer directly instead of materialising a per-destination
        ``{sequence: value}`` dictionary.
        """
        return message

    # -- Adversary API ----------------------------------------------------------
    def round_messages(self, round_number: int,
                       correct_outboxes: Mapping[ProcessorId, Outbox]
                       ) -> Dict[ProcessorId, Outbox]:
        context = self._require_context()
        result: Dict[ProcessorId, Outbox] = {}
        for pid in sorted(context.faulty):
            shadow_outbox = self._shadows[pid].outgoing(round_number)
            outbox: Outbox = {}
            for dest, message in shadow_outbox.items():
                if dest in context.faulty:
                    # Faulty-to-faulty traffic is internal to the adversary;
                    # keep it so shadows stay consistent, but it is free.
                    outbox[dest] = message
                    continue
                if self.suppress(round_number, pid, dest):
                    continue
                outbox[dest] = self.tamper(round_number, pid, dest, message,
                                           correct_outboxes)
            result[pid] = outbox
        return result

    def observe_delivery(self, round_number: int,
                         faulty_inboxes: Mapping[ProcessorId, Inbox]) -> None:
        for pid, inbox in faulty_inboxes.items():
            if pid in self._shadows:
                self._shadows[pid].incoming(round_number, dict(inbox))


class BenignAdversary(ShadowAdversary):
    """Faulty processors that follow the protocol to the letter.

    Useful as a baseline: with a benign adversary every execution must decide
    on the source's value, and fault discovery should never trigger.
    """

    name = "benign"
