"""Verdicts on executed runs: agreement, validity, bound compliance.

Tests, benchmarks and the experiment harness all need the same checks, so
they live here rather than being re-derived ad hoc:

* :func:`check_agreement` / :func:`check_validity` — the two correctness
  conditions of the Byzantine agreement problem;
* :func:`check_round_bound`, :func:`check_message_bound` — a run stayed
  within the theorem's promises;
* :func:`verify_run` — all of the above combined into a :class:`RunVerdict`;
* :func:`verify_report` — the same verdict computed from a serializable
  :class:`~repro.api.request.RunReport` (the façade's structured outcome),
  so checks can run on the far side of a process or wire boundary where no
  live :class:`RunResult` exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..runtime.simulation import RunResult


@dataclass(frozen=True)
class RunVerdict:
    """The outcome of checking one run against the paper's guarantees."""

    agreement: bool
    validity: Optional[bool]
    discovery_sound: bool
    rounds_within_bound: Optional[bool]
    message_within_bound: Optional[bool]
    problems: tuple

    @property
    def ok(self) -> bool:
        return not self.problems


def check_agreement(result: RunResult) -> bool:
    """No two correct processors decided differently."""
    return result.agreement


def check_validity(result: RunResult) -> Optional[bool]:
    """If the source is correct, every correct processor decided its value."""
    return result.validity


def check_discovery_soundness(result: RunResult) -> bool:
    """No correct processor ever listed a correct processor as faulty."""
    return result.soundness_of_discovery()


def check_round_bound(result: RunResult, bound: int) -> bool:
    """The execution used at most the promised number of rounds."""
    return result.rounds <= bound


def check_message_bound(result: RunResult, max_entries: int,
                        slack: float = 1.0) -> bool:
    """The largest message carried at most ``slack × max_entries`` values.

    The theorems are ``O(·)`` statements; *slack* allows for the constant
    (the defaults in the benchmarks use 1.0 because the entry counts here are
    exact, not asymptotic).
    """
    return result.metrics.max_message_entries() <= max_entries * slack


def _assemble_verdict(agreement: bool, validity: Optional[bool],
                      discovery_sound: bool, rounds: int, max_entries: int,
                      decisions, initial_value,
                      round_bound: Optional[int],
                      message_bound: Optional[int],
                      slack: float) -> RunVerdict:
    """The shared verdict logic behind :func:`verify_run`/:func:`verify_report`."""
    problems: List[str] = []
    if not agreement:
        problems.append(
            f"agreement violated: decisions {dict(sorted(decisions.items()))}")
    if validity is False:
        problems.append(
            f"validity violated: source value {initial_value!r}, "
            f"decisions {dict(sorted(decisions.items()))}")
    if not discovery_sound:
        problems.append("a correct processor was listed as faulty")
    rounds_ok = None
    if round_bound is not None:
        rounds_ok = rounds <= round_bound
        if not rounds_ok:
            problems.append(f"used {rounds} rounds > bound {round_bound}")
    message_ok = None
    if message_bound is not None:
        message_ok = max_entries <= message_bound * slack
        if not message_ok:
            problems.append(
                f"largest message {max_entries} entries "
                f"> bound {message_bound}"
                + (f" (slack {slack})" if slack != 1.0 else ""))
    return RunVerdict(agreement=agreement, validity=validity,
                      discovery_sound=discovery_sound,
                      rounds_within_bound=rounds_ok,
                      message_within_bound=message_ok,
                      problems=tuple(problems))


def verify_run(result: RunResult, round_bound: Optional[int] = None,
               message_bound: Optional[int] = None,
               slack: float = 1.0) -> RunVerdict:
    """Run every applicable check and collect human-readable problems."""
    return _assemble_verdict(
        agreement=check_agreement(result),
        validity=check_validity(result),
        discovery_sound=check_discovery_soundness(result),
        rounds=result.rounds,
        max_entries=result.metrics.max_message_entries(),
        decisions=result.decisions,
        initial_value=result.config.initial_value,
        round_bound=round_bound, message_bound=message_bound, slack=slack)


def verify_report(report, round_bound: Optional[int] = None,
                  message_bound: Optional[int] = None,
                  slack: float = 1.0) -> RunVerdict:
    """:func:`verify_run` over a :class:`~repro.api.request.RunReport`.

    The report already carries the computed verdict ingredients (agreement,
    validity, discovery soundness, the metrics summary), so this works on
    deserialized reports without rebuilding a :class:`RunResult`.  *report*
    is duck-typed to avoid importing :mod:`repro.api` from the analysis
    layer.
    """
    return _assemble_verdict(
        agreement=report.agreement,
        validity=report.validity,
        discovery_sound=report.discovery_sound,
        rounds=report.rounds,
        max_entries=report.metrics["max_message_entries"],
        decisions=report.decisions,
        initial_value=report.initial_value,
        round_bound=round_bound, message_bound=message_bound, slack=slack)
