"""Verdicts on executed runs: agreement, validity, bound compliance.

Tests, benchmarks and the experiment harness all need the same checks, so
they live here rather than being re-derived ad hoc:

* :func:`check_agreement` / :func:`check_validity` — the two correctness
  conditions of the Byzantine agreement problem;
* :func:`check_round_bound`, :func:`check_message_bound` — a run stayed
  within the theorem's promises;
* :func:`verify_run` — all of the above combined into a :class:`RunVerdict`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..runtime.simulation import RunResult


@dataclass(frozen=True)
class RunVerdict:
    """The outcome of checking one run against the paper's guarantees."""

    agreement: bool
    validity: Optional[bool]
    discovery_sound: bool
    rounds_within_bound: Optional[bool]
    message_within_bound: Optional[bool]
    problems: tuple

    @property
    def ok(self) -> bool:
        return not self.problems


def check_agreement(result: RunResult) -> bool:
    """No two correct processors decided differently."""
    return result.agreement


def check_validity(result: RunResult) -> Optional[bool]:
    """If the source is correct, every correct processor decided its value."""
    return result.validity


def check_discovery_soundness(result: RunResult) -> bool:
    """No correct processor ever listed a correct processor as faulty."""
    return result.soundness_of_discovery()


def check_round_bound(result: RunResult, bound: int) -> bool:
    """The execution used at most the promised number of rounds."""
    return result.rounds <= bound


def check_message_bound(result: RunResult, max_entries: int,
                        slack: float = 1.0) -> bool:
    """The largest message carried at most ``slack × max_entries`` values.

    The theorems are ``O(·)`` statements; *slack* allows for the constant
    (the defaults in the benchmarks use 1.0 because the entry counts here are
    exact, not asymptotic).
    """
    return result.metrics.max_message_entries() <= max_entries * slack


def verify_run(result: RunResult, round_bound: Optional[int] = None,
               message_bound: Optional[int] = None) -> RunVerdict:
    """Run every applicable check and collect human-readable problems."""
    problems: List[str] = []
    agreement = check_agreement(result)
    if not agreement:
        problems.append(
            f"agreement violated: decisions {dict(sorted(result.decisions.items()))}")
    validity = check_validity(result)
    if validity is False:
        problems.append(
            f"validity violated: source value {result.config.initial_value!r}, "
            f"decisions {dict(sorted(result.decisions.items()))}")
    discovery_sound = check_discovery_soundness(result)
    if not discovery_sound:
        problems.append("a correct processor was listed as faulty")
    rounds_ok = None
    if round_bound is not None:
        rounds_ok = check_round_bound(result, round_bound)
        if not rounds_ok:
            problems.append(f"used {result.rounds} rounds > bound {round_bound}")
    message_ok = None
    if message_bound is not None:
        message_ok = check_message_bound(result, message_bound)
        if not message_ok:
            problems.append(
                f"largest message {result.metrics.max_message_entries()} entries "
                f"> bound {message_bound}")
    return RunVerdict(agreement=agreement, validity=validity,
                      discovery_sound=discovery_sound,
                      rounds_within_bound=rounds_ok,
                      message_within_bound=message_ok,
                      problems=tuple(problems))
