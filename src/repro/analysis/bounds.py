"""Closed-form bounds of Theorems 1–4, collected in one place.

The benchmark harness compares every *measured* quantity (rounds executed,
largest message, local computation units) against the corresponding bound
from this module, so the paper's tables can be regenerated as
"paper bound vs measured" rows.  Everything here is a pure function of
``(n, t, b)``; nothing simulates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from ..core.algorithm_a import (algorithm_a_max_message_entries, algorithm_a_resilience,
                                algorithm_a_rounds)
from ..core.algorithm_b import (algorithm_b_max_message_entries, algorithm_b_resilience,
                                algorithm_b_rounds)
from ..core.algorithm_c import (algorithm_c_max_message_entries, algorithm_c_resilience,
                                algorithm_c_rounds)
from ..core.exponential import (exponential_max_message_entries, exponential_resilience,
                                exponential_rounds)
from ..core.hybrid import hybrid_parameters, hybrid_rounds, hybrid_rounds_closed_form


@dataclass(frozen=True)
class TheoremBound:
    """The per-processor bounds one theorem promises for one parameterisation."""

    algorithm: str
    n: int
    t: int
    b: Optional[int]
    resilience_limit: int
    rounds: int
    max_message_entries: int
    local_computation: float

    def as_row(self) -> Dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "n": self.n,
            "t": self.t,
            "b": self.b if self.b is not None else "-",
            "resilience_limit": self.resilience_limit,
            "rounds_bound": self.rounds,
            "max_message_entries_bound": self.max_message_entries,
            "local_computation_bound": round(self.local_computation, 1),
        }


# -- local computation models (growth shapes, not constants) -----------------------

def exponential_local_computation(n: int, t: int) -> float:
    """The Exponential Algorithm touches every node of a ``(t+1)``-level tree."""
    total = 0.0
    size = 1.0
    for level in range(1, t + 2):
        total += size
        size *= max(1, n - level)
    return total


def algorithm_a_local_computation(n: int, t: int, b: int) -> float:
    """Theorem 2: ``O(n^{b+1}(t − 1)/(b − 2))`` local computation."""
    return float(n ** (b + 1)) * max(1, t - 1) / max(1, b - 2)


def algorithm_b_local_computation(n: int, t: int, b: int) -> float:
    """Theorem 3: ``O(n^{b+1}(t − 1)/(b − 1))`` local computation."""
    return float(n ** (b + 1)) * max(1, t - 1) / max(1, b - 1)


def algorithm_c_local_computation(n: int) -> float:
    """Theorem 4: ``O(n^{2.5})`` local computation."""
    return float(n) ** 2.5


def hybrid_local_computation(n: int, t: int, b: int) -> float:
    """The hybrid's local computation is dominated by its Algorithm A prefix."""
    params = hybrid_parameters(n, t, b)
    a_part = float(n ** (b + 1)) * max(1, len(params.a_blocks))
    b_part = float(n ** (b + 1)) * max(1, len(params.b_blocks))
    c_part = algorithm_c_local_computation(n) * max(1, params.c_rounds)
    return a_part + b_part + c_part


# -- per-theorem bound rows -------------------------------------------------------------

def exponential_bound(n: int, t: int) -> TheoremBound:
    """Section 3 (Proposition 1): the Exponential Algorithm."""
    return TheoremBound(
        algorithm="exponential", n=n, t=t, b=None,
        resilience_limit=exponential_resilience(n),
        rounds=exponential_rounds(t),
        max_message_entries=exponential_max_message_entries(n, t),
        local_computation=exponential_local_computation(n, t))


def theorem2_bound(n: int, t: int, b: int) -> TheoremBound:
    """Theorem 2: Algorithm A(b)."""
    return TheoremBound(
        algorithm=f"algorithm-a(b={b})", n=n, t=t, b=b,
        resilience_limit=algorithm_a_resilience(n),
        rounds=algorithm_a_rounds(t, b),
        max_message_entries=algorithm_a_max_message_entries(n, b),
        local_computation=algorithm_a_local_computation(n, t, b))


def theorem3_bound(n: int, t: int, b: int) -> TheoremBound:
    """Theorem 3: Algorithm B(b)."""
    return TheoremBound(
        algorithm=f"algorithm-b(b={b})", n=n, t=t, b=b,
        resilience_limit=algorithm_b_resilience(n),
        rounds=algorithm_b_rounds(t, b),
        max_message_entries=algorithm_b_max_message_entries(n, b),
        local_computation=algorithm_b_local_computation(n, t, b))


def theorem4_bound(n: int, t: int) -> TheoremBound:
    """Theorem 4: Algorithm C."""
    return TheoremBound(
        algorithm="algorithm-c", n=n, t=t, b=None,
        resilience_limit=algorithm_c_resilience(n),
        rounds=algorithm_c_rounds(t),
        max_message_entries=algorithm_c_max_message_entries(n),
        local_computation=algorithm_c_local_computation(n))


def theorem1_bound(n: int, t: int, b: int) -> TheoremBound:
    """Theorem 1 (Main): the hybrid algorithm."""
    return TheoremBound(
        algorithm=f"hybrid(b={b})", n=n, t=t, b=b,
        resilience_limit=algorithm_a_resilience(n),
        rounds=hybrid_rounds(n, t, b),
        max_message_entries=algorithm_a_max_message_entries(n, b),
        local_computation=hybrid_local_computation(n, t, b))


#: Registry names of the paper's own algorithms, mapped to their bound rows.
#: The baselines (psl, phase-king, dolev-strong) are deliberately absent —
#: the paper states no bounds for them, so measuring them yields comparison
#: rows without a verdict.
_BOUND_BUILDERS = {
    "exponential": lambda n, t, b: exponential_bound(n, t),
    "algorithm-a": lambda n, t, b: theorem2_bound(n, t, b),
    "algorithm-b": lambda n, t, b: theorem3_bound(n, t, b),
    "algorithm-c": lambda n, t, b: theorem4_bound(n, t),
    "hybrid": lambda n, t, b: theorem1_bound(n, t, b),
}


def protocol_bound(protocol: str, protocol_params: Optional[Dict] = None,
                   n: int = 0, t: int = 0) -> Optional[TheoremBound]:
    """The theorem bound row for a registered protocol name, or ``None``.

    Resolves the registry name used by :class:`~repro.api.request.RunRequest`
    to the matching theorem of this module — what lets mass empirical
    campaigns (:mod:`repro.stats`) confront measured rounds, message sizes,
    and computation with the paper's promises without hand-wiring the
    mapping at every call site.  Block-parameterised algorithms read ``b``
    from *protocol_params* (the registry marks it required, so a request
    that executed always carries it).  Baseline protocols have no bound in
    this paper and resolve to ``None``.
    """
    builder = _BOUND_BUILDERS.get(protocol)
    if builder is None:
        return None
    b = (protocol_params or {}).get("b")
    if protocol in ("algorithm-a", "algorithm-b", "hybrid") and b is None:
        raise ValueError(
            f"{protocol} bounds need the block parameter b in "
            f"protocol_params")
    return builder(n, t, b)


def main_theorem_round_formula(n: int, t: int, b: int) -> int:
    """The Main Theorem's closed-form round expression (for cross-checking the
    constructive count in :func:`repro.core.hybrid.hybrid_rounds`)."""
    return hybrid_rounds_closed_form(n, t, b)


def main_theorem_asymptotic(t: int, b: int) -> float:
    """``t + t/(b−2) + 2(b−1) + O(√t)`` — the headline asymptotic shape."""
    return t + t / max(1, b - 2) + 2 * (b - 1) + math.sqrt(max(0, t))


def resilience_table(n: int) -> Dict[str, int]:
    """Resilience thresholds of every algorithm for a given *n*."""
    return {
        "exponential": exponential_resilience(n),
        "algorithm-a": algorithm_a_resilience(n),
        "algorithm-b": algorithm_b_resilience(n),
        "algorithm-c": algorithm_c_resilience(n),
        "hybrid": algorithm_a_resilience(n),
    }
