"""Plain-text table rendering for benchmark output and EXPERIMENTS.md.

The paper's "evaluation" is a set of theorem statements; the harness
regenerates them as tables of *paper bound vs measured value*.  This module
renders lists of row dictionaries as aligned ASCII tables (for benchmark
stdout) and as GitHub-flavoured Markdown (for EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence


def _stringify(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value >= 1e6:
            return f"{value:.3e}"
        return f"{value:.2f}"
    return str(value)


def _columns(rows: Sequence[Dict[str, object]],
             columns: Optional[Sequence[str]]) -> List[str]:
    if columns is not None:
        return list(columns)
    seen: List[str] = []
    for row in rows:
        for key in row:
            if key not in seen:
                seen.append(key)
    return seen


def format_table(rows: Sequence[Dict[str, object]],
                 columns: Optional[Sequence[str]] = None,
                 title: Optional[str] = None) -> str:
    """Render rows as an aligned, pipe-separated ASCII table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    cols = _columns(rows, columns)
    cells = [[_stringify(row.get(col)) for col in cols] for row in rows]
    widths = [max(len(col), *(len(line[i]) for line in cells))
              for i, col in enumerate(cols)]
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(cols))
    rule = "-+-".join("-" * width for width in widths)
    body = "\n".join(" | ".join(line[i].ljust(widths[i]) for i in range(len(cols)))
                     for line in cells)
    parts = []
    if title:
        parts.append(title)
    parts.extend([header, rule, body])
    return "\n".join(parts)


def format_markdown_table(rows: Sequence[Dict[str, object]],
                          columns: Optional[Sequence[str]] = None) -> str:
    """Render rows as a GitHub-flavoured Markdown table."""
    if not rows:
        return "(no rows)"
    cols = _columns(rows, columns)
    header = "| " + " | ".join(cols) + " |"
    rule = "| " + " | ".join("---" for _ in cols) + " |"
    body = "\n".join(
        "| " + " | ".join(_stringify(row.get(col)) for col in cols) + " |"
        for row in rows)
    return "\n".join([header, rule, body])


def comparison_rows(pairs: Iterable, label_key: str = "label") -> List[Dict[str, object]]:
    """Flatten (label, bound, measured) triples into ratio-annotated rows."""
    rows: List[Dict[str, object]] = []
    for label, bound, measured in pairs:
        ratio = None
        if bound:
            ratio = measured / bound
        rows.append({label_key: label, "paper_bound": bound,
                     "measured": measured, "measured/bound": ratio})
    return rows
