"""Executable forms of the paper's lemmas, checkable on real execution state.

The proofs of Theorems 1–4 rest on a handful of structural statements about
the Information Gathering Trees of *correct* processors: the Correctness
Lemma (Lemma 1), the Frontier Lemma (Lemma 2), the Persistence Lemma
(Lemma 3) and the Hidden Fault Lemma (Lemma 4).  These functions evaluate
those statements on a collection of trees (one per correct processor), so the
test-suite can assert them on the trees produced by genuine adversarial
executions rather than trusting the implementation to mirror the proof.

All functions take ``trees``: a mapping ``{pid: InfoGatheringTree}`` holding
the round-``h`` trees of the correct processors, and the conversion to use
(``"resolve"`` or ``"resolve_prime"``).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Set

from ..core.resolve import resolve_all
from ..core.sequences import LabelSequence, ProcessorId
from ..core.tree import InfoGatheringTree
from ..core.values import Value, is_bottom


def converted_values(trees: Mapping[ProcessorId, InfoGatheringTree],
                     conversion: str, t: int
                     ) -> Dict[ProcessorId, Dict[LabelSequence, Value]]:
    """Apply the conversion to every correct processor's tree."""
    return {pid: resolve_all(tree, conversion, t) for pid, tree in trees.items()}


def common_nodes(trees: Mapping[ProcessorId, InfoGatheringTree],
                 conversion: str, t: int) -> Set[LabelSequence]:
    """The nodes that are *common*: every correct processor computes the same
    converted value for them (the paper's definition after data conversion)."""
    converted = converted_values(trees, conversion, t)
    if not converted:
        return set()
    any_tree = next(iter(trees.values()))
    common: Set[LabelSequence] = set()
    for seq in any_tree.sequences():
        values = {per_node.get(seq) for per_node in converted.values()}
        if len(values) == 1:
            common.add(seq)
    return common


def correctness_lemma_holds(trees: Mapping[ProcessorId, InfoGatheringTree],
                            correct: Iterable[ProcessorId],
                            conversion: str, t: int) -> bool:
    """Lemma 1: every node ``βq`` whose last label ``q`` is correct is common,
    and its converted value equals ``tree_p(βq)`` for every correct ``p``."""
    correct_set = set(correct)
    converted = converted_values(trees, conversion, t)
    any_tree = next(iter(trees.values()))
    for seq in any_tree.sequences():
        if seq[-1] not in correct_set:
            continue
        values = {per_node.get(seq) for per_node in converted.values()}
        if len(values) != 1:
            return False
        value = values.pop()
        if is_bottom(value):
            return False
        stored = {tree.value(seq) for tree in trees.values()}
        if stored != {value}:
            return False
    return True


def has_common_frontier(trees: Mapping[ProcessorId, InfoGatheringTree],
                        conversion: str, t: int) -> bool:
    """Every root-to-leaf path of the (shared-shape) tree contains a common node."""
    common = common_nodes(trees, conversion, t)
    any_tree = next(iter(trees.values()))
    depth = any_tree.num_levels
    for leaf in any_tree.level_sequences(depth):
        on_path = any(leaf[:length] in common for length in range(1, depth + 1))
        if not on_path:
            return False
    return True


def frontier_lemma_holds(trees: Mapping[ProcessorId, InfoGatheringTree],
                         conversion: str, t: int) -> bool:
    """Lemma 2: a common frontier forces the root to be common."""
    if not has_common_frontier(trees, conversion, t):
        return True  # vacuously
    any_tree = next(iter(trees.values()))
    return any_tree.root in common_nodes(trees, conversion, t)


def persistence_lemma_holds(trees: Mapping[ProcessorId, InfoGatheringTree],
                            conversion: str, t: int) -> Optional[bool]:
    """Lemma 3: if all correct processors share a preferred value (the root of
    their trees), the root converts to that value everywhere.

    Returns ``None`` when the hypothesis does not hold (nothing to check).
    """
    roots = {tree.root_value() for tree in trees.values()}
    if len(roots) != 1:
        return None
    shared = roots.pop()
    converted = converted_values(trees, conversion, t)
    any_tree = next(iter(trees.values()))
    return all(per_node[any_tree.root] == shared for per_node in converted.values())


def hidden_fault_lemma_holds(trees: Mapping[ProcessorId, InfoGatheringTree],
                             suspects: Mapping[ProcessorId, Set[ProcessorId]],
                             faulty: Iterable[ProcessorId],
                             correct: Iterable[ProcessorId],
                             t: int) -> bool:
    """Lemma 4 (checked per correct processor p and all-faulty internal ``αr``):
    if ``r ∉ L_p`` after its children were stored, then a majority value exists
    for ``αr`` and at least ``n − 2t + |L_p|`` of its children correspond to
    correct processors storing that value."""
    faulty_set = set(faulty)
    correct_set = set(correct)
    for pid, tree in trees.items():
        listed = suspects.get(pid, set())
        n = tree.n
        for level in range(1, tree.num_levels):
            for parent in tree.level_sequences(level):
                r = parent[-1]
                if not all(label in faulty_set for label in parent):
                    continue
                if r in listed:
                    continue
                children = tree.child_labels(parent)
                values = {child: tree.value(parent + (child,)) for child in children}
                from collections import Counter
                counter = Counter(values.values())
                majority, count = counter.most_common(1)[0]
                if count * 2 <= len(children):
                    return False
                supporters = sum(1 for child, value in values.items()
                                 if value == majority and child in correct_set)
                if supporters < n - 2 * t + len(listed):
                    return False
    return True
