"""Analytic bounds, trade-off curves, run verdicts, and table rendering."""

from __future__ import annotations

from .bounds import (TheoremBound, algorithm_a_local_computation,
                     algorithm_b_local_computation, algorithm_c_local_computation,
                     exponential_bound, exponential_local_computation,
                     hybrid_local_computation, main_theorem_asymptotic,
                     main_theorem_round_formula, protocol_bound,
                     resilience_table, theorem1_bound, theorem2_bound,
                     theorem3_bound, theorem4_bound)
from .checkers import (RunVerdict, check_agreement, check_discovery_soundness,
                       check_message_bound, check_round_bound, check_validity,
                       verify_report, verify_run)
from .coan_model import (CoanPoint, coan_curve, coan_local_computation,
                         coan_max_message_entries, coan_rounds)
from .reporting import comparison_rows, format_markdown_table, format_table
from .tradeoff import (TradeoffPoint, dominance_table, message_growth_curve,
                       tradeoff_curve)

__all__ = [
    "TheoremBound", "exponential_bound", "theorem1_bound", "theorem2_bound",
    "theorem3_bound", "theorem4_bound", "resilience_table",
    "exponential_local_computation", "algorithm_a_local_computation",
    "algorithm_b_local_computation", "algorithm_c_local_computation",
    "hybrid_local_computation", "main_theorem_round_formula",
    "main_theorem_asymptotic", "protocol_bound",
    "RunVerdict", "verify_run", "verify_report", "check_agreement", "check_validity",
    "check_discovery_soundness", "check_round_bound", "check_message_bound",
    "CoanPoint", "coan_curve", "coan_rounds", "coan_max_message_entries",
    "coan_local_computation",
    "TradeoffPoint", "tradeoff_curve", "dominance_table", "message_growth_curve",
    "format_table", "format_markdown_table", "comparison_rows",
]
