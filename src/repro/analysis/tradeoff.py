"""Rounds-versus-message-length trade-off curves (experiment E6).

The introduction's quantitative story is a three-way comparison at a fixed
``(n, t)`` as the message budget ``O(n^b)`` varies with ``b``:

* the Exponential Algorithm sits at one extreme (optimal ``t + 1`` rounds,
  exponential messages);
* Algorithms A and B trace a curve of ``t + O(t/b)`` rounds with ``O(n^b)``
  messages and polynomial local computation;
* Coan's families trace the *same* rounds/message curve but with exponential
  local computation;
* the hybrid dominates A at every ``b`` (same resilience, same message
  budget, fewer rounds).

This module produces those curves as plain rows so benchmarks, examples and
the EXPERIMENTS.md tables can all print the same figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..core.algorithm_a import (algorithm_a_max_message_entries, algorithm_a_resilience,
                                algorithm_a_rounds)
from ..core.algorithm_b import algorithm_b_resilience, algorithm_b_rounds
from ..core.exponential import exponential_max_message_entries, exponential_rounds
from ..core.hybrid import hybrid_rounds
from .bounds import (algorithm_a_local_computation, algorithm_b_local_computation,
                     exponential_local_computation, hybrid_local_computation)
from .coan_model import coan_local_computation


@dataclass(frozen=True)
class TradeoffPoint:
    """One row of the trade-off figure: every algorithm's cost at one ``b``."""

    b: int
    message_entries: int
    rounds_exponential: int
    rounds_algorithm_a: Optional[int]
    rounds_algorithm_b: Optional[int]
    rounds_hybrid: Optional[int]
    rounds_coan: Optional[int]
    computation_algorithm_a: Optional[float]
    computation_coan: Optional[float]

    def as_row(self) -> Dict[str, object]:
        return {
            "b": self.b,
            "message_entries(O(n^b))": self.message_entries,
            "rounds_exponential": self.rounds_exponential,
            "rounds_A": self.rounds_algorithm_a,
            "rounds_B": self.rounds_algorithm_b,
            "rounds_hybrid": self.rounds_hybrid,
            "rounds_coan": self.rounds_coan,
            "local_comp_A": self.computation_algorithm_a,
            "local_comp_coan": self.computation_coan,
        }


def tradeoff_curve(n: int, t: int, b_values: Iterable[int]) -> List[TradeoffPoint]:
    """The full trade-off figure for fixed ``(n, t)`` over a range of ``b``.

    Entries that are undefined for a given ``b`` (e.g. Algorithm A needs
    ``b > 2``; Algorithm B needs ``t ≤ ⌊(n−1)/4⌋``) are ``None`` — exactly the
    blank cells of the figure.
    """
    points: List[TradeoffPoint] = []
    for b in b_values:
        rounds_a = comp_a = rounds_hy = rounds_coan_value = None
        rounds_b_value = None
        if 2 < b <= t and t <= algorithm_a_resilience(n):
            rounds_a = algorithm_a_rounds(t, b)
            comp_a = algorithm_a_local_computation(n, t, b)
            rounds_coan_value = rounds_a
            if t >= 3:
                rounds_hy = hybrid_rounds(n, t, b)
        if 1 < b <= t and t <= algorithm_b_resilience(n):
            rounds_b_value = algorithm_b_rounds(t, b)
        points.append(TradeoffPoint(
            b=b,
            message_entries=algorithm_a_max_message_entries(n, b),
            rounds_exponential=exponential_rounds(t),
            rounds_algorithm_a=rounds_a,
            rounds_algorithm_b=rounds_b_value,
            rounds_hybrid=rounds_hy,
            rounds_coan=rounds_coan_value,
            computation_algorithm_a=comp_a,
            computation_coan=(coan_local_computation(n, t, b)
                              if rounds_coan_value is not None else None)))
    return points


def dominance_table(n: int, t: int, b_values: Iterable[int]) -> List[Dict[str, object]]:
    """Rows checking the claim that the hybrid dominates Algorithm A.

    For every feasible ``b`` the row records both round counts and the saving;
    the benchmark asserts the saving is never negative and is strictly
    positive for at least one ``b``.
    """
    rows: List[Dict[str, object]] = []
    for b in b_values:
        if not (2 < b <= t and t >= 3 and t <= algorithm_a_resilience(n)):
            continue
        rounds_a = algorithm_a_rounds(t, b)
        rounds_h = hybrid_rounds(n, t, b)
        rows.append({
            "n": n,
            "t": t,
            "b": b,
            "rounds_A": rounds_a,
            "rounds_hybrid": rounds_h,
            "saving": rounds_a - rounds_h,
            "exponential_rounds": exponential_rounds(t),
        })
    return rows


def message_growth_curve(n_values: Iterable[int], t_of_n, b: int) -> List[Dict[str, object]]:
    """Largest-message growth versus ``n`` at a fixed block parameter.

    ``t_of_n`` maps each ``n`` to the resilience used (e.g.
    :func:`repro.core.algorithm_a.algorithm_a_resilience`).
    """
    rows = []
    for n in n_values:
        t = t_of_n(n)
        rows.append({
            "n": n,
            "t": t,
            "b": b,
            "max_message_entries": algorithm_a_max_message_entries(n, b),
            "exponential_entries": exponential_max_message_entries(n, t),
        })
    return rows
