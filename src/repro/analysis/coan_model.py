"""An analytic cost model of Coan's algorithm families (the paper's foil).

Coan (PODC 1986; MIT PhD thesis 1987) gave families of agreement algorithms
that trade rounds for message length: for a message-size budget of ``O(n^b)``
bits the running time grows by roughly a ``t/(b − O(1))`` additive term.  The
paper's Algorithms A and B "obtain the same rounds to message length
trade-off as do Coan's families but do not require the exponential local
computation time (and space) of his algorithms."

Coan's construction has no artifact to run, so — per the substitution rule in
DESIGN.md — we model it analytically: the round and message-size curves are
taken to be identical to Algorithm A's (that is exactly the paper's claim),
while the local computation is exponential in ``t`` because his conversion
enumerates scenarios/runs of the underlying exponential protocol rather than
a tree of values.  The model exists so that the trade-off figure (experiment
E6) can plot "ours vs Coan" the way the introduction describes it; it is not
an executable reimplementation of Coan's protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.algorithm_a import algorithm_a_max_message_entries, algorithm_a_rounds
from .bounds import algorithm_a_local_computation


@dataclass(frozen=True)
class CoanPoint:
    """One point of the Coan-model trade-off curve."""

    b: int
    rounds: int
    max_message_entries: int
    local_computation: float

    def as_row(self) -> Dict[str, object]:
        return {
            "b": self.b,
            "rounds": self.rounds,
            "max_message_entries": self.max_message_entries,
            "local_computation": self.local_computation,
        }


def coan_rounds(t: int, b: int) -> int:
    """Rounds of the Coan family for message budget ``O(n^b)`` — by the
    paper's claim, the same trade-off as Algorithm A."""
    return algorithm_a_rounds(t, b)


def coan_max_message_entries(n: int, b: int) -> int:
    """Message-size budget of the Coan family: ``O(n^b)`` values."""
    return algorithm_a_max_message_entries(n, b)


def coan_local_computation(n: int, t: int, b: int) -> float:
    """Exponential local computation: the distinguishing cost of Coan's families.

    Modelled as the polynomial cost of our Algorithm A multiplied by a
    ``2^t`` scenario-enumeration factor.  Only the growth shape matters: the
    trade-off figure checks that this curve diverges from Algorithm A's as
    ``t`` grows while the rounds/message curves coincide.
    """
    return algorithm_a_local_computation(n, t, b) * (2.0 ** t)


def coan_curve(n: int, t: int, b_values) -> List[CoanPoint]:
    """The full Coan-model curve over a range of message-size budgets."""
    return [CoanPoint(b=b,
                      rounds=coan_rounds(t, b),
                      max_message_entries=coan_max_message_entries(n, b),
                      local_computation=coan_local_computation(n, t, b))
            for b in b_values]
