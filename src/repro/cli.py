"""Command-line interface: run single executions or regenerate experiment tables.

Two subcommands:

``repro run``
    Execute one agreement instance (protocol, parameters, adversary, faulty
    set) and print the outcome and costs.

``repro experiments``
    Regenerate the paper's tables/figures (the E1–E9 harness) at a chosen
    scale and print them; optionally restrict to a subset by experiment id.

Examples
--------
::

    python -m repro run --protocol hybrid --n 16 --t 5 --b 3 \\
        --adversary equivocating-source-allies --faults 5 --source-faulty
    python -m repro experiments --scale small --only E1 E8
"""

from __future__ import annotations

import argparse
import os
import sys
import warnings
from typing import List, Optional, Sequence

from .adversary import adversary_registry
from .analysis import format_table
from .baselines import DolevStrongSpec, PeaseShostakLamportSpec, PhaseKingSpec
from .core.algorithm_a import AlgorithmASpec
from .core.algorithm_b import AlgorithmBSpec
from .core.algorithm_c import AlgorithmCSpec
from .core.engine import ENGINES, batched_available, set_default_engine
from .core.exponential import ExponentialSpec
from .core.hybrid import HybridSpec
from .core.protocol import ProtocolConfig, ProtocolSpec
from .experiments import run_all_experiments
from .runtime.simulation import choose_faulty, run_agreement


def build_spec(name: str, b: int) -> ProtocolSpec:
    """Instantiate a protocol spec from its CLI name."""
    factories = {
        "exponential": lambda: ExponentialSpec(),
        "algorithm-a": lambda: AlgorithmASpec(b),
        "algorithm-b": lambda: AlgorithmBSpec(b),
        "algorithm-c": lambda: AlgorithmCSpec(),
        "hybrid": lambda: HybridSpec(b),
        "psl": lambda: PeaseShostakLamportSpec(),
        "phase-king": lambda: PhaseKingSpec(),
        "dolev-strong": lambda: DolevStrongSpec(),
    }
    if name not in factories:
        raise SystemExit(f"unknown protocol {name!r}; choose from {sorted(factories)}")
    return factories[name]()


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Shifting Gears (Bar-Noy, Dolev, Dwork, Strong) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one agreement instance")
    run.add_argument("--protocol", default="hybrid")
    run.add_argument("--n", type=int, default=16)
    run.add_argument("--t", type=int, default=5)
    run.add_argument("--b", type=int, default=3,
                     help="block parameter for algorithms A, B and the hybrid")
    run.add_argument("--value", type=int, default=1, help="the source's input value")
    run.add_argument("--faults", type=int, default=None,
                     help="number of faulty processors (default: t)")
    run.add_argument("--source-faulty", action="store_true")
    run.add_argument("--adversary", default="equivocating-source-allies",
                     choices=sorted(adversary_registry()))
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--engine", choices=ENGINES, default=None,
                     help="EIG engine: numpy (vectorized, needs numpy), "
                          "fast (default), or reference (the oracle)")
    run.add_argument("--batched", action="store_true",
                     help="step all correct processors per round as whole-run "
                          "2-D numpy kernels (EIG specs only; implies the "
                          "numpy engine, falls back to the per-processor "
                          "driver when unsupported)")

    experiments = sub.add_parser("experiments",
                                 help="regenerate the paper's tables and figures")
    experiments.add_argument("--scale", choices=("small", "paper"), default="small")
    experiments.add_argument("--only", nargs="*", default=None,
                             help="experiment ids to include (e.g. E1 E8)")
    experiments.add_argument("--engine", choices=ENGINES, default=None,
                             help="EIG engine used by every execution "
                                  "(propagated to parallel workers)")
    return parser


def _select_engine(engine: Optional[str]) -> None:
    """Install *engine* as the process default and export it for workers.

    Setting ``REPRO_EIG_ENGINE`` alongside the in-process default is what
    carries the choice into the parallel experiment runner's process pool
    (worker initialisers re-read the environment on spawn).
    """
    if engine is None:
        return
    try:
        set_default_engine(engine)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    os.environ["REPRO_EIG_ENGINE"] = engine


def _command_run(args: argparse.Namespace) -> int:
    batched = getattr(args, "batched", False)
    if batched and not batched_available():
        warnings.warn("--batched requires numpy, which is not installed; "
                      "running the per-processor driver instead",
                      RuntimeWarning, stacklevel=2)
        batched = False
    if batched and args.engine not in (None, "numpy"):
        # An explicit per-processor engine choice wins over --batched: the
        # user asked to run on that engine (e.g. to cross-check the oracle),
        # and the batched executor only exists on the numpy layer.
        warnings.warn(
            f"--batched runs on the numpy engine; honouring "
            f"--engine {args.engine} with the per-processor driver instead",
            RuntimeWarning, stacklevel=2)
        batched = False
    if batched and args.engine is None:
        # The batched executor runs on the numpy storage layer; selecting it
        # up front keeps any per-processor fallback pieces consistent.
        _select_engine("numpy")
    else:
        _select_engine(args.engine)
    spec = build_spec(args.protocol, args.b)
    config = ProtocolConfig(n=args.n, t=args.t, initial_value=args.value)
    fault_count = args.faults if args.faults is not None else args.t
    faulty = choose_faulty(args.n, fault_count, source_faulty=args.source_faulty)
    adversary = adversary_registry()[args.adversary]()
    result = run_agreement(spec, config, faulty, adversary, seed=args.seed,
                           batched=batched)
    print(format_table([result.summary()], title=f"{spec.name} on n={args.n}, "
                                                 f"t={args.t}, faulty={sorted(faulty)}"))
    print()
    print(f"decisions: {dict(sorted(result.decisions.items()))}")
    return 0 if result.succeeded else 1


def _command_experiments(args: argparse.Namespace) -> int:
    _select_engine(args.engine)
    tables = run_all_experiments(scale=args.scale)
    wanted = None
    if args.only:
        wanted = {token.upper() for token in args.only}
    for name, rows in tables.items():
        experiment_id = name.split("-")[0].upper()
        if wanted is not None and experiment_id not in wanted:
            continue
        print(format_table(rows, title=name))
        print()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parser().parse_args(list(argv) if argv is not None else None)
    if args.command == "run":
        return _command_run(args)
    return _command_experiments(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
