"""Command-line interface: declarative runs, sweeps, and experiment tables.

Three subcommands, all built on the :mod:`repro.api` façade:

``repro run``
    Execute one agreement instance described by flags (protocol, parameters,
    adversary, faulty set, engine).  ``--json`` emits the structured
    :class:`~repro.api.request.RunReport`; the exit code is 0 only when
    agreement held and validity held where it applied.

``repro sweep``
    Execute a JSON file of serialized :class:`~repro.api.request.RunRequest`
    objects through :func:`~repro.api.facade.execute_many` (parallel over the
    process pool, batched inside eligible EIG cells) and print a summary
    table or, with ``--json``, the full report list.

``repro experiments``
    Regenerate the paper's tables/figures (the E1–E9 harness) at a chosen
    scale and print them; optionally restrict to a subset by experiment id.

Examples
--------
::

    python -m repro run --protocol hybrid --n 16 --t 5 --b 3 \\
        --adversary equivocating-source-allies --faults 5 --source-faulty
    python -m repro run --protocol exponential --n 13 --t 4 --json
    python -m repro sweep requests.json --json
    python -m repro experiments --scale small --only E1 E8
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import warnings
from typing import List, Optional, Sequence

from .analysis import format_table
from .api import (ENGINE_CHOICES, RegistryError, RunReport, RunRequest,
                  adversary_names, execute, execute_many, protocol_names,
                  protocol_registry)
from .core.engine import ENGINES, set_default_engine
from .experiments import run_all_experiments
from .runtime.errors import ConfigurationError
from .runtime.simulation import choose_faulty


def build_request(protocol: str, n: int, t: int, b: int = 3,
                  value: object = 1, faults: Optional[int] = None,
                  source_faulty: bool = False, adversary: str = "benign",
                  seed: int = 0, engine: str = "auto") -> RunRequest:
    """Assemble the :class:`RunRequest` the ``run`` flags describe."""
    entry = protocol_registry().get(protocol)
    if entry is None:
        raise SystemExit(
            f"unknown protocol {protocol!r}; choose from "
            f"{sorted(protocol_names())}")
    params = {"b": b} if "b" in entry.schema else {}
    fault_count = faults if faults is not None else t
    faulty = choose_faulty(n, fault_count, source_faulty=source_faulty)
    return RunRequest(protocol=protocol, protocol_params=params, n=n, t=t,
                      initial_value=value, faulty=tuple(faulty),
                      adversary=adversary, seed=seed, engine=engine)


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Shifting Gears (Bar-Noy, Dolev, Dwork, Strong) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one agreement instance")
    run.add_argument("--protocol", default="hybrid",
                     choices=sorted(protocol_names()))
    run.add_argument("--n", type=int, default=16)
    run.add_argument("--t", type=int, default=5)
    run.add_argument("--b", type=int, default=3,
                     help="block parameter for algorithms A, B and the hybrid")
    run.add_argument("--value", type=int, default=1, help="the source's input value")
    run.add_argument("--faults", type=int, default=None,
                     help="number of faulty processors (default: t)")
    run.add_argument("--source-faulty", action="store_true")
    run.add_argument("--adversary", default="equivocating-source-allies",
                     choices=sorted(adversary_names()))
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--engine", choices=ENGINE_CHOICES, default="auto",
                     help="executor: auto (planner picks batched→numpy→fast "
                          "by eligibility), batched (whole-run 2-D kernels), "
                          "or a per-processor engine (numpy/fast/reference). "
                          "An explicit choice overrides REPRO_EIG_ENGINE "
                          "with a warning.")
    run.add_argument("--batched", action="store_true",
                     help="deprecated alias for --engine batched")
    run.add_argument("--json", action="store_true",
                     help="print the structured RunReport as JSON")

    sweep = sub.add_parser(
        "sweep", help="execute a JSON file of RunRequests in parallel")
    sweep.add_argument("requests", help="path to a JSON list of RunRequest "
                                        "objects (or {\"requests\": [...]})")
    sweep.add_argument("--serial", action="store_true",
                       help="run in-process instead of over the process pool")
    sweep.add_argument("--max-workers", type=int, default=None)
    sweep.add_argument("--json", action="store_true",
                       help="print the full RunReport list as JSON")

    experiments = sub.add_parser("experiments",
                                 help="regenerate the paper's tables and figures")
    experiments.add_argument("--scale", choices=("small", "paper"), default="small")
    experiments.add_argument("--only", nargs="*", default=None,
                             help="experiment ids to include (e.g. E1 E8)")
    experiments.add_argument("--engine", choices=ENGINES, default=None,
                             help="pin the ambient EIG engine for every "
                                  "execution (fast/reference disable "
                                  "batching; numpy keeps it); default lets "
                                  "the planner pick per cell")
    return parser


def _execute_or_exit(request: RunRequest) -> RunReport:
    try:
        return execute(request)
    except (RegistryError, ConfigurationError, ValueError) as exc:
        raise SystemExit(str(exc)) from None


def _command_run(args: argparse.Namespace) -> int:
    engine = args.engine
    if args.batched:
        if engine in ("auto", "numpy", "batched"):
            # Batched runs on the numpy storage layer, so --batched composes
            # with those; it IS the batched request.
            engine = "batched"
        else:
            warnings.warn(
                f"--batched is a deprecated alias for --engine batched; "
                f"honouring the explicit --engine {engine}", RuntimeWarning,
                stacklevel=2)
    request = build_request(args.protocol, args.n, args.t, b=args.b,
                            value=args.value, faults=args.faults,
                            source_faulty=args.source_faulty,
                            adversary=args.adversary, seed=args.seed,
                            engine=engine)
    report = _execute_or_exit(request)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(format_table([report.summary()],
                           title=f"{report.protocol} on n={args.n}, "
                                 f"t={args.t}, faulty={list(report.faulty)}"))
        print()
        print(f"decisions: {dict(sorted(report.decisions.items()))}")
        print(f"engine: {report.engine_resolved} (requested {report.engine})")
    return 0 if report.succeeded else 1


def _load_requests(path: str) -> List[RunRequest]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise SystemExit(f"cannot read {path}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise SystemExit(f"{path} is not valid JSON: {exc}") from None
    if isinstance(payload, dict):
        payload = payload.get("requests")
    if not isinstance(payload, list):
        raise SystemExit(
            f"{path} must hold a JSON list of RunRequest objects "
            f"(or an object with a \"requests\" list)")
    try:
        return [RunRequest.from_dict(item) for item in payload]
    except (RegistryError, ConfigurationError, TypeError, ValueError) as exc:
        raise SystemExit(f"invalid request in {path}: {exc}") from None


def _command_sweep(args: argparse.Namespace) -> int:
    requests = _load_requests(args.requests)
    if not requests:
        raise SystemExit(f"{args.requests} contains no requests")
    try:
        reports = execute_many(requests, parallel=not args.serial,
                               max_workers=args.max_workers)
    except (RegistryError, ConfigurationError, ValueError) as exc:
        raise SystemExit(str(exc)) from None
    if args.json:
        print(json.dumps([report.to_dict() for report in reports],
                         indent=2, sort_keys=True))
    else:
        rows = [report.summary() for report in reports]
        print(format_table(rows, title=f"sweep of {len(reports)} requests"))
    return 0 if all(report.succeeded for report in reports) else 1


def _select_ambient_engine(engine: Optional[str]) -> None:
    """Pin the ambient engine process-wide and export it for pool workers.

    Setting ``REPRO_EIG_ENGINE`` alongside the in-process default is what
    carries the choice into the parallel executor's process pool (worker
    initialisers re-read the environment on spawn).  The façade's ``auto``
    planner defers to this ambient choice: ``fast``/``reference`` also
    disable batched stepping, ``numpy`` keeps it for eligible cells.
    """
    if engine is None:
        return
    try:
        set_default_engine(engine)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    os.environ["REPRO_EIG_ENGINE"] = engine


def _command_experiments(args: argparse.Namespace) -> int:
    _select_ambient_engine(args.engine)
    tables = run_all_experiments(scale=args.scale)
    wanted = None
    if args.only:
        wanted = {token.upper() for token in args.only}
    for name, rows in tables.items():
        experiment_id = name.split("-")[0].upper()
        if wanted is not None and experiment_id not in wanted:
            continue
        print(format_table(rows, title=name))
        print()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parser().parse_args(list(argv) if argv is not None else None)
    if args.command == "run":
        return _command_run(args)
    if args.command == "sweep":
        return _command_sweep(args)
    return _command_experiments(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
