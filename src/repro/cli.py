"""Command-line interface: declarative runs, sweeps, serving, and tables.

Eight subcommands, all built on the :mod:`repro.api` façade:

``repro run``
    Execute one agreement instance described by flags (protocol, parameters,
    adversary, faulty set, engine).  ``--json`` emits the structured
    :class:`~repro.api.request.RunReport`; the exit code is 0 only when
    agreement held and validity held where it applied.

``repro sweep``
    Execute a JSON file of serialized :class:`~repro.api.request.RunRequest`
    objects (or a whole :class:`~repro.api.request.SweepSpec`; ``-`` reads
    stdin) on a chosen executor backend — ``--executor
    {serial,pool,sharded,supervised}`` — with optional durability:
    ``--checkpoint out.jsonl`` appends one JSON line per completed request
    as it finishes (header created atomically; ``--fsync`` upgrades flush
    to fsync per line), and ``--resume`` replays the log after a crash,
    skipping what already completed.  The supervised backend
    (``--max-attempts`` / ``--deadline`` imply it) adds worker deadlines,
    seeded retry/backoff, and the sharded→batched→pool→serial degradation
    ladder; ``--chaos policy.json`` injects infrastructure faults for
    resilience testing.  Prints a summary table or, with ``--json``, the
    full report list.

``repro validate``
    Dry-run the registry/planner checks for a request file (``-`` for
    stdin): every request is resolved and planned — reporting the engine the
    planner would use and whether the sharded backend could split it —
    without executing anything.  ``--all-registered`` validates the full
    protocol × adversary cross-product instead of a file, clamping ``t``
    per protocol to its resilience envelope, so a registry entry that
    stopped resolving fails CI before any experiment does.

``repro lint``
    Statically audit the source tree (:mod:`repro.lint`): an AST rule
    engine enforcing the determinism and contract invariants the stack
    rests on — no ambient RNG or wall clocks in the engine path, sorted
    filesystem scans, no set-iteration order dependence, registry schemas
    in sync with factory constructors, ``to_dict``/``from_dict`` parity,
    and fail-stop error discipline.  Findings are suppressed inline with
    ``# repro-lint: waive[rule-id] -- reason`` (the reason is mandatory)
    or grandfathered via ``--baseline``.  Exit 0 clean, 1 findings, 2
    internal error.

``repro serve``
    Run the crash-safe agreement service (:mod:`repro.serve`): an asyncio
    HTTP/JSON daemon accepting single requests (``POST /run``) and whole
    sweeps (``POST /sweep``, streamed as NDJSON), backed by a
    content-addressed result cache (``--cache-dir``), a write-ahead journal
    (``--journal``) that makes accepted work survive ``kill -9``, a bounded
    work queue (``--max-queue``; overflow answers 429 with Retry-After),
    and ``/healthz`` / ``/readyz`` / ``/metrics`` endpoints.  On restart
    with the same journal the service replays it: completed runs warm the
    cache, interrupted ones re-execute.

``repro search``
    Hunt a protocol/adversary grid for extremal executions
    (:mod:`repro.search`): safety violations (``--objective
    agreement_violation``) or cost extremes (``max_rounds`` /
    ``max_messages`` / ``max_units``), with a seeded random or annealing
    strategy, greedy counterexample minimization, and ``--pin`` to freeze a
    found violation as a regression fixture.  Exits 3 exactly when a
    violation was found, so CI can assert either outcome.

``repro mc``
    Stream a Monte-Carlo verification campaign (:mod:`repro.stats`): a grid
    of (protocol × cell × adversary) points, ``--trials`` seeded executions
    each with randomized fault placement, aggregated in constant space and
    confronted with the paper's theorem bounds — Wilson confidence
    intervals on agreement/validity failure rates plus observed-vs-bound
    rows for rounds, message size, and local computation.  ``--checkpoint``
    makes the campaign crash-durable (one cumulative snapshot per chunk)
    and ``--resume`` continues it bit-identically after a kill.  Exit code
    0 means the campaign completed and every observation stayed within the
    paper's guarantees; 1 means a theorem was contradicted; 2 means the
    campaign is incomplete (``--max-chunks`` slice).

``repro experiments``
    Regenerate the paper's tables/figures (the E1–E9 harness) at a chosen
    scale and print them; optionally restrict to a subset by experiment id.

Examples
--------
::

    python -m repro run --protocol hybrid --n 16 --t 5 --b 3 \\
        --adversary equivocating-source-allies --faults 5 --source-faulty
    python -m repro run --protocol exponential --n 13 --t 4 --json
    python -m repro sweep requests.json --json
    python -m repro sweep requests.json --checkpoint out.jsonl --resume
    repro-requests | python -m repro sweep - --executor sharded
    python -m repro sweep requests.json --executor supervised --deadline 30
    python -m repro sweep requests.json --chaos chaos.json --json
    python -m repro sweep requests.json --checkpoint out.jsonl --compact
    python -m repro validate requests.json
    python -m repro validate --all-registered
    python -m repro lint
    python -m repro lint --format json --baseline lint_baseline.json
    python -m repro lint src/repro --rules determinism/set-iteration
    python -m repro serve --port 8484 --cache-dir cache/ \\
        --journal serve.jsonl
    python -m repro search --objective agreement_violation \\
        --cell 3,1 --allow-unsafe --budget 200 --pin
    python -m repro search --objective max_messages --cell 9,2 \\
        --strategy anneal --budget 100
    python -m repro mc --protocol exponential algorithm-a --cell 13,3 \\
        --adversary two-faced consistent-liar --trials 1000
    python -m repro mc --protocol hybrid --cell 16,5 --trials 100000 \\
        --executor pool --checkpoint mc.jsonl --resume --json
    python -m repro experiments --scale small --only E1 E8
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import warnings
from typing import List, Optional, Sequence

from .analysis import format_table
from .api import (ENGINE_CHOICES, RegistryError, RunReport, RunRequest,
                  SweepSpec, adversary_names, batched_ineligibility,
                  build_executor, execute, executor_names, plan_run,
                  plan_shardable, protocol_names, protocol_registry,
                  run_sweep)
from .core.engine import ENGINES, set_default_engine
from .experiments import run_all_experiments
from .runtime.errors import ConfigurationError
from .runtime.simulation import choose_faulty


def build_request(protocol: str, n: int, t: int, b: int = 3,
                  value: object = 1, faults: Optional[int] = None,
                  source_faulty: bool = False, adversary: str = "benign",
                  seed: int = 0, engine: str = "auto") -> RunRequest:
    """Assemble the :class:`RunRequest` the ``run`` flags describe."""
    entry = protocol_registry().get(protocol)
    if entry is None:
        raise SystemExit(
            f"unknown protocol {protocol!r}; choose from "
            f"{sorted(protocol_names())}")
    params = {"b": b} if "b" in entry.schema else {}
    fault_count = faults if faults is not None else t
    faulty = choose_faulty(n, fault_count, source_faulty=source_faulty)
    return RunRequest(protocol=protocol, protocol_params=params, n=n, t=t,
                      initial_value=value, faulty=tuple(faulty),
                      adversary=adversary, seed=seed, engine=engine)


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Shifting Gears (Bar-Noy, Dolev, Dwork, Strong) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one agreement instance")
    run.add_argument("--protocol", default="hybrid",
                     choices=sorted(protocol_names()))
    run.add_argument("--n", type=int, default=16)
    run.add_argument("--t", type=int, default=5)
    run.add_argument("--b", type=int, default=3,
                     help="block parameter for algorithms A, B and the hybrid")
    run.add_argument("--value", type=int, default=1, help="the source's input value")
    run.add_argument("--faults", type=int, default=None,
                     help="number of faulty processors (default: t)")
    run.add_argument("--source-faulty", action="store_true")
    run.add_argument("--adversary", default="equivocating-source-allies",
                     choices=sorted(adversary_names()))
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--engine", choices=ENGINE_CHOICES, default="auto",
                     help="executor: auto (planner picks batched→numpy→fast "
                          "by eligibility), batched (whole-run 2-D kernels), "
                          "or a per-processor engine (numpy/fast/reference). "
                          "An explicit choice overrides REPRO_EIG_ENGINE "
                          "with a warning.")
    run.add_argument("--batched", action="store_true",
                     help="deprecated alias for --engine batched")
    run.add_argument("--json", action="store_true",
                     help="print the structured RunReport as JSON")

    sweep = sub.add_parser(
        "sweep", help="execute a JSON file of RunRequests on an executor")
    sweep.add_argument("requests",
                       help="path to a JSON list of RunRequest objects, a "
                            "{\"requests\": [...]} object, or a full "
                            "SweepSpec; '-' reads the file from stdin")
    sweep.add_argument("--executor", choices=sorted(executor_names()),
                       default=None,
                       help="execution backend (default: the sweep file's "
                            "choice, else the process pool); 'sharded' "
                            "row-splits each eligible run across worker "
                            "processes")
    sweep.add_argument("--serial", action="store_true",
                       help="alias for --executor serial")
    sweep.add_argument("--max-workers", type=int, default=None,
                       help="worker processes for the pool executor")
    sweep.add_argument("--shards", type=int, default=None,
                       help="worker processes per run for the sharded or "
                            "supervised executor (default: the CPU count)")
    sweep.add_argument("--max-attempts", type=int, default=None,
                       help="retries per ladder rung for the supervised "
                            "executor (default 3; implies --executor "
                            "supervised)")
    sweep.add_argument("--deadline", type=float, default=None,
                       help="seconds before a silent worker counts as hung, "
                            "for the supervised or sharded executor "
                            "(implies --executor supervised)")
    sweep.add_argument("--chaos", metavar="POLICY.json", default=None,
                       help="inject the infrastructure faults of a chaos "
                            "policy file (worker kills/hangs, pipe faults, "
                            "checkpoint write failures) — resilience "
                            "testing aid")
    sweep.add_argument("--checkpoint", metavar="PATH", default=None,
                       help="append one JSON line per completed request to "
                            "PATH as it finishes (crash-durable JSONL log; "
                            "the header is created atomically)")
    sweep.add_argument("--resume", action="store_true",
                       help="replay an existing --checkpoint log first and "
                            "skip its completed requests")
    sweep.add_argument("--fsync", action="store_true",
                       help="fsync the checkpoint after every append "
                            "(power-loss durability; flush-only default "
                            "survives process death)")
    sweep.add_argument("--compact", action="store_true",
                       help="rewrite the --checkpoint log in place — drop "
                            "superseded duplicate completions, repair a "
                            "torn tail — and exit without running anything")
    sweep.add_argument("--json", action="store_true",
                       help="print the full RunReport list as JSON")

    serve = sub.add_parser(
        "serve", help="run the HTTP agreement service (cache + journal)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="interface to bind (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8484,
                       help="TCP port (0 picks a free one; default 8484)")
    serve.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="directory for the content-addressed result "
                            "cache (one <sha256>.json per distinct "
                            "request); omitted = in-memory only")
    serve.add_argument("--cache-max-entries", type=int, default=None,
                       metavar="N",
                       help="bound the result cache at N entries with "
                            "least-recently-used eviction (evicted disk "
                            "entries are unlinked); omitted = unbounded")
    serve.add_argument("--journal", metavar="PATH", default=None,
                       help="write-ahead journal: accepted requests are "
                            "logged before execution and replayed on "
                            "restart, so kill -9 never loses accepted work")
    serve.add_argument("--max-queue", type=int, default=64,
                       help="bound on queued jobs; a full queue answers "
                            "429 with Retry-After (default 64)")
    serve.add_argument("--workers", type=int, default=2,
                       help="concurrent executions (default 2)")
    serve.add_argument("--drain-deadline", type=float, default=10.0,
                       help="seconds a graceful shutdown waits for queued "
                            "work before checkpointing the rest "
                            "(default 10)")
    serve.add_argument("--fsync", action="store_true",
                       help="fsync every journal append (power-loss "
                            "durability; flush-only default survives "
                            "process death)")
    serve.add_argument("--chaos", metavar="POLICY.json", default=None,
                       help="inject service-level infrastructure faults "
                            "(cache-write-fail, journal-torn-write, "
                            "serve-worker-death) — resilience testing aid")

    validate = sub.add_parser(
        "validate", help="dry-run registry/planner checks for a request file")
    validate.add_argument("requests", nargs="?", default=None,
                          help="path to a JSON request file ('-' for "
                               "stdin); omit with --all-registered")
    validate.add_argument("--all-registered", action="store_true",
                          help="validate the full protocol x adversary "
                               "cross-product instead of a file, clamping "
                               "t per protocol to its resilience envelope")
    validate.add_argument("--n", type=int, default=16,
                          help="instance size for --all-registered "
                               "(default 16)")
    validate.add_argument("--t", type=int, default=5,
                          help="fault budget ceiling for --all-registered; "
                               "clamped down per protocol (default 5)")
    validate.add_argument("--json", action="store_true",
                          help="print the per-request verdicts as JSON")

    lint = sub.add_parser(
        "lint", help="statically audit determinism/contract invariants")
    lint.add_argument("paths", nargs="*", default=None,
                      help="directories to lint (default: the installed "
                           "repro package source)")
    lint.add_argument("--format", choices=("text", "json"), default="text",
                      help="report format (default text)")
    lint.add_argument("--baseline", metavar="PATH", default=None,
                      help="JSON baseline of grandfathered findings; "
                           "entries match on (rule, path, message)")
    lint.add_argument("--write-baseline", action="store_true",
                      help="write the current unwaived findings to "
                           "--baseline and exit 0")
    lint.add_argument("--rules", nargs="+", default=None, metavar="RULE",
                      help="run only these rule ids (default: all)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print every registered rule id and exit")
    lint.add_argument("--verbose", action="store_true",
                      help="also show waived and baselined findings")

    search = sub.add_parser(
        "search", help="hunt a protocol/adversary grid for extremal runs")
    # Objective names are a closed set; import locally so `repro run` does
    # not pay for the search package at parse time.
    from .search import STRATEGIES, objective_names
    search.add_argument("--objective", choices=objective_names(),
                        default="agreement_violation",
                        help="what to hunt: a safety violation, or the "
                             "costliest run (rounds/messages/units)")
    search.add_argument("--protocol", nargs="+", default=["exponential"],
                        metavar="NAME", help="protocols to draw cells from")
    search.add_argument("--cell", nargs="+", default=["7,2"], metavar="N,T",
                        help="instance sizes, each as n,t (e.g. --cell 7,2 "
                             "9,2); pass an under-resilient cell such as "
                             "3,1 together with --allow-unsafe")
    search.add_argument("--adversary", nargs="*", default=None,
                        metavar="NAME",
                        help="adversaries to draw from (default: every "
                             "registered one)")
    search.add_argument("--exclude", nargs="*", default=None, metavar="NAME",
                        help="adversaries to leave out (e.g. "
                             "transient-corruption, whose state flips on "
                             "correct processors sit outside the Byzantine "
                             "model the n ≥ 3t+1 theorems cover)")
    search.add_argument("--strategy", choices=STRATEGIES, default="random")
    search.add_argument("--budget", type=int, default=200,
                        help="number of executions the search may spend")
    search.add_argument("--sweep-seed", type=int, default=0,
                        help="master seed: candidate sampling and every "
                             "per-candidate seed derive from it")
    search.add_argument("--allow-unsafe", action="store_true",
                        help="permit under-resilient cells (n < 3t + 1)")
    search.add_argument("--exhaustive", action="store_true",
                        help="spend the whole budget even after a violation")
    search.add_argument("--no-minimize", action="store_true",
                        help="report the raw hit without shrinking it")
    search.add_argument("--pin", metavar="DIR", nargs="?", default=None,
                        const=os.path.join("tests", "pinned_scenarios"),
                        help="write the minimized counterexample as a JSON "
                             "regression fixture into DIR (default: "
                             "tests/pinned_scenarios)")
    search.add_argument("--executor", choices=sorted(executor_names()),
                        default="serial",
                        help="backend for candidate evaluation (candidates "
                             "are independent, so 'pool' parallelizes)")
    search.add_argument("--json", action="store_true",
                        help="print the structured search result as JSON")

    mc = sub.add_parser(
        "mc", help="stream a Monte-Carlo verification campaign")
    mc.add_argument("--spec", metavar="SPEC.json", default=None,
                    help="run a serialized McSpec file ('-' reads stdin); "
                         "overrides the grid flags below")
    mc.add_argument("--protocol", nargs="+", default=["exponential"],
                    metavar="NAME", help="protocols to draw cells from")
    mc.add_argument("--cell", nargs="+", default=["7,2"], metavar="N,T",
                    help="instance sizes, each as n,t (e.g. --cell 7,2 "
                         "13,3)")
    mc.add_argument("--adversary", nargs="+", default=["two-faced"],
                    metavar="NAME",
                    help="adversaries to pair with every protocol/cell "
                         "(default: two-faced)")
    mc.add_argument("--trials", type=int, default=1000,
                    help="seeded trials per grid cell (default 1000)")
    mc.add_argument("--b", type=int, default=3,
                    help="block parameter for algorithms A, B and the "
                         "hybrid")
    mc.add_argument("--faults", type=int, default=None,
                    help="faulty processors per trial (default: t)")
    mc.add_argument("--source-faulty", choices=("vary", "always", "never"),
                    default="vary",
                    help="source placement per trial: sampled like any "
                         "processor (vary, default), always faulty, or "
                         "never faulty")
    mc.add_argument("--sweep-seed", type=int, default=0,
                    help="master seed: every trial's run seed and fault "
                         "placement derive from it positionally")
    mc.add_argument("--executor", choices=sorted(executor_names()),
                    default="serial",
                    help="execution backend (trials are independent, so "
                         "'pool' parallelizes)")
    mc.add_argument("--max-workers", type=int, default=None,
                    help="worker processes for the pool executor")
    mc.add_argument("--chunk-size", type=int, default=256,
                    help="trials aggregated (and checkpointed) per chunk — "
                         "the only per-run buffer, so memory stays flat "
                         "(default 256)")
    mc.add_argument("--checkpoint", metavar="PATH", default=None,
                    help="append one cumulative state snapshot per chunk "
                         "to PATH (crash-durable JSONL; header created "
                         "atomically and pinned to this campaign's digest)")
    mc.add_argument("--resume", action="store_true",
                    help="continue an interrupted --checkpoint campaign "
                         "from its last intact snapshot (bit-identical to "
                         "an uninterrupted run)")
    mc.add_argument("--max-chunks", type=int, default=None,
                    help="execute at most this many chunks this invocation "
                         "(slice long campaigns; exit 2 until complete)")
    mc.add_argument("--allow-unsafe", action="store_true",
                    help="permit under-resilient cells (no guarantees "
                         "claimed there, so no hard verdict either)")
    mc.add_argument("--confidence", type=float, default=0.95,
                    choices=(0.90, 0.95, 0.99),
                    help="Wilson interval confidence level (default 0.95)")
    mc.add_argument("--json", action="store_true",
                    help="print the full machine-readable report as JSON")

    experiments = sub.add_parser("experiments",
                                 help="regenerate the paper's tables and figures")
    experiments.add_argument("--scale", choices=("small", "paper"), default="small")
    experiments.add_argument("--only", nargs="*", default=None,
                             help="experiment ids to include (e.g. E1 E8)")
    experiments.add_argument("--engine", choices=ENGINES, default=None,
                             help="pin the ambient EIG engine for every "
                                  "execution (fast/reference disable "
                                  "batching; numpy keeps it); default lets "
                                  "the planner pick per cell")
    return parser


def _execute_or_exit(request: RunRequest) -> RunReport:
    try:
        return execute(request)
    except (RegistryError, ConfigurationError, ValueError) as exc:
        raise SystemExit(str(exc)) from None


def _command_run(args: argparse.Namespace) -> int:
    engine = args.engine
    if args.batched:
        if engine in ("auto", "numpy", "batched"):
            # Batched runs on the numpy storage layer, so --batched composes
            # with those; it IS the batched request.
            engine = "batched"
        else:
            warnings.warn(
                f"--batched is a deprecated alias for --engine batched; "
                f"honouring the explicit --engine {engine}", RuntimeWarning,
                stacklevel=2)
    request = build_request(args.protocol, args.n, args.t, b=args.b,
                            value=args.value, faults=args.faults,
                            source_faulty=args.source_faulty,
                            adversary=args.adversary, seed=args.seed,
                            engine=engine)
    report = _execute_or_exit(request)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(format_table([report.summary()],
                           title=f"{report.protocol} on n={args.n}, "
                                 f"t={args.t}, faulty={list(report.faulty)}"))
        print()
        print(f"decisions: {dict(sorted(report.decisions.items()))}")
        print(f"engine: {report.engine_resolved} (requested {report.engine})")
    return 0 if report.succeeded else 1


#: Keys that mark a {"requests": [...]} payload as a full SweepSpec.
_SWEEP_KEYS = ("executor", "executor_params", "seed_policy", "sweep_seed")


def _read_payload(path: str) -> object:
    """The parsed JSON payload of *path*, with ``-`` reading stdin."""
    try:
        if path == "-":
            text = sys.stdin.read()
        else:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
    except OSError as exc:
        raise SystemExit(f"cannot read {path}: {exc}") from None
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        source = "stdin" if path == "-" else path
        raise SystemExit(f"{source} is not valid JSON: {exc}") from None


def _parse_request_items(payload: object, source: str) -> List[object]:
    """The raw request dicts of a payload (list, or dict with a list)."""
    if isinstance(payload, dict):
        payload = payload.get("requests")
    if not isinstance(payload, list):
        raise SystemExit(
            f"{source} must hold a JSON list of RunRequest objects "
            f"(or an object with a \"requests\" list)")
    return payload


def _load_sweep(path: str) -> SweepSpec:
    """A :class:`SweepSpec` from *path*: a request list or a full spec."""
    source = "stdin" if path == "-" else path
    payload = _read_payload(path)
    try:
        if isinstance(payload, dict) and any(key in payload
                                             for key in _SWEEP_KEYS):
            return SweepSpec.from_dict(payload)
        items = _parse_request_items(payload, source)
        return SweepSpec(
            requests=tuple(RunRequest.from_dict(item) for item in items))
    except (RegistryError, ConfigurationError, TypeError, ValueError) as exc:
        raise SystemExit(f"invalid request in {source}: {exc}") from None


def _load_requests(path: str) -> List[RunRequest]:
    source = "stdin" if path == "-" else path
    items = _parse_request_items(_read_payload(path), source)
    try:
        return [RunRequest.from_dict(item) for item in items]
    except (RegistryError, ConfigurationError, TypeError, ValueError) as exc:
        raise SystemExit(f"invalid request in {source}: {exc}") from None


def _sweep_executor(args: argparse.Namespace, spec: SweepSpec):
    """The executor the flags select, or ``None`` to use the spec's own.

    A bare parameter flag implies its backend (``--shards`` → sharded,
    ``--max-workers`` → pool); a parameter flag naming a *different*
    backend is an error rather than a silently dropped option.
    """
    name = args.executor
    if name is None and args.serial:
        name = "serial"
    if name is None and (args.max_attempts is not None
                         or args.deadline is not None):
        name = "supervised"
    if name is None and args.shards is not None:
        name = "sharded"
    if name is None and args.max_workers is not None:
        name = "pool"
    if args.shards is not None and name not in ("sharded", "supervised"):
        raise SystemExit(
            f"--shards applies to the sharded or supervised executor, but "
            f"the sweep runs on {name!r}; drop the flag or pass "
            f"--executor sharded")
    if args.max_workers is not None and name != "pool":
        raise SystemExit(
            f"--max-workers applies to the pool executor, but the sweep "
            f"runs on {name!r}; drop the flag or pass --executor pool")
    if args.max_attempts is not None and name != "supervised":
        raise SystemExit(
            f"--max-attempts applies to the supervised executor, but the "
            f"sweep runs on {name!r}; drop the flag or pass "
            f"--executor supervised")
    if args.deadline is not None and name not in ("supervised", "sharded"):
        raise SystemExit(
            f"--deadline applies to the supervised or sharded executor, "
            f"but the sweep runs on {name!r}; drop the flag or pass "
            f"--executor supervised")
    if name is None:
        return None  # defer to the sweep file's executor/executor_params
    params = {}
    if name == "pool" and args.max_workers is not None:
        params["max_workers"] = args.max_workers
    if name in ("sharded", "supervised") and args.shards is not None:
        params["shards"] = args.shards
    if name in ("sharded", "supervised") and args.deadline is not None:
        params["deadline"] = args.deadline
    if name == "supervised" and args.max_attempts is not None:
        params["max_attempts"] = args.max_attempts
    return build_executor(name, params)


def _command_sweep(args: argparse.Namespace) -> int:
    spec = _load_sweep(args.requests)
    if not spec.requests:
        raise SystemExit(f"{args.requests} contains no requests")
    if args.resume and not args.checkpoint:
        raise SystemExit("--resume needs --checkpoint pointing at the log "
                         "of the interrupted sweep")
    if args.fsync and not args.checkpoint:
        raise SystemExit("--fsync needs --checkpoint (it controls how "
                         "checkpoint appends are made durable)")
    if args.compact:
        if not args.checkpoint:
            raise SystemExit("--compact needs --checkpoint pointing at the "
                             "log to rewrite")
        from .api.sweep import compact_checkpoint
        try:
            summary = compact_checkpoint(args.checkpoint, spec)
        except (RegistryError, ConfigurationError) as exc:
            raise SystemExit(str(exc)) from None
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            print(f"compacted {args.checkpoint}: "
                  f"{summary['completed']} completion(s) kept, "
                  f"{summary['duplicates_dropped']} duplicate(s) dropped, "
                  f"torn tail "
                  f"{'repaired' if summary['torn_tail_repaired'] else 'absent'}")
        return 0
    chaos = None
    if args.chaos is not None:
        from .runtime.chaos import ChaosPolicy
        try:
            chaos = ChaosPolicy.from_json_file(args.chaos)
        except ConfigurationError as exc:
            raise SystemExit(str(exc)) from None
    try:
        reports = run_sweep(spec, checkpoint=args.checkpoint,
                            resume=args.resume,
                            executor=_sweep_executor(args, spec),
                            fsync=args.fsync, chaos=chaos)
    except (RegistryError, ConfigurationError, ValueError) as exc:
        raise SystemExit(str(exc)) from None
    if args.json:
        print(json.dumps([report.to_dict() for report in reports],
                         indent=2, sort_keys=True))
    else:
        rows = [report.summary() for report in reports]
        print(format_table(rows, title=f"sweep of {len(reports)} requests"))
    return 0 if all(report.succeeded for report in reports) else 1


def _command_serve(args: argparse.Namespace) -> int:
    """Run the HTTP agreement service until SIGTERM/SIGINT."""
    from .serve import (AgreementService, HttpFrontend, ResultCache,
                        ServeJournal)
    chaos = None
    if args.chaos is not None:
        from .runtime.chaos import ChaosPolicy
        try:
            chaos = ChaosPolicy.from_json_file(args.chaos)
        except ConfigurationError as exc:
            raise SystemExit(str(exc)) from None
    cache = ResultCache(args.cache_dir, max_entries=args.cache_max_entries)
    journal = (ServeJournal(args.journal, fsync=args.fsync)
               if args.journal else None)
    service = AgreementService(cache=cache, journal=journal)
    try:
        frontend = HttpFrontend(service, host=args.host, port=args.port,
                                max_queue=args.max_queue,
                                workers=args.workers,
                                drain_deadline=args.drain_deadline,
                                chaos=chaos)
    except (RegistryError, ConfigurationError, ValueError) as exc:
        raise SystemExit(str(exc)) from None
    print(f"repro serve on http://{args.host}:{args.port} "
          f"(cache: {args.cache_dir or 'memory'}, "
          f"journal: {args.journal or 'none'})", file=sys.stderr)
    try:
        frontend.run()
    except (RegistryError, ConfigurationError, OSError) as exc:
        raise SystemExit(str(exc)) from None
    except KeyboardInterrupt:
        pass  # the signal handler already drained; a second ^C lands here
    if service.last_recovery:
        print(f"recovery: {service.last_recovery}", file=sys.stderr)
    return 0


def _registered_cross_product(n: int, t: int) -> List[dict]:
    """Request dicts covering every protocol × adversary pair at (n, t).

    Each protocol gets the largest ``t' ≤ t`` its resilience predicate
    accepts at this ``n`` (algorithm B needs ``n ≥ 4t+1``, the hybrid
    needs ``t ≥ 3``, algorithm C has its own ceiling), found by probing
    ``validate`` — so one command exercises every registry entry without
    hand-maintaining the envelopes here.
    """
    from .api import adversary_registry
    items: List[dict] = []
    for protocol in sorted(protocol_names()):
        entry = protocol_registry()[protocol]
        params = {"b": 3} if "b" in entry.schema else {}
        effective_t = None
        for candidate in range(t, 0, -1):
            faulty = tuple(choose_faulty(n, candidate, source_faulty=False))
            probe = RunRequest(protocol=protocol, protocol_params=params,
                               n=n, t=candidate, initial_value=1,
                               faulty=faulty, adversary="benign", seed=0)
            try:
                spec, config, _, _ = probe.resolve_parts()
                spec.validate(config)
            except (RegistryError, ConfigurationError, ValueError):
                continue
            effective_t = candidate
            break
        if effective_t is None:
            # Let the row loop report the failure instead of hiding the
            # protocol from the table.
            effective_t = t
        faulty = list(choose_faulty(n, effective_t, source_faulty=False))
        for adversary in sorted(adversary_registry()):
            items.append({
                "protocol": protocol, "protocol_params": dict(params),
                "n": n, "t": effective_t, "initial_value": 1,
                "faulty": faulty, "adversary": adversary, "seed": 0,
            })
    return items


def _command_validate(args: argparse.Namespace) -> int:
    """Resolve and plan every request without executing anything."""
    if args.all_registered:
        if args.requests is not None:
            raise SystemExit("--all-registered generates its own requests; "
                             "drop the request file argument")
        items = _registered_cross_product(args.n, args.t)
    elif args.requests is None:
        raise SystemExit("validate needs a request file ('-' for stdin) "
                         "or --all-registered")
    else:
        items = _parse_request_items(_read_payload(args.requests),
                                     "stdin" if args.requests == "-" else
                                     args.requests)
    if not items:
        raise SystemExit(f"{args.requests} contains no requests")
    rows: List[dict] = []
    failures = 0
    for position, item in enumerate(items):
        row = {"index": position, "protocol": "?", "n": "?", "t": "?",
               "adversary": "?", "engine": "?", "resolved": "?",
               "shardable": "?", "batched": "?", "status": "ok"}
        try:
            request = RunRequest.from_dict(item)
            row.update({"protocol": request.protocol, "n": request.n,
                        "t": request.t, "engine": request.engine,
                        "adversary": request.scenario or request.adversary})
            spec, config, faulty, adversary = request.resolve_parts()
            plan = plan_run(request, spec, config, faulty, adversary)
            row["resolved"] = plan.resolved
            row["shardable"] = plan_shardable(spec, config, faulty, adversary)
            reason = batched_ineligibility(spec, config, faulty, adversary)
            row["batched"] = ("eligible" if reason is None
                              else f"fallback: {reason}")
        except (RegistryError, ConfigurationError, TypeError,
                ValueError) as exc:
            failures += 1
            row["status"] = f"error: {exc}"
        rows.append(row)
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
    else:
        print(format_table(
            rows, title=f"validated {len(rows)} request(s), "
                        f"{failures} invalid"))
    return 1 if failures else 0


def _command_lint(args: argparse.Namespace) -> int:
    """Audit the source tree; exit 0 clean / 1 findings / 2 internal error."""
    from pathlib import Path

    from .lint import (render_json, render_text, rule_names, run_lint,
                       save_baseline)
    if args.list_rules:
        for name in rule_names():
            print(name)
        return 0
    if args.write_baseline and not args.baseline:
        raise SystemExit("--write-baseline needs --baseline naming the "
                         "file to write")
    if args.paths:
        roots = [Path(path) for path in args.paths]
    else:
        roots = [Path(__file__).resolve().parent]
    try:
        exit_code = 0
        for root in roots:
            package = "repro" if not args.paths else None
            baseline = Path(args.baseline) if args.baseline else None
            result = run_lint(root, package=package, rules=args.rules,
                              baseline_path=None if args.write_baseline
                              else baseline)
            if args.write_baseline:
                written = save_baseline(baseline, result.findings)
                print(f"baseline {baseline}: {written} finding(s) recorded")
                continue
            if args.format == "json":
                print(render_json(result))
            else:
                print(render_text(result, verbose=args.verbose))
            exit_code = max(exit_code, result.exit_code)
        return exit_code
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from None
    # repro-lint: waive[errors/broad-except] -- the linter must never
    # crash CI opaquely: any internal error becomes the documented
    # exit code 2 with the failure printed
    except Exception as exc:
        print(f"repro lint: internal error: {type(exc).__name__}: {exc}",
              file=sys.stderr)
        return 2


def _parse_cells(tokens: Sequence[str]) -> List[tuple]:
    cells = []
    for token in tokens:
        try:
            n_text, t_text = token.split(",")
            cells.append((int(n_text), int(t_text)))
        except ValueError:
            raise SystemExit(
                f"--cell takes n,t pairs (e.g. 7,2); got {token!r}") from None
    return cells


def _command_search(args: argparse.Namespace) -> int:
    """Hunt the declared grid; exit 3 exactly when a violation was found."""
    from .search import (SearchSpec, get_objective, minimize_counterexample,
                         pin_scenario, run_search)
    adversaries = tuple(args.adversary or ())
    if args.exclude:
        pool = adversaries or tuple(sorted(adversary_names()))
        excluded = set(args.exclude)
        unknown = excluded - set(adversary_names())
        if unknown:
            raise SystemExit(f"--exclude names unknown adversar(ies) "
                             f"{sorted(unknown)}")
        adversaries = tuple(name for name in pool if name not in excluded)
        if not adversaries:
            raise SystemExit("--exclude removed every adversary; nothing "
                             "left to search")
    try:
        spec = SearchSpec(
            objective=args.objective, protocols=tuple(args.protocol),
            cells=tuple(_parse_cells(args.cell)), adversaries=adversaries,
            strategy=args.strategy, budget=args.budget,
            sweep_seed=args.sweep_seed, allow_unsafe=args.allow_unsafe)
        result = run_search(spec, executor=args.executor,
                            stop_on_violation=not args.exhaustive)
    except (RegistryError, ConfigurationError, ValueError) as exc:
        raise SystemExit(str(exc)) from None

    minimized = minimized_report = pinned_path = None
    if result.found and not args.no_minimize:
        minimized, minimized_report = minimize_counterexample(
            result.violations[0].request, spec.objective)
        if args.pin:
            pinned_path = pin_scenario(minimized, minimized_report, args.pin,
                                       spec.objective)
    elif result.found and args.pin:
        hit = result.violations[0]
        pinned_path = pin_scenario(hit.request, hit.report, args.pin,
                                   spec.objective)

    if args.json:
        payload = {
            "spec": spec.to_dict(),
            "evaluated": result.evaluated,
            "stopped_early": result.stopped_early,
            "found": result.found,
            "best": None if result.best is None else {
                "score": result.best.score,
                "request": result.best.request.to_dict(),
                "report": result.best.report.to_dict(),
            },
            "violations": [{"score": v.score,
                            "request": v.request.to_dict()}
                           for v in result.violations],
            "minimized": None if minimized is None else minimized.to_dict(),
            "pinned": pinned_path,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        objective = get_objective(spec.objective)
        print(f"searched {result.evaluated} execution(s) of budget "
              f"{spec.budget} for {objective.name}"
              + (" (stopped at first violation)" if result.stopped_early
                 else ""))
        if result.found:
            shown = minimized if minimized is not None \
                else result.violations[0].request
            report = minimized_report if minimized_report is not None \
                else result.violations[0].report
            label = "minimized" if minimized is not None else "raw hit"
            print(f"VIOLATION ({label}): {shown.protocol} n={shown.n} "
                  f"t={shown.t} adversary={shown.adversary} "
                  f"params={dict(shown.adversary_params)} "
                  f"faulty={list(shown.faulty or ())} "
                  f"initial_value={shown.initial_value} seed={shown.seed}")
            print(f"  agreement={report.agreement} "
                  f"validity={report.validity} "
                  f"decisions={dict(sorted(report.decisions.items()))}")
            if pinned_path:
                print(f"  pinned: {pinned_path}")
        elif result.best is not None:
            best = result.best
            print(f"best {objective.name} = {best.score:g}: "
                  f"{best.request.protocol} n={best.request.n} "
                  f"t={best.request.t} adversary={best.request.adversary} "
                  f"faulty={list(best.request.faulty or ())} "
                  f"seed={best.request.seed}")
        else:
            print("no viable candidates in the declared grid")
    return 3 if result.found else 0


def _mc_spec(args: argparse.Namespace):
    """The :class:`~repro.stats.McSpec` the ``mc`` flags (or file) describe."""
    from .stats import McCell, McSpec
    if args.spec is not None:
        payload = _read_payload(args.spec)
        source = "stdin" if args.spec == "-" else args.spec
        if not isinstance(payload, dict):
            raise SystemExit(f"{source} must hold a serialized McSpec "
                             f"object")
        try:
            return McSpec.from_dict(payload)
        except (RegistryError, ConfigurationError, TypeError,
                ValueError) as exc:
            raise SystemExit(f"invalid campaign in {source}: {exc}") from None
    registry = protocol_registry()
    cells = []
    try:
        for protocol in args.protocol:
            entry = registry.get(protocol)
            if entry is None:
                raise SystemExit(
                    f"unknown protocol {protocol!r}; choose from "
                    f"{sorted(protocol_names())}")
            params = {"b": args.b} if "b" in entry.schema else {}
            for n, t in _parse_cells(args.cell):
                for adversary in args.adversary:
                    if adversary not in adversary_names():
                        raise SystemExit(
                            f"unknown adversary {adversary!r}; choose from "
                            f"{sorted(adversary_names())}")
                    cells.append(McCell(
                        protocol=protocol, n=n, t=t, adversary=adversary,
                        protocol_params=params, faults=args.faults,
                        source_placement=args.source_faulty,
                        allow_unsafe=args.allow_unsafe))
        executor_params = {}
        if args.max_workers is not None:
            if args.executor != "pool":
                raise SystemExit(
                    f"--max-workers applies to the pool executor, but the "
                    f"campaign runs on {args.executor!r}; drop the flag or "
                    f"pass --executor pool")
            executor_params["max_workers"] = args.max_workers
        return McSpec(cells=tuple(cells), trials=args.trials,
                      sweep_seed=args.sweep_seed, executor=args.executor,
                      executor_params=executor_params,
                      chunk_size=args.chunk_size)
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from None


def _command_mc(args: argparse.Namespace) -> int:
    """Stream a verification campaign; exit 0 ok / 1 contradicted / 2 partial."""
    from .stats import render_text, run_mc, to_json, verdict
    spec = _mc_spec(args)

    def progress(chunk: int, done: int, total: int) -> None:
        if not args.json:
            print(f"\rchunk {chunk + 1}/{spec.total_chunks}: "
                  f"{done}/{total} trials", end="", file=sys.stderr,
                  flush=True)

    try:
        result = run_mc(spec, checkpoint=args.checkpoint,
                        resume=args.resume, max_chunks=args.max_chunks,
                        progress=progress)
    except (RegistryError, ConfigurationError, ValueError) as exc:
        print("", file=sys.stderr)
        raise SystemExit(str(exc)) from None
    if not args.json and result.executed:
        print("", file=sys.stderr)
    if args.json:
        print(json.dumps(to_json(result, args.confidence), indent=2,
                         sort_keys=True))
    else:
        print(render_text(result, args.confidence))
    ok, _ = verdict(result)
    if ok:
        return 0
    return 2 if not result.complete else 1


def _select_ambient_engine(engine: Optional[str]) -> None:
    """Pin the ambient engine process-wide and export it for pool workers.

    Setting ``REPRO_EIG_ENGINE`` alongside the in-process default is what
    carries the choice into the parallel executor's process pool (worker
    initialisers re-read the environment on spawn).  The façade's ``auto``
    planner defers to this ambient choice: ``fast``/``reference`` also
    disable batched stepping, ``numpy`` keeps it for eligible cells.
    """
    if engine is None:
        return
    try:
        set_default_engine(engine)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    os.environ["REPRO_EIG_ENGINE"] = engine


def _command_experiments(args: argparse.Namespace) -> int:
    _select_ambient_engine(args.engine)
    tables = run_all_experiments(scale=args.scale)
    wanted = None
    if args.only:
        wanted = {token.upper() for token in args.only}
    for name, rows in tables.items():
        experiment_id = name.split("-")[0].upper()
        if wanted is not None and experiment_id not in wanted:
            continue
        print(format_table(rows, title=name))
        print()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parser().parse_args(list(argv) if argv is not None else None)
    if args.command == "run":
        return _command_run(args)
    if args.command == "sweep":
        return _command_sweep(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "validate":
        return _command_validate(args)
    if args.command == "lint":
        return _command_lint(args)
    if args.command == "search":
        return _command_search(args)
    if args.command == "mc":
        return _command_mc(args)
    return _command_experiments(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
