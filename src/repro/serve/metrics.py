"""Service observability: counters, per-engine latency, resilience events.

One thread-safe :class:`ServeMetrics` instance per service collects what
``/metrics`` exposes: request/admission counters, cache hit/miss (mirrored
from the cache), queue depth and capacity (gauges sampled at render time),
per-engine latency aggregates (count / total / max seconds keyed by the
report's ``engine_resolved``), and resilience-event counters — every
``metadata["resilience"]`` entry a run carried, bucketed by its ``event``
and ``stage`` (the vocabulary of :mod:`repro.runtime.supervision`), plus
the serving layer's own recoveries (cache write failures, journal replays,
worker restarts).

Rendered two ways: :meth:`snapshot` (the JSON the endpoint returns) and
:meth:`render_text` (a Prometheus-style exposition for scrapers), both
derived from the same counters so they can never disagree.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Mapping, Optional


class ServeMetrics:
    """Thread-safe counters for the agreement service."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {
            "requests_total": 0,
            "admission_rejects_total": 0,
            "backpressure_rejects_total": 0,
            "executions_total": 0,
            "execution_failures_total": 0,
        }
        self._engine_latency: Dict[str, Dict[str, float]] = {}
        self._resilience: Dict[str, int] = {}

    def increment(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def observe_latency(self, engine: str, seconds: float) -> None:
        with self._lock:
            bucket = self._engine_latency.setdefault(
                engine, {"count": 0, "total_seconds": 0.0,
                         "max_seconds": 0.0})
            bucket["count"] += 1
            bucket["total_seconds"] += seconds
            bucket["max_seconds"] = max(bucket["max_seconds"], seconds)

    def observe_resilience(self, trail: Optional[List[Mapping[str, Any]]]
                           ) -> None:
        """Count every resilience event a report's metadata carried."""
        if not trail:
            return
        with self._lock:
            for event in trail:
                key = str(event.get("event", "unknown"))
                stage = event.get("stage") or event.get("from")
                if stage:
                    key = f"{key}:{stage}"
                self._resilience[key] = self._resilience.get(key, 0) + 1

    def snapshot(self, queue_depth: int = 0, queue_capacity: int = 0,
                 cache_stats: Optional[Mapping[str, int]] = None,
                 extra: Optional[Mapping[str, Any]] = None
                 ) -> Dict[str, Any]:
        """The JSON body of ``/metrics``."""
        with self._lock:
            engines = {
                engine: {
                    "count": int(bucket["count"]),
                    "total_seconds": round(bucket["total_seconds"], 6),
                    "mean_seconds": round(
                        bucket["total_seconds"] / bucket["count"], 6)
                    if bucket["count"] else 0.0,
                    "max_seconds": round(bucket["max_seconds"], 6),
                }
                for engine, bucket in sorted(self._engine_latency.items())}
            data: Dict[str, Any] = {
                **{name: count
                   for name, count in sorted(self._counters.items())},
                "queue_depth": queue_depth,
                "queue_capacity": queue_capacity,
                "engine_latency": engines,
                "resilience_events": dict(sorted(self._resilience.items())),
            }
        if cache_stats is not None:
            data["cache"] = dict(cache_stats)
        if extra:
            data.update(extra)
        return data

    def render_text(self, **snapshot_kwargs: Any) -> str:
        """A Prometheus-style text exposition of :meth:`snapshot`."""
        snap = self.snapshot(**snapshot_kwargs)
        lines: List[str] = []
        for name, value in snap.items():
            if isinstance(value, (int, float)):
                lines.append(f"repro_serve_{name} {value}")
        for key, count in snap.get("cache", {}).items():
            lines.append(f"repro_serve_cache_{key} {count}")
        for engine, bucket in snap.get("engine_latency", {}).items():
            for stat, value in bucket.items():
                lines.append(
                    f'repro_serve_engine_latency_{stat}'
                    f'{{engine="{engine}"}} {value}')
        for key, count in snap.get("resilience_events", {}).items():
            lines.append(
                f'repro_serve_resilience_events{{kind="{key}"}} {count}')
        return "\n".join(lines) + "\n"
