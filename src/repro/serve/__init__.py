"""``repro.serve`` — the crash-safe, self-healing agreement service.

The serving layer turns the execution fabric into a long-lived daemon:
submit :class:`~repro.api.request.RunRequest`\\ s (or whole sweeps) over
HTTP/JSON, get back :meth:`~repro.api.request.RunReport.outcome_dict`\\ s
— served from a content-addressed cache when the identical question has
been answered before, executed under supervision otherwise, and journaled
before execution so a ``kill -9`` never loses accepted work.

Layers, innermost out:

* :mod:`~repro.serve.cache` — :func:`request_digest` keys and the
  best-effort :class:`ResultCache`;
* :mod:`~repro.serve.journal` — the write-ahead :class:`ServeJournal`
  and its crash replay;
* :mod:`~repro.serve.metrics` — :class:`ServeMetrics` behind ``/metrics``;
* :mod:`~repro.serve.service` — :class:`AgreementService`, the HTTP-free
  admission → cache → journal → supervised-execution core;
* :mod:`~repro.serve.http` — :class:`HttpFrontend`, the stdlib asyncio
  server with bounded-queue backpressure and graceful drain.
"""

from .cache import EXECUTION_SIDE_FIELDS, ResultCache, request_digest
from .http import HttpFrontend
from .journal import JOURNAL_KIND, JOURNAL_VERSION, JournalReplay, \
    ServeJournal
from .metrics import ServeMetrics
from .service import (AdmissionError, AgreementService, ServeResult,
                      ServiceUnavailableError)

__all__ = [
    "AdmissionError",
    "AgreementService",
    "EXECUTION_SIDE_FIELDS",
    "HttpFrontend",
    "JOURNAL_KIND",
    "JOURNAL_VERSION",
    "JournalReplay",
    "ResultCache",
    "ServeJournal",
    "ServeMetrics",
    "ServeResult",
    "ServiceUnavailableError",
    "request_digest",
]
