"""The asyncio HTTP/JSON frontend of ``repro serve`` — stdlib only.

A deliberately small HTTP/1.1 server built directly on
:func:`asyncio.start_server`: no framework, no dependency, one connection
per request (``Connection: close``), JSON in and JSON out.  The interesting
machinery all lives in :class:`~repro.serve.service.AgreementService`; this
module adds the concurrency shell around it:

* a **bounded** :class:`asyncio.Queue` of admitted jobs — when it is full
  new work is refused with ``429 Too Many Requests`` and a ``Retry-After``
  estimated from the queue depth and the observed mean execution latency,
  so overload degrades into explicit backpressure instead of unbounded
  memory growth;
* a small pool of worker tasks draining the queue through
  ``run_in_executor`` (simulations are CPU-bound synchronous code); a
  worker whose job raises keeps running — the failure goes to the waiting
  client, the worker survives;
* **streaming sweeps**: ``POST /sweep`` answers with chunked NDJSON, one
  line per report *in completion order*, cached entries first and instantly;
* **recovery on boot**: journal-replayed pending requests are enqueued
  before the listening socket opens (they were journaled as accepted
  pre-crash, so they are executed without being re-journaled);
* **graceful drain**: on SIGTERM/SIGINT (or :meth:`HttpFrontend.stop`) the
  server stops accepting, waits up to ``drain_deadline`` seconds for queued
  jobs, then closes and compacts the journal — anything not finished stays
  journaled as accepted and re-runs on the next boot.

Endpoints::

    POST /run      one RunRequest              -> {"id", "cached", "outcome", ...}
    POST /sweep    SweepSpec | request list    -> NDJSON stream of results
    GET  /healthz  liveness  (503 once the service has faulted)
    GET  /readyz   readiness (503 while draining or faulted)
    GET  /metrics  Prometheus text, or JSON with ?format=json
"""

from __future__ import annotations

import asyncio
import json
import math
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..api.request import RunRequest, SweepSpec
from ..runtime.chaos import chaos_scope
from ..runtime.errors import (CheckpointWriteError, ConfigurationError,
                              ReproError)
from .service import (AdmissionError, AgreementService, ServeResult,
                      ServiceUnavailableError)

#: Largest request body we will buffer (a generous bound for sweep specs).
MAX_BODY_BYTES = 32 * 1024 * 1024
#: Per-read timeout while parsing a request (slowloris guard).
READ_TIMEOUT = 30.0

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 408: "Request Timeout",
            413: "Payload Too Large", 429: "Too Many Requests",
            500: "Internal Server Error", 503: "Service Unavailable"}

#: Keys that mark a JSON object as a full SweepSpec rather than a request.
_SWEEP_KEYS = ("requests", "seed_policy", "sweep_seed")


@dataclass
class _Job:
    """One admitted request waiting in the queue for a worker."""

    digest: str
    request: RunRequest
    future: "asyncio.Future[ServeResult]"
    index: Optional[int] = None  # position within a sweep, for the stream


@dataclass
class _ParsedRequest:
    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""


class HttpFrontend:
    """The asyncio server wrapping one :class:`AgreementService`.

    Run it blocking with :meth:`run` (the CLI does), or from a thread in
    tests: construct, ``threading.Thread(target=frontend.run).start()``,
    wait on :attr:`ready`, talk HTTP to :attr:`port`, then :meth:`stop`.
    """

    def __init__(self, service: AgreementService, host: str = "127.0.0.1",
                 port: int = 8484, max_queue: int = 64, workers: int = 2,
                 drain_deadline: float = 10.0,
                 chaos: Any = None) -> None:
        if max_queue < 1:
            raise ConfigurationError(
                f"the work queue needs at least one slot, got {max_queue}")
        if workers < 1:
            raise ConfigurationError(
                f"the service needs at least one worker, got {workers}")
        self.service = service
        self.host = host
        self.requested_port = port
        self.max_queue = max_queue
        self.workers = workers
        self.drain_deadline = drain_deadline
        self.chaos = chaos
        #: Set once the socket is listening; :attr:`port` is valid after.
        self.ready = threading.Event()
        #: The actually bound port (meaningful with ``port=0`` in tests).
        self.port: Optional[int] = None
        self.draining = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._queue: Optional["asyncio.Queue[_Job]"] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._inflight = 0
        self._started_at = 0.0
        self._run_error: Optional[BaseException] = None

    # -- lifecycle -----------------------------------------------------------
    def run(self) -> None:
        """Serve until :meth:`stop` or a termination signal; blocks."""
        try:
            asyncio.run(self._main())
        except BaseException as exc:
            self._run_error = exc
            self.ready.set()  # never leave a waiter hanging on a boot error
            raise

    def stop(self) -> None:
        """Request a graceful drain-and-exit; safe from any thread."""
        loop, shutdown = self._loop, self._shutdown
        if loop is not None and shutdown is not None:
            loop.call_soon_threadsafe(shutdown.set)

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        self._queue = asyncio.Queue(maxsize=self.max_queue)
        self._started_at = time.monotonic()
        with chaos_scope(self.chaos):
            recovery = self.service.start()
            workers = [asyncio.ensure_future(self._worker(n))
                       for n in range(self.workers)]
            # Re-enqueue what the journal says never finished -- before the
            # socket opens, so recovered work is ahead of new arrivals.
            for digest, request in self.service.pending:
                job = _Job(digest, request, self._loop.create_future())
                job.future.add_done_callback(_swallow)
                await self._queue.put(job)
            self.service.pending = []
            server = await asyncio.start_server(self._handle_connection,
                                                self.host,
                                                self.requested_port)
            self.port = server.sockets[0].getsockname()[1]
            self._install_signal_handlers()
            if recovery:
                self.service.metrics.increment("recovered_jobs_total",
                                               recovery.get("pending", 0))
            self.ready.set()
            try:
                await self._shutdown.wait()
            finally:
                self.draining = True
                server.close()
                await server.wait_closed()
                await self._drain(workers)
                self.service.close()
                self.service.compact_journal()

    async def _drain(self, workers: List["asyncio.Future[None]"]) -> None:
        """Finish queued work under the deadline; checkpoint the rest.

        Jobs still queued (or mid-flight) when the deadline lapses remain
        ``accepted`` in the journal and re-run on the next boot — drain
        never loses work, it only bounds how long shutdown waits for it.
        """
        assert self._queue is not None
        deadline = time.monotonic() + self.drain_deadline
        while (self._queue.qsize() or self._inflight) \
                and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        for task in workers:
            task.cancel()
        await asyncio.gather(*workers, return_exceptions=True)
        # Unblock any clients still waiting on jobs we are abandoning.
        while not self._queue.empty():
            job = self._queue.get_nowait()
            if not job.future.done():
                job.future.set_exception(ServiceUnavailableError(
                    "server shut down before this job ran; it stays "
                    "journaled and will execute on the next start"))
                job.future.add_done_callback(_swallow)

    def _install_signal_handlers(self) -> None:
        import signal
        assert self._loop is not None and self._shutdown is not None
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(signum, self._shutdown.set)
            except (NotImplementedError, RuntimeError, ValueError):
                return  # not the main thread (tests) or unsupported platform

    # -- the worker pool -----------------------------------------------------
    async def _worker(self, number: int) -> None:
        assert self._loop is not None and self._queue is not None
        while True:
            job = await self._queue.get()
            self._inflight += 1
            try:
                if job.future.done():  # client gone / shutdown raced us
                    continue
                call = self._loop.run_in_executor(
                    None, self.service.run_job, job.digest, job.request)
                call.add_done_callback(_swallow)
                try:
                    result = await asyncio.shield(call)
                except asyncio.CancelledError:
                    raise
                # repro-lint: waive[errors/broad-except] -- the failure
                # is forwarded into the job future, where the request
                # handler turns it into the client's 500 response
                except BaseException as exc:
                    if not job.future.done():
                        job.future.set_exception(exc)
                else:
                    if not job.future.done():
                        job.future.set_result(result)
            except asyncio.CancelledError:
                # Shutdown: the executor thread (if any) runs to completion
                # in the background; the journal keeps the job accepted.
                raise
            # repro-lint: waive[errors/broad-except] -- the worker loop
            # must survive any single job's failure; the restart is
            # counted in worker_restarts_total
            except Exception:  # pragma: no cover - the pool must survive
                self.service.metrics.increment("worker_restarts_total")
            finally:
                self._inflight -= 1
                self._queue.task_done()

    def _retry_after(self) -> int:
        """A Retry-After estimate: queue depth x observed mean latency."""
        assert self._queue is not None
        snap = self.service.metrics.snapshot()
        buckets = [b for engine, b in snap["engine_latency"].items()
                   if engine != "cache"]
        count = sum(b["count"] for b in buckets)
        total = sum(b["total_seconds"] for b in buckets)
        mean = (total / count) if count else 0.25
        depth = self._queue.qsize() + self._inflight
        return max(1, math.ceil(depth * mean / max(1, self.workers)))

    # -- HTTP plumbing -------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            parsed, error = await self._read_request(reader)
            if error is not None:
                status, message = error
                await _respond(writer, status, {"error": message})
            elif parsed is not None:
                await self._route(parsed, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader) -> Tuple[
            Optional[_ParsedRequest], Optional[Tuple[int, str]]]:
        try:
            line = await asyncio.wait_for(reader.readline(), READ_TIMEOUT)
        except asyncio.TimeoutError:
            return None, (408, "timed out reading the request line")
        if not line:
            return None, None  # connection opened and closed; no request
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            return None, (400, "malformed HTTP request line")
        method, target = parts[0].upper(), parts[1]
        path, _, raw_query = target.partition("?")
        query: Dict[str, str] = {}
        for pair in raw_query.split("&"):
            if pair:
                name, _, value = pair.partition("=")
                query[name] = value
        headers: Dict[str, str] = {}
        while True:
            try:
                raw = await asyncio.wait_for(reader.readline(), READ_TIMEOUT)
            except asyncio.TimeoutError:
                return None, (408, "timed out reading headers")
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length") or 0)
        except ValueError:
            return None, (400, "unreadable Content-Length")
        if length > MAX_BODY_BYTES:
            return None, (413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        body = b""
        if length:
            try:
                body = await asyncio.wait_for(reader.readexactly(length),
                                              READ_TIMEOUT)
            except (asyncio.TimeoutError, asyncio.IncompleteReadError):
                return None, (400, "request body shorter than Content-Length")
        return _ParsedRequest(method, path, query, body), None

    async def _route(self, request: _ParsedRequest,
                     writer: asyncio.StreamWriter) -> None:
        handler = {
            ("GET", "/"): self._get_root,
            ("GET", "/healthz"): self._get_healthz,
            ("GET", "/readyz"): self._get_readyz,
            ("GET", "/metrics"): self._get_metrics,
            ("POST", "/run"): self._post_run,
            ("POST", "/sweep"): self._post_sweep,
        }.get((request.method, request.path))
        if handler is None:
            known = {"/", "/healthz", "/readyz", "/metrics", "/run", "/sweep"}
            if request.path in known:
                await _respond(writer, 405,
                               {"error": f"{request.method} is not "
                                         f"supported on {request.path}"})
            else:
                await _respond(writer, 404,
                               {"error": f"no route for {request.path}"})
            return
        await handler(request, writer)

    # -- GET endpoints -------------------------------------------------------
    async def _get_root(self, request: _ParsedRequest,
                        writer: asyncio.StreamWriter) -> None:
        await _respond(writer, 200, {
            "service": "repro-serve",
            "endpoints": ["/run", "/sweep", "/healthz", "/readyz",
                          "/metrics"],
            "recovery": self.service.last_recovery,
        })

    async def _get_healthz(self, request: _ParsedRequest,
                           writer: asyncio.StreamWriter) -> None:
        if self.service.fault is not None:
            await _respond(writer, 503, {
                "status": "faulted",
                "fault": f"{type(self.service.fault).__name__}: "
                         f"{self.service.fault}"})
            return
        await _respond(writer, 200, {
            "status": "ok",
            "uptime_seconds": round(time.monotonic() - self._started_at, 3)})

    async def _get_readyz(self, request: _ParsedRequest,
                          writer: asyncio.StreamWriter) -> None:
        assert self._queue is not None
        if self.service.fault is not None:
            await _respond(writer, 503, {"status": "faulted"})
        elif self.draining:
            await _respond(writer, 503, {"status": "draining"})
        else:
            await _respond(writer, 200, {
                "status": "ready", "queue_depth": self._queue.qsize(),
                "queue_capacity": self.max_queue})

    async def _get_metrics(self, request: _ParsedRequest,
                           writer: asyncio.StreamWriter) -> None:
        assert self._queue is not None
        kwargs = dict(queue_depth=self._queue.qsize(),
                      queue_capacity=self.max_queue,
                      cache_stats=self.service.cache.stats(),
                      extra={"inflight": self._inflight,
                             "draining": self.draining})
        if request.query.get("format") == "json":
            await _respond(writer, 200, self.service.metrics.snapshot(
                **kwargs))
            return
        text = self.service.metrics.render_text(**kwargs)
        await _respond_raw(writer, 200, text.encode("utf-8"),
                           "text/plain; version=0.0.4; charset=utf-8")

    # -- POST /run -----------------------------------------------------------
    def _admit_one(self, data: Any) -> Tuple[str, RunRequest]:
        """Parse and admit one request dict; raises AdmissionError on junk."""
        if not isinstance(data, dict):
            raise AdmissionError(
                f"a run request is a JSON object, got "
                f"{type(data).__name__}")
        try:
            request = RunRequest.from_dict(data)
        except (ReproError, TypeError, ValueError, KeyError) as exc:
            raise AdmissionError(str(exc)) from exc
        return self.service.admit(request), request

    async def _post_run(self, parsed: _ParsedRequest,
                        writer: asyncio.StreamWriter) -> None:
        assert self._loop is not None and self._queue is not None
        try:
            data = json.loads(parsed.body or b"null")
        except json.JSONDecodeError as exc:
            await _respond(writer, 400,
                           {"error": f"request body is not JSON: {exc}"})
            return
        if self.draining:
            await _respond(writer, 503, {"error": "server is draining"})
            return
        try:
            digest, request = await self._loop.run_in_executor(
                None, self._admit_one, data)
        except AdmissionError as exc:
            await _respond(writer, 400, {"error": str(exc)})
            return
        except ServiceUnavailableError as exc:
            await _respond(writer, 503, {"error": str(exc)})
            return
        cached = self.service.cached_result(digest)
        if cached is not None:
            await _respond(writer, 200, cached.to_dict())
            return
        job = _Job(digest, request, self._loop.create_future())
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            self.service.metrics.increment("backpressure_rejects_total")
            retry = self._retry_after()
            await _respond(writer, 429,
                           {"error": "work queue is full; retry later",
                            "retry_after_seconds": retry},
                           extra_headers=[("Retry-After", str(retry))])
            return
        try:
            self.service.accept(digest, request)
        except CheckpointWriteError as exc:
            job.future.cancel()
            await _respond(writer, 500, {"error": str(exc)})
            return
        try:
            result = await job.future
        # repro-lint: waive[errors/broad-except] -- any execution failure
        # becomes the client's 500 body, name and message included
        except Exception as exc:
            await _respond(writer, 500, {
                "error": f"{type(exc).__name__}: {exc}"})
            return
        await _respond(writer, 200, result.to_dict())

    # -- POST /sweep ---------------------------------------------------------
    def _parse_sweep(self, data: Any) -> SweepSpec:
        if isinstance(data, list):
            return SweepSpec.from_dict({"requests": data})
        if isinstance(data, dict) and any(key in data
                                          for key in _SWEEP_KEYS):
            return SweepSpec.from_dict(data)
        raise AdmissionError(
            "a sweep body is a SweepSpec object or a list of run requests")

    async def _post_sweep(self, parsed: _ParsedRequest,
                          writer: asyncio.StreamWriter) -> None:
        assert self._loop is not None and self._queue is not None
        try:
            data = json.loads(parsed.body or b"null")
        except json.JSONDecodeError as exc:
            await _respond(writer, 400,
                           {"error": f"request body is not JSON: {exc}"})
            return
        if self.draining:
            await _respond(writer, 503, {"error": "server is draining"})
            return

        def admit_all() -> List[Tuple[str, RunRequest]]:
            spec = self._parse_sweep(data)
            admitted = []
            for index, request in enumerate(spec.resolved_requests()):
                try:
                    admitted.append((self.service.admit(request), request))
                except AdmissionError as exc:
                    raise AdmissionError(
                        f"request {index}: {exc}") from exc
            return admitted

        try:
            admitted = await self._loop.run_in_executor(None, admit_all)
        except AdmissionError as exc:
            await _respond(writer, 400, {"error": str(exc)})
            return
        except ServiceUnavailableError as exc:
            await _respond(writer, 503, {"error": str(exc)})
            return
        except (ReproError, TypeError, ValueError) as exc:
            await _respond(writer, 400, {"error": str(exc)})
            return
        uncached = [index for index, (digest, _) in enumerate(admitted)
                    if self.service.cache.peek(digest) is None]
        free = self.max_queue - self._queue.qsize()
        if len(uncached) > free:
            self.service.metrics.increment("backpressure_rejects_total")
            retry = self._retry_after()
            await _respond(
                writer, 429,
                {"error": f"sweep needs {len(uncached)} queue slots, "
                          f"{free} free; retry later",
                 "retry_after_seconds": retry},
                extra_headers=[("Retry-After", str(retry))])
            return

        stream = _NdjsonStream(writer)
        await stream.begin()
        jobs: List[_Job] = []
        cached_count = 0
        for index, (digest, request) in enumerate(admitted):
            cached = self.service.cached_result(digest)
            if cached is not None:
                cached_count += 1
                await stream.send({"index": index, **cached.to_dict()})
                continue
            job = _Job(digest, request, self._loop.create_future(),
                       index=index)
            try:
                self.service.accept(digest, request)
            except CheckpointWriteError as exc:
                await stream.send({"index": index, "id": digest,
                                   "error": str(exc)})
                continue
            await self._queue.put(job)
            jobs.append(job)
        pending = {job.future: job for job in jobs}
        while pending:
            done, _ = await asyncio.wait(pending,
                                         return_when=asyncio.FIRST_COMPLETED)
            for future in done:
                job = pending.pop(future)
                try:
                    result = future.result()
                # repro-lint: waive[errors/broad-except] -- one cell's
                # failure is streamed as its error record; the rest of
                # the sweep keeps going
                except Exception as exc:
                    await stream.send({
                        "index": job.index, "id": job.digest,
                        "error": f"{type(exc).__name__}: {exc}"})
                else:
                    await stream.send({"index": job.index,
                                       **result.to_dict()})
        await stream.end({"event": "done", "total": len(admitted),
                          "cached": cached_count,
                          "executed": len(jobs)})


def _swallow(future: "asyncio.Future[Any]") -> None:
    """Consume a future's exception so abandoned jobs never warn at exit."""
    if not future.cancelled():
        future.exception()


class _NdjsonStream:
    """A chunked-encoding NDJSON response: one JSON line per completion."""

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer

    async def begin(self) -> None:
        head = (b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: application/x-ndjson\r\n"
                b"Transfer-Encoding: chunked\r\n"
                b"Connection: close\r\n\r\n")
        self.writer.write(head)
        await self.writer.drain()

    async def send(self, payload: Dict[str, Any]) -> None:
        line = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self.writer.write(f"{len(line):x}\r\n".encode("ascii") + line
                          + b"\r\n")
        await self.writer.drain()

    async def end(self, payload: Optional[Dict[str, Any]] = None) -> None:
        if payload is not None:
            await self.send(payload)
        self.writer.write(b"0\r\n\r\n")
        await self.writer.drain()


async def _respond(writer: asyncio.StreamWriter, status: int,
                   payload: Dict[str, Any],
                   extra_headers: Optional[List[Tuple[str, str]]] = None
                   ) -> None:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    await _respond_raw(writer, status, body, "application/json",
                       extra_headers)


async def _respond_raw(writer: asyncio.StreamWriter, status: int,
                       body: bytes, content_type: str,
                       extra_headers: Optional[List[Tuple[str, str]]] = None
                       ) -> None:
    reason = _REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}",
             f"Content-Type: {content_type}",
             f"Content-Length: {len(body)}",
             "Connection: close"]
    for name, value in extra_headers or ():
        lines.append(f"{name}: {value}")
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body)
    await writer.drain()
