"""The serve journal: accepted-before-execution, replayed on restart.

Self-stabilization (Dolev; Dijkstra's stabilizing token rings in
unsupportive environments) sets the design bar for the serving layer: the
service must *converge back* to a correct state from any crash point, not
merely avoid crashing.  The mechanism is write-ahead journaling in the same
crash-tolerant JSONL discipline as the sweep checkpoint
(:mod:`repro.api.jsonl`): every admitted request is appended as an
``accepted`` entry **before** it executes, and every finished run as a
``completed`` entry, each line flushed immediately::

    {"kind": "repro-serve-journal", "version": 1}        # atomic header
    {"event": "accepted", "id": "<digest>", "request": { ...RunRequest... }}
    {"event": "completed", "id": "<digest>", "outcome": { ...outcome_dict... }}

After a ``kill -9``, :meth:`ServeJournal.replay` reconstructs exactly where
the service was: ``completed`` entries warm-start the result cache
(identical queries become cache hits, no re-execution), ``accepted``
entries with no completion re-enqueue (runs are deterministic in
``(request, seed)``, so re-execution serves byte-identical outcomes), a
torn final line — the append the crash interrupted — is tolerated and
repaired by compaction, and duplicate completions are surfaced as a
``duplicates`` count (the same double-execution accounting as
:func:`repro.api.sweep.scan_checkpoint`) instead of being silently merged.

Journal appends are deliberately **fail-stop**: a failed append raises
:class:`~repro.runtime.errors.CheckpointWriteError` so the service degrades
loudly rather than accepting work it cannot make durable.  The chaos kind
``journal-torn-write`` exercises the worst case — a partial line hits the
disk and the writer dies mid-append.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..api.jsonl import rewrite_jsonl, scan_jsonl
from ..api.request import RunRequest
from ..runtime.chaos import current_chaos
from ..runtime.errors import CheckpointWriteError, ConfigurationError

JOURNAL_KIND = "repro-serve-journal"
JOURNAL_VERSION = 1


@dataclass
class JournalReplay:
    """Everything a restarted service recovers from its journal.

    ``completed`` maps request digests to their cached outcome dicts;
    ``pending`` holds the accepted-but-never-completed requests, in
    acceptance order, to re-enqueue.  ``duplicates`` counts superseded
    completion lines (double execution, reported — never masked) and
    ``torn_tail`` whether the crash interrupted an append mid-line.
    """

    completed: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    pending: List[Tuple[str, RunRequest]] = field(default_factory=list)
    duplicates: int = 0
    torn_tail: bool = False
    events: List[Dict[str, Any]] = field(default_factory=list)

    def summary(self) -> Dict[str, Any]:
        return {"completed": len(self.completed),
                "pending": len(self.pending),
                "duplicates": self.duplicates,
                "torn_tail": self.torn_tail}


def _parse_journal(path: str) -> "JournalReplay":
    """Scan *path* into a :class:`JournalReplay` (no file means empty)."""
    replay = JournalReplay()
    if not os.path.exists(path) or os.path.getsize(path) == 0:
        return replay
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError:
        if len(lines) == 1:
            raise ConfigurationError(
                f"{path} has a torn header line and no entries — likely a "
                f"crash while the journal was being created; delete the "
                f"file to start fresh")
        raise ConfigurationError(
            f"{path} is not a serve journal (unreadable header line)")
    if not isinstance(header, dict) or header.get("kind") != JOURNAL_KIND:
        raise ConfigurationError(
            f"{path} is not a serve journal (expected a {JOURNAL_KIND!r} "
            f"header)")
    if header.get("version") != JOURNAL_VERSION:
        raise ConfigurationError(
            f"{path} is a version {header.get('version')} journal; this "
            f"build reads version {JOURNAL_VERSION}")
    scan = scan_jsonl(path, lines[1:], first_line=2, description="journal")
    replay.torn_tail = scan.torn_tail
    accepted: Dict[str, RunRequest] = {}
    order: List[str] = []
    for line_number, entry in scan.entries:
        if not isinstance(entry, dict) or not isinstance(
                entry.get("id"), str):
            raise ConfigurationError(
                f"{path} has a malformed journal line (expected an object "
                f"with \"event\" and \"id\"): line {line_number}")
        event, digest = entry.get("event"), entry["id"]
        if event == "accepted":
            if not isinstance(entry.get("request"), dict):
                raise ConfigurationError(
                    f"{path} line {line_number}: an accepted entry needs a "
                    f"\"request\" object")
            if digest not in accepted:
                order.append(digest)
            accepted[digest] = RunRequest.from_dict(entry["request"])
        elif event == "completed":
            if not isinstance(entry.get("outcome"), dict):
                raise ConfigurationError(
                    f"{path} line {line_number}: a completed entry needs an "
                    f"\"outcome\" object")
            if digest in replay.completed:
                replay.duplicates += 1
                replay.events.append(
                    {"event": "duplicate-completion", "id": digest,
                     "line": line_number, "path": path})
            replay.completed[digest] = entry["outcome"]
        else:
            raise ConfigurationError(
                f"{path} line {line_number} has unknown journal event "
                f"{event!r} (expected \"accepted\" or \"completed\")")
    if replay.torn_tail:
        replay.events.append({"event": "torn-tail", "path": path})
    replay.pending = [(digest, accepted[digest]) for digest in order
                      if digest not in replay.completed]
    return replay


class ServeJournal:
    """Append-only durable intent log for the agreement service.

    Thread-safe: admission appends from the event loop while workers append
    completions, so every write holds one lock.  The header is created
    atomically on first open (temp file + rename), matching the sweep
    checkpoint's discipline, and existing journals are re-opened for append
    after :meth:`replay` has consumed them.
    """

    def __init__(self, path: str, fsync: bool = False) -> None:
        self.path = path
        self.fsync = fsync
        self._lock = threading.Lock()
        self._handle = None
        self._writes = 0

    # -- recovery ------------------------------------------------------------
    def replay(self) -> JournalReplay:
        """Read the journal back; call before :meth:`open` on restart."""
        return _parse_journal(self.path)

    def compact(self, replay: Optional[JournalReplay] = None
                ) -> Dict[str, Any]:
        """Rewrite the journal minimal and clean: torn tail and duplicates gone.

        Keeps one ``accepted`` line per still-pending request and one
        ``completed`` line per finished one (acceptance entries for
        completed requests are superseded by their completion and dropped).
        Atomic, like checkpoint compaction.  Returns the replay summary.
        """
        with self._lock:
            if self._handle is not None:
                raise ConfigurationError(
                    "compact the journal before opening it for append")
            state = replay if replay is not None else self.replay()
            if os.path.exists(self.path):
                entries: List[Dict[str, Any]] = []
                for digest, request in state.pending:
                    entries.append({"event": "accepted", "id": digest,
                                    "request": request.to_dict()})
                for digest in sorted(state.completed):
                    entries.append({"event": "completed", "id": digest,
                                    "outcome": state.completed[digest]})
                rewrite_jsonl(self.path,
                              {"kind": JOURNAL_KIND,
                               "version": JOURNAL_VERSION}, entries)
            return state.summary()

    # -- appending -----------------------------------------------------------
    def open(self) -> None:
        with self._lock:
            if self._handle is not None:
                return
            fresh = (not os.path.exists(self.path)
                     or os.path.getsize(self.path) == 0)
            if fresh:
                tmp = f"{self.path}.tmp.{os.getpid()}"
                try:
                    with open(tmp, "w", encoding="utf-8") as handle:
                        handle.write(json.dumps(
                            {"kind": JOURNAL_KIND,
                             "version": JOURNAL_VERSION},
                            sort_keys=True) + "\n")
                        handle.flush()
                        if self.fsync:
                            os.fsync(handle.fileno())
                    os.replace(tmp, self.path)
                except BaseException:
                    if os.path.exists(tmp):
                        os.unlink(tmp)
                    raise
            self._handle = open(self.path, "a", encoding="utf-8")

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def _append(self, entry: Dict[str, Any]) -> None:
        line = json.dumps(entry, sort_keys=True) + "\n"
        with self._lock:
            if self._handle is None:
                raise ConfigurationError(
                    "the serve journal is not open for append")
            write_index = self._writes
            self._writes += 1
            controller = current_chaos()
            try:
                if controller is not None and controller.take(
                        "journal-write", index=write_index):
                    # A torn write IS the fault: leave the partial line on
                    # disk (what a kill -9 mid-write leaves) and die loudly.
                    self._handle.write(line[:max(1, len(line) // 2)])
                    self._handle.flush()
                    raise OSError("chaos: simulated torn journal append")
                self._handle.write(line)
                self._handle.flush()
                if self.fsync:
                    os.fsync(self._handle.fileno())
            except OSError as exc:
                # Fail-stop by design: the service must not keep accepting
                # work it cannot make durable.  Recovery is the replay.
                raise CheckpointWriteError(
                    f"serve journal {self.path} append failed for "
                    f"{entry.get('id', '?')[:12]}…: {exc}") from exc

    def accepted(self, digest: str, request: RunRequest) -> None:
        """Journal an admitted request — called **before** it executes."""
        self._append({"event": "accepted", "id": digest,
                      "request": request.to_dict()})

    def completed(self, digest: str, outcome: Dict[str, Any]) -> None:
        """Journal a finished run's outcome (the cache warm-start record)."""
        self._append({"event": "completed", "id": digest,
                      "outcome": outcome})
